//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in environments with no access to crates.io, so the
//! real serde is unavailable. Nothing in the workspace serializes through
//! serde at runtime — the derives only decorate model types for downstream
//! users — so the derive macros here simply expand to nothing, keeping the
//! `#[derive(Serialize, Deserialize)]` annotations compiling. Swap this
//! vendored package for the real serde in `[patch]`-style once network access
//! to a registry is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
