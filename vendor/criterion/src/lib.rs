//! Offline stand-in for `criterion`.
//!
//! Benches in this workspace use `harness = false` with the classic
//! criterion entry points (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`).
//! This shim reproduces that API with a plain wall-clock harness: each
//! benchmark runs a warm-up pass plus `sample_size` timed samples and prints
//! min / mean / max per-iteration times. No statistical analysis, HTML
//! reports, or outlier detection — enough to compare configurations (e.g.
//! row-path vs. chunk-path execution) from `cargo bench` output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark (`criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Per-iteration timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std_black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks (`criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark harness (`criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        self.report(&id.id, &bencher.samples);
        self
    }

    fn report(&mut self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{label:<52} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label:<52} min {:>12} mean {:>12} max {:>12} ({} samples)",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            samples.len(),
        );
        self.results.push((label.to_owned(), mean));
    }

    /// Mean per-iteration time of every benchmark reported so far, in run
    /// order. Lets `harness = false` binaries post-process comparisons (e.g.
    /// print a row-path / chunk-path speedup summary).
    pub fn mean_times(&self) -> &[(String, Duration)] {
        &self.results
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs a list of benchmark functions
/// (`criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that invokes groups
/// (`criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchmarks_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(c.mean_times().len(), 2);
        assert!(c.mean_times()[0].0.contains("demo/noop"));
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(format_duration(Duration::from_millis(10)).contains("ms"));
        assert!(format_duration(Duration::from_secs(10)).contains("s"));
    }
}
