//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The workspace builds without registry access, so this vendored package
//! provides the small slice of `rand` the library uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen::<f64>()`, `gen_range(..)` and `gen_bool(..)`, and
//! [`seq::SliceRandom::shuffle`]. The generator is splitmix64 — deterministic
//! across runs and platforms, which is all the seeded workload generators and
//! samplers here require (no cryptographic claims).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`[0, 1)` for floats), mirroring `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges a value can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty or inverted range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty or inverted range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "inverted range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator modules, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): a full-period 64-bit mixer.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let r = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&r));
            let i = rng.gen_range(0..10usize);
            assert!(i < 10);
            let n = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
