//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` in the
//! workspace compiles without registry access. No trait machinery is needed:
//! nothing in the workspace bounds on serde traits or serializes at runtime.

pub use serde_derive::{Deserialize, Serialize};
