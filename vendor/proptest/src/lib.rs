//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use — the [`proptest!`] macro, range/tuple/array/`vec`/`Just`/one-of
//! strategies, `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros —
//! backed by the vendored deterministic `rand` shim. Unlike real proptest
//! there is no shrinking: a failing case panics with the sampled inputs
//! embedded in the assertion message. Each test function derives its RNG seed
//! from its own name, so runs are deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Number of accepted cases each `proptest!` test runs.
pub const DEFAULT_CASES: usize = 64;

/// Marker returned by `prop_assume!` when a sampled case is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Deterministic RNG used by the harness (re-exported for the macro).
pub type TestRng = StdRng;

/// Creates the deterministic RNG for a named test (used by [`proptest!`] so
/// test crates don't need their own `rand` dependency).
pub fn new_rng(name: &str) -> TestRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// Derives a stable 64-bit seed from a test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A source of random values of an associated type.
///
/// Mirrors `proptest::strategy::Strategy` in name and role, but samples
/// directly instead of building shrinkable value trees.
pub trait Strategy {
    /// Type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Boxing helper used by [`prop_oneof!`] to unify arm types.
pub trait IntoBoxedStrategy: Strategy + Sized + 'static {
    /// Boxes the strategy as a trait object.
    fn into_boxed(self) -> Box<dyn Strategy<Value = Self::Value>> {
        Box::new(self)
    }
}

impl<S: Strategy + Sized + 'static> IntoBoxedStrategy for S {}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        core::array::from_fn(|i| self[i].sample(rng))
    }
}

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            lo: len,
            hi: len + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.len.lo + 1 == self.len.hi {
            self.len.lo
        } else {
            rng.gen_range(self.len.lo..self.len.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Uniform choice between boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: unconstrained bit patterns (NaN/inf) break most
        // numeric properties and real proptest also defaults to finite floats.
        rng.gen_range(-1e9..1e9)
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Namespaced strategy constructors (`proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, Strategy,
    };
}

/// Defines deterministic random-input tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        // Callers write `#[test]` themselves (as with real proptest); the
        // metas pass through unchanged.
        $(#[$meta])*
        fn $name() {
            let mut rng: $crate::TestRng = $crate::new_rng(stringify!($name));
            let strategies = ($(($strat),)*);
            let mut accepted = 0usize;
            let mut attempts = 0usize;
            while accepted < $crate::DEFAULT_CASES {
                attempts += 1;
                assert!(
                    attempts <= $crate::DEFAULT_CASES * 64,
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name),
                );
                let ($($pat,)*) = $crate::Strategy::sample(&strategies, &mut rng);
                #[allow(clippy::redundant_closure_call)] // closure enables prop_assume! early-exit
                let outcome: ::core::result::Result<(), $crate::Rejected> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::IntoBoxedStrategy::into_boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in -5.0..5.0f64, v in prop::collection::vec(0u32..10, 1..20)) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_assume(v in prop_oneof![Just(0.0f64), 1.0..2.0f64], n in 0usize..10) {
            prop_assume!(n > 0);
            prop_assert!(v == 0.0 || (1.0..2.0).contains(&v));
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn tuples_and_arrays(pair in (0.0..1.0f64, [0i64..3, 0i64..3]), seed in any::<u64>()) {
            let (f, arr) = pair;
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(arr.iter().all(|&i| (0..3).contains(&i)));
            let _ = seed;
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }
}
