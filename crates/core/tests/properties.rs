//! Property-based tests for the method library's core invariants.

use madlib_core::datasets::labeled_point_schema;
use madlib_core::regress::LinearRegression;
use madlib_core::train::{Estimator, Session};
use madlib_core::validate::{accuracy, kfold_indices, mean_squared_error, r_squared};
use madlib_engine::{row, Dataset, Table};
use proptest::prelude::*;

fn session() -> Session {
    Session::in_memory(1).unwrap()
}

fn build_table(points: &[(f64, f64)], segments: usize) -> Table {
    let mut t = Table::new(labeled_point_schema(), segments).unwrap();
    for &(x, noise) in points {
        // y = 1 + 2x + bounded noise.
        t.insert(row![1.0 + 2.0 * x + noise, vec![1.0, x]]).unwrap();
    }
    t
}

proptest! {
    /// The linear-regression UDA must be partition invariant: the merge law
    /// of Section 3.1.1 applied to the paper's flagship aggregate.
    #[test]
    fn linregr_is_partition_invariant(
        points in prop::collection::vec((-10.0..10.0f64, -0.1..0.1f64), 5..60),
        segments in 2usize..8,
    ) {
        let reference = LinearRegression::new("y", "x")
            .fit(&Dataset::from_table(&build_table(&points, 1)), &session())
            .unwrap();
        let partitioned = LinearRegression::new("y", "x")
            .fit(
                &Dataset::from_table(&build_table(&points, segments)),
                &session(),
            )
            .unwrap();
        for (a, b) in reference.coef.iter().zip(&partitioned.coef) {
            prop_assert!((a - b).abs() < 1e-7);
        }
        prop_assert!((reference.r2 - partitioned.r2).abs() < 1e-7);
    }

    /// With bounded noise the fitted slope/intercept stay near the generator.
    #[test]
    fn linregr_recovers_bounded_noise_models(
        points in prop::collection::vec((-5.0..5.0f64, -0.05..0.05f64), 30..80),
    ) {
        // Require enough spread in x for identifiability.
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1.0);
        let model = LinearRegression::new("y", "x")
            .fit(&Dataset::from_table(&build_table(&points, 3)), &session())
            .unwrap();
        prop_assert!((model.coef[0] - 1.0).abs() < 0.3, "intercept {}", model.coef[0]);
        prop_assert!((model.coef[1] - 2.0).abs() < 0.3, "slope {}", model.coef[1]);
    }

    /// k-fold splits are always a partition of the input indices.
    #[test]
    fn kfold_is_a_partition(n in 4usize..200, k in 2usize..6, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let folds = kfold_indices(n, k, seed).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; n];
        for fold in &folds {
            prop_assert_eq!(fold.train.len() + fold.test.len(), n);
            for &i in &fold.test {
                prop_assert!(!seen[i], "index in two test folds");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Metric sanity: accuracy of identical vectors is 1, MSE of identical
    /// vectors is 0, R² of a perfect prediction is 1.
    #[test]
    fn metric_identities(values in prop::collection::vec(-100.0..100.0f64, 2..50)) {
        let labels: Vec<bool> = values.iter().map(|v| *v > 0.0).collect();
        prop_assert_eq!(accuracy(&labels, &labels).unwrap(), 1.0);
        prop_assert_eq!(mean_squared_error(&values, &values).unwrap(), 0.0);
        prop_assert!((r_squared(&values, &values).unwrap() - 1.0).abs() < 1e-12);
    }

    /// MSE is symmetric and non-negative.
    #[test]
    fn mse_symmetry(
        a in prop::collection::vec(-50.0..50.0f64, 1..40),
        b_seed in prop::collection::vec(-50.0..50.0f64, 1..40),
    ) {
        let n = a.len().min(b_seed.len());
        let a = &a[..n];
        let b = &b_seed[..n];
        let ab = mean_squared_error(a, b).unwrap();
        let ba = mean_squared_error(b, a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
    }
}
