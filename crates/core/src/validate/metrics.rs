//! Evaluation metrics for classification and regression.

use crate::error::{MethodError, Result};

/// Fraction of positions where `predicted == actual`.
///
/// # Errors
/// Returns [`MethodError::InvalidInput`] for mismatched or empty inputs.
pub fn accuracy<T: PartialEq>(predicted: &[T], actual: &[T]) -> Result<f64> {
    check(predicted.len(), actual.len())?;
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    Ok(correct as f64 / predicted.len() as f64)
}

/// Binary confusion counts `(true_positives, false_positives, true_negatives,
/// false_negatives)` where `true` is the positive class.
///
/// # Errors
/// Returns [`MethodError::InvalidInput`] for mismatched or empty inputs.
pub fn confusion_counts(predicted: &[bool], actual: &[bool]) -> Result<(u64, u64, u64, u64)> {
    check(predicted.len(), actual.len())?;
    let mut tp = 0;
    let mut fp = 0;
    let mut tn = 0;
    let mut fn_ = 0;
    for (&p, &a) in predicted.iter().zip(actual) {
        match (p, a) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fn_ += 1,
        }
    }
    Ok((tp, fp, tn, fn_))
}

/// Precision, recall and F1 for the positive class.  Undefined ratios
/// (zero denominators) are reported as 0.
///
/// # Errors
/// Returns [`MethodError::InvalidInput`] for mismatched or empty inputs.
pub fn precision_recall_f1(predicted: &[bool], actual: &[bool]) -> Result<(f64, f64, f64)> {
    let (tp, fp, _tn, fn_) = confusion_counts(predicted, actual)?;
    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        0.0
    };
    let recall = if tp + fn_ > 0 {
        tp as f64 / (tp + fn_) as f64
    } else {
        0.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Ok((precision, recall, f1))
}

/// Mean squared error.
///
/// # Errors
/// Returns [`MethodError::InvalidInput`] for mismatched or empty inputs.
pub fn mean_squared_error(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    check(predicted.len(), actual.len())?;
    Ok(predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / predicted.len() as f64)
}

/// Coefficient of determination R².
///
/// # Errors
/// Returns [`MethodError::InvalidInput`] for mismatched or empty inputs.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    check(predicted.len(), actual.len())?;
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    if ss_tot <= 0.0 {
        return Ok(1.0);
    }
    Ok(1.0 - ss_res / ss_tot)
}

fn check(p: usize, a: usize) -> Result<()> {
    if p == 0 || p != a {
        return Err(MethodError::invalid_input(format!(
            "metric inputs must be non-empty and equal length (got {p} and {a})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_confusion() {
        let predicted = [true, true, false, false];
        let actual = [true, false, false, true];
        assert_eq!(accuracy(&predicted, &actual).unwrap(), 0.5);
        let (tp, fp, tn, fn_) = confusion_counts(&predicted, &actual).unwrap();
        assert_eq!((tp, fp, tn, fn_), (1, 1, 1, 1));
        let (precision, recall, f1) = precision_recall_f1(&predicted, &actual).unwrap();
        assert_eq!(precision, 0.5);
        assert_eq!(recall, 0.5);
        assert_eq!(f1, 0.5);
    }

    #[test]
    fn degenerate_precision_recall() {
        // No positive predictions, no positive actuals.
        let (p, r, f1) = precision_recall_f1(&[false, false], &[false, false]).unwrap();
        assert_eq!((p, r, f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn regression_metrics() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let perfect = actual;
        assert_eq!(mean_squared_error(&perfect, &actual).unwrap(), 0.0);
        assert_eq!(r_squared(&perfect, &actual).unwrap(), 1.0);
        let off_by_one = [2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean_squared_error(&off_by_one, &actual).unwrap(), 1.0);
        assert!(r_squared(&off_by_one, &actual).unwrap() < 1.0);
        // Constant actuals: R² defined as 1 for an exact fit.
        assert_eq!(r_squared(&[2.0, 2.0], &[2.0, 2.0]).unwrap(), 1.0);
    }

    #[test]
    fn input_validation() {
        assert!(accuracy::<i32>(&[], &[]).is_err());
        assert!(accuracy(&[1], &[1, 2]).is_err());
        assert!(mean_squared_error(&[1.0], &[]).is_err());
        assert!(r_squared(&[], &[]).is_err());
        assert!(confusion_counts(&[true], &[]).is_err());
    }
}
