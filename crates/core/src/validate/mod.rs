//! Model-evaluation utilities: classification/regression metrics and k-fold
//! cross-validation splits.

pub mod cross_validation;
pub mod metrics;

pub use cross_validation::kfold_indices;
pub use metrics::{accuracy, confusion_counts, mean_squared_error, precision_recall_f1, r_squared};
