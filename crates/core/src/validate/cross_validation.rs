//! k-fold cross-validation splits.
//!
//! MADlib ships a cross-validation harness around its estimators; here the
//! split generation is provided as a reusable primitive (deterministic, seeded
//! shuffling) that examples and tests combine with any of the method
//! estimators.

use crate::error::{MethodError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/test split of row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of training rows.
    pub train: Vec<usize>,
    /// Indices of held-out test rows.
    pub test: Vec<usize>,
}

/// Produces `k` folds over `n` row indices after a seeded shuffle.
///
/// Every index appears in exactly one test fold; fold sizes differ by at most
/// one.
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] when `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<Fold>> {
    if k < 2 {
        return Err(MethodError::invalid_parameter("k", "must be at least 2"));
    }
    if k > n {
        return Err(MethodError::invalid_parameter(
            "k",
            format!("cannot exceed the number of rows ({n})"),
        ));
    }
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);

    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let remainder = n % k;
    let mut start = 0;
    for fold_idx in 0..k {
        let size = base + usize::from(fold_idx < remainder);
        let test: Vec<usize> = indices[start..start + size].to_vec();
        let train: Vec<usize> = indices[..start]
            .iter()
            .chain(&indices[start + size..])
            .copied()
            .collect();
        folds.push(Fold { train, test });
        start += size;
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn folds_partition_all_indices() {
        let folds = kfold_indices(103, 5, 42).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = BTreeSet::new();
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), 103);
            for &i in &fold.test {
                assert!(seen.insert(i), "index {i} appears in two test folds");
                assert!(!fold.train.contains(&i));
            }
        }
        assert_eq!(seen.len(), 103);
        // Fold sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            kfold_indices(50, 4, 7).unwrap(),
            kfold_indices(50, 4, 7).unwrap()
        );
        assert_ne!(
            kfold_indices(50, 4, 7).unwrap(),
            kfold_indices(50, 4, 8).unwrap()
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(3, 5, 0).is_err());
        assert!(kfold_indices(5, 5, 0).is_ok());
    }
}
