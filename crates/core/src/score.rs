//! The typed prediction surface: every fitted model scores through one
//! uniform contract, served in-engine.
//!
//! Before this module, each model had its own ad-hoc predict signature
//! (`DecisionTreeModel::predict -> Result<&str>`,
//! `NaiveBayesModel::predict -> Result<String>`,
//! `LogisticRegressionModel::predict -> Result<bool>`, …) and scoring meant a
//! hand-written per-row loop outside the scan pipeline.  [`Predictor`]
//! unifies them behind one typed prediction [`Value`], and
//! [`FeatureScorer`] adapts any `Predictor` to the engine's
//! [`Scorer`] contract so [`Dataset::score`] can run prediction as a
//! chunked, work-stealing, filter- and group-aware scan pass:
//!
//! - [`Predictor::predict_value`] is the per-row reference semantics — a
//!   thin typed wrapper over each model's inherent `predict`.
//! - [`Predictor::predict_batch`] scores a flattened uniform-width batch;
//!   the dot-product family (linregr, logregr, SVM) overrides it with
//!   `batch_dot`, k-means with `batch_closest_column` — **bit-identical to
//!   the per-row loop by the kernel contracts**, on every `MADLIB_SIMD`
//!   tier.
//! - NULL feature vectors score to [`Value::Null`] (SQL-strict semantics)
//!   in both paths, so NULL-bearing chunks never fork chunked and
//!   row-at-a-time results.
//! - [`Session::register_model`] / [`Session::register_grouped_models`]
//!   deposit fitted models in the [`madlib_engine::Database`] model
//!   catalog, and
//!   [`Session::score`] looks them up by name (routing grouped datasets
//!   through the per-group registry) — train once, serve by name, all
//!   inside the engine.

use crate::classify::{DecisionTreeModel, NaiveBayesModel, SvmModel};
use crate::cluster::KMeansModel;
use crate::error::{MethodError, Result};
use crate::regress::logistic::sigmoid;
use crate::regress::{LinearRegressionModel, LogisticRegressionModel};
use crate::train::{GroupedModels, Session};
use madlib_engine::score::{predict_chunk_rows, GroupScorers, Scorer};
use madlib_engine::{ColumnType, Dataset, EngineError, GroupKey, Row, RowChunk, Schema, Value};
use madlib_linalg::array_ops;
use madlib_linalg::kernels::batch_dot;
use std::any::Any;
use std::ops::Deref;
use std::sync::Arc;

/// A fitted model that scores feature vectors to typed prediction
/// [`Value`]s — the uniform serving contract over every model's inherent
/// `predict`.
pub trait Predictor: Send + Sync {
    /// Column type of the predictions (the schema of a materialized
    /// predictions column).
    fn output_type(&self) -> ColumnType;

    /// Scores one feature vector.
    ///
    /// # Errors
    /// Returns the model's inherent predict error (typically
    /// [`MethodError::InvalidInput`] on a feature-width mismatch).
    fn predict_value(&self, x: &[f64]) -> Result<Value>;

    /// Scores a batch of `rows` feature vectors flattened row-major into
    /// `xs` (each of `width` values), appending one prediction per row to
    /// `out`.
    ///
    /// The default loops [`Predictor::predict_value`]; vectorized overrides
    /// must be **bit-identical** to that loop (same values, same first
    /// error) — they ride the batched kernel tiers, which carry exactly
    /// that contract.
    ///
    /// # Errors
    /// Must fail exactly when (and how) the per-row loop would fail first.
    fn predict_batch(
        &self,
        xs: &[f64],
        width: usize,
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        predict_batch_rows(self, xs, width, rows, out)
    }
}

/// The reference per-row batch loop — public so vectorized
/// [`Predictor::predict_batch`] overrides can fall back to it verbatim for
/// widths their kernel cannot take (reproducing the per-row error exactly).
///
/// # Errors
/// Propagates the first [`Predictor::predict_value`] error in row order.
pub fn predict_batch_rows<P: Predictor + ?Sized>(
    predictor: &P,
    xs: &[f64],
    width: usize,
    rows: usize,
    out: &mut Vec<Value>,
) -> Result<()> {
    out.reserve(rows);
    if width == 0 {
        for _ in 0..rows {
            out.push(predictor.predict_value(&[])?);
        }
        return Ok(());
    }
    for x in xs.chunks_exact(width) {
        out.push(predictor.predict_value(x)?);
    }
    Ok(())
}

/// Maps a method-library predict error onto the engine error type — used
/// identically by the row and chunk paths of [`FeatureScorer`], so scoring
/// errors are the same under every execution mode.
fn engine_error(err: MethodError) -> EngineError {
    EngineError::invalid(err)
}

/// Adapts a [`Predictor`] to the engine [`Scorer`] contract: reads the
/// feature vector from the named `double precision[]` column and scores it.
///
/// `D` is any handle that dereferences to a predictor — a borrow
/// (`FeatureScorer::new(&model, "x")`) or a catalog `Arc`
/// (`FeatureScorer::new(db.models().get::<M>("name")?, "x")`).
///
/// Semantics shared by both scan paths (so chunked and row-at-a-time
/// results are bit-identical):
/// - a NULL feature vector scores to [`Value::Null`] (SQL-strict);
/// - uniform-width NULL-free chunks batch through
///   [`Predictor::predict_batch`]; ragged or NULL-bearing chunks fall back
///   to the shared per-row loop.
#[derive(Debug, Clone)]
pub struct FeatureScorer<D> {
    model: D,
    column: String,
}

impl<D> FeatureScorer<D> {
    /// Wraps `model`, reading features from `features_column`.
    pub fn new(model: D, features_column: impl Into<String>) -> Self {
        Self {
            model,
            column: features_column.into(),
        }
    }

    /// The wrapped model handle.
    pub fn model(&self) -> &D {
        &self.model
    }

    /// The feature column this scorer reads.
    pub fn features_column(&self) -> &str {
        &self.column
    }
}

impl<D> Scorer for FeatureScorer<D>
where
    D: Deref + Sync,
    D::Target: Predictor,
{
    fn output_type(&self) -> ColumnType {
        self.model.output_type()
    }

    fn predict_row(&self, row: &Row, schema: &Schema) -> madlib_engine::Result<Value> {
        let idx = schema.index_of(&self.column)?;
        let value = row.get(idx);
        if value.is_null() {
            return Ok(Value::Null);
        }
        let x = value.as_double_array()?;
        self.model.predict_value(x).map_err(engine_error)
    }

    fn predict_chunk(
        &self,
        chunk: &RowChunk,
        schema: &Schema,
        out: &mut Vec<Value>,
    ) -> madlib_engine::Result<()> {
        let idx = schema.index_of(&self.column)?;
        let arrays = chunk.double_arrays(idx)?;
        match arrays.uniform_width() {
            Some(width) if !arrays.nulls().any_null() => self
                .model
                .predict_batch(arrays.flat_values(), width, chunk.len(), out)
                .map_err(engine_error),
            _ => predict_chunk_rows(self, chunk, schema, out),
        }
    }
}

impl Predictor for LinearRegressionModel {
    fn output_type(&self) -> ColumnType {
        ColumnType::Double
    }

    fn predict_value(&self, x: &[f64]) -> Result<Value> {
        self.predict(x).map(Value::Double)
    }

    /// `batch_dot` over the coefficient vector — bit-identical to the
    /// scalar `predict` dot product by the kernel contract.
    fn predict_batch(
        &self,
        xs: &[f64],
        width: usize,
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        if width != self.coef.len() {
            return predict_batch_rows(self, xs, width, rows, out);
        }
        let mut scores = vec![0.0; rows];
        batch_dot(xs, &self.coef, &mut scores);
        out.extend(scores.into_iter().map(Value::Double));
        Ok(())
    }
}

impl Predictor for LogisticRegressionModel {
    fn output_type(&self) -> ColumnType {
        ColumnType::Bool
    }

    fn predict_value(&self, x: &[f64]) -> Result<Value> {
        self.predict(x).map(Value::Bool)
    }

    /// `batch_dot` then the elementwise sigmoid threshold — the same
    /// `sigmoid(⟨β, x⟩) ≥ 0.5` formulation as the scalar `predict`.
    fn predict_batch(
        &self,
        xs: &[f64],
        width: usize,
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        if width != self.coef.len() {
            return predict_batch_rows(self, xs, width, rows, out);
        }
        let mut scores = vec![0.0; rows];
        batch_dot(xs, &self.coef, &mut scores);
        out.extend(scores.into_iter().map(|z| Value::Bool(sigmoid(z) >= 0.5)));
        Ok(())
    }
}

impl Predictor for SvmModel {
    fn output_type(&self) -> ColumnType {
        ColumnType::Double
    }

    fn predict_value(&self, x: &[f64]) -> Result<Value> {
        self.predict(x).map(Value::Double)
    }

    /// `batch_dot` then the sign threshold — the scalar `predict`'s
    /// `⟨w, x⟩ ≥ 0` formulation.
    fn predict_batch(
        &self,
        xs: &[f64],
        width: usize,
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        if width != self.weights.len() {
            return predict_batch_rows(self, xs, width, rows, out);
        }
        let mut scores = vec![0.0; rows];
        batch_dot(xs, &self.weights, &mut scores);
        out.extend(
            scores
                .into_iter()
                .map(|d| Value::Double(if d >= 0.0 { 1.0 } else { -1.0 })),
        );
        Ok(())
    }
}

impl Predictor for KMeansModel {
    fn output_type(&self) -> ColumnType {
        ColumnType::Int
    }

    fn predict_value(&self, x: &[f64]) -> Result<Value> {
        self.predict(x).map(|idx| Value::Int(idx as i64))
    }

    /// `batch_closest_column` over the centroids — semantically identical
    /// to per-row `closest_column` (same comparison order, same strict-<
    /// tie-breaking) by the kernel contract.  Shapes the batched kernel
    /// would reject (no centroids, width mismatch) take the per-row loop so
    /// the errors match the scalar path exactly.
    fn predict_batch(
        &self,
        xs: &[f64],
        width: usize,
        rows: usize,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        let batchable = width > 0 && self.centroids.iter().all(|c| c.len() == width);
        if self.centroids.is_empty() || !batchable {
            return predict_batch_rows(self, xs, width, rows, out);
        }
        let mut assignments = vec![0usize; rows];
        array_ops::batch_closest_column(&self.centroids, xs, width, &mut assignments)
            .map_err(MethodError::from)?;
        out.extend(assignments.into_iter().map(|idx| Value::Int(idx as i64)));
        Ok(())
    }
}

impl Predictor for NaiveBayesModel {
    fn output_type(&self) -> ColumnType {
        ColumnType::Text
    }

    // Per-class Gaussian log-scores have no batched kernel; the default
    // per-row batch loop applies.
    fn predict_value(&self, x: &[f64]) -> Result<Value> {
        self.predict(x).map(Value::Text)
    }
}

impl Predictor for DecisionTreeModel {
    fn output_type(&self) -> ColumnType {
        ColumnType::Text
    }

    // Tree walks are inherently per-row; the default batch loop applies.
    fn predict_value(&self, x: &[f64]) -> Result<Value> {
        self.predict(x).map(|label| Value::Text(label.to_owned()))
    }
}

impl Session {
    /// Deposits a fitted model in the session database's model catalog
    /// under `name`, replacing any existing entry (the model-refresh
    /// idiom).  Serve it back with [`Session::score`] or
    /// `database().models().get`.
    pub fn register_model<M: Any + Send + Sync>(&self, name: &str, model: M) {
        self.database().models().register(name, model);
    }

    /// Deposits a [`Session::train_grouped`] output in the model catalog as
    /// a servable per-group registry under `name`, replacing any existing
    /// entry.
    ///
    /// # Errors
    /// Propagates catalog registration errors.
    pub fn register_grouped_models<M: Any + Send + Sync>(
        &self,
        name: &str,
        models: GroupedModels<M>,
    ) -> Result<()> {
        self.database()
            .models()
            .register_grouped(name, models.into_vec())
            .map_err(MethodError::from)
    }

    /// Scores `dataset` with the catalog model registered under
    /// `model_name`, reading feature vectors from `features_column` —
    /// the serving half of the MADlib calling convention
    /// (`method_predict(source_table, model, …)`), returning one typed
    /// prediction per filter-surviving row in segment-then-row order.
    ///
    /// An ungrouped dataset looks up a single model; a `group_by` dataset
    /// looks up a grouped registry and routes every row to its group's
    /// model ([`Dataset::score_per_group`]), bit-identical to
    /// filter-then-predict per group.  Specify the model type explicitly:
    /// `session.score::<DecisionTreeModel>(&ds, "churn_tree", "x")`.
    ///
    /// # Errors
    /// Returns the catalog's typed lookup errors
    /// ([`madlib_engine::EngineError::ModelNotFound`], wrong-type
    /// mismatches) and propagates scan/predict errors.
    pub fn score<M>(
        &self,
        dataset: &Dataset<'_>,
        model_name: &str,
        features_column: &str,
    ) -> Result<Vec<Value>>
    where
        M: Predictor + Any + Send + Sync,
    {
        let models = self.database().models();
        let bound = dataset.reborrow().with_default_executor(*self.executor());
        if dataset.is_grouped() {
            let grouped = models.get_grouped::<M>(model_name)?;
            let scorers: Vec<(GroupKey, FeatureScorer<Arc<M>>)> = grouped
                .into_iter()
                .map(|(key, model)| (key, FeatureScorer::new(model, features_column)))
                .collect();
            let registry = GroupScorers::new(model_name, scorers)?;
            Ok(bound.score_per_group(&registry)?)
        } else {
            let model = models.get::<M>(model_name)?;
            let scorer = FeatureScorer::new(model, features_column);
            Ok(bound.score(&scorer)?)
        }
    }
}
