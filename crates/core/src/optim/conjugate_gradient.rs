//! Conjugate-gradient solver for symmetric positive-definite systems.
//!
//! Table 1 of the paper lists "Conjugate Gradient Optimization" among the
//! support modules: MADlib uses it to solve the normal equations and as an
//! inner solver for methods whose Hessian-vector products are cheap.  This is
//! the standard (unpreconditioned) CG iteration; it touches the matrix only
//! through matrix-vector products, so callers can pass either an explicit
//! matrix or an implicit operator.

use crate::error::{MethodError, Result};
use madlib_linalg::{DenseMatrix, DenseVector};

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// The solution vector.
    pub x: DenseVector,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm ‖b − Ax‖.
    pub residual_norm: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solves `A x = b` for symmetric positive-definite `A` with conjugate
/// gradients.
///
/// # Errors
/// * [`MethodError::InvalidInput`] on shape mismatches.
/// * [`MethodError::DidNotConverge`] if the residual does not drop below
///   `tolerance · ‖b‖` within `max_iterations`.
pub fn conjugate_gradient_solve(
    a: &DenseMatrix,
    b: &DenseVector,
    tolerance: f64,
    max_iterations: usize,
) -> Result<CgResult> {
    if !a.is_square() || a.rows() != b.len() {
        return Err(MethodError::invalid_input(format!(
            "conjugate gradient needs a square system; got {}x{} and rhs of length {}",
            a.rows(),
            a.cols(),
            b.len()
        )));
    }
    let n = b.len();
    let mut x = DenseVector::zeros(n);
    let mut r = b.clone();
    let mut p = r.clone();
    let b_norm = b.norm().max(1e-300);
    let mut rs_old = r.dot(&r)?;

    if rs_old.sqrt() <= tolerance * b_norm {
        return Ok(CgResult {
            x,
            iterations: 0,
            residual_norm: rs_old.sqrt(),
            converged: true,
        });
    }

    let mut iterations = 0;
    while iterations < max_iterations.max(1) {
        iterations += 1;
        let ap = a.matvec(&p)?;
        let p_ap = p.dot(&ap)?;
        if p_ap <= 0.0 {
            return Err(MethodError::invalid_input(
                "matrix is not positive definite (non-positive curvature encountered)",
            ));
        }
        let alpha = rs_old / p_ap;
        x.axpy(alpha, &p)?;
        r.axpy(-alpha, &ap)?;
        let rs_new = r.dot(&r)?;
        if rs_new.sqrt() <= tolerance * b_norm {
            return Ok(CgResult {
                x,
                iterations,
                residual_norm: rs_new.sqrt(),
                converged: true,
            });
        }
        let beta = rs_new / rs_old;
        // p = r + beta * p
        let mut new_p = r.clone();
        new_p.axpy(beta, &p)?;
        p = new_p;
        rs_old = rs_new;
    }
    Err(MethodError::DidNotConverge {
        iterations,
        last_change: rs_old.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 0.5],
            vec![0.0, 0.5, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn solves_spd_system() {
        let a = spd();
        let b = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let result = conjugate_gradient_solve(&a, &b, 1e-10, 100).unwrap();
        assert!(result.converged);
        assert!(
            result.iterations <= 3 + 1,
            "CG must converge in ≤ n iterations"
        );
        let ax = a.matvec(&result.x).unwrap();
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-8);
        }
        assert!(result.residual_norm < 1e-8);
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let a = spd();
        let b = DenseVector::zeros(3);
        let result = conjugate_gradient_solve(&a, &b, 1e-10, 10).unwrap();
        assert_eq!(result.iterations, 0);
        assert_eq!(result.x.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn agrees_with_cholesky() {
        let a = spd();
        let b = DenseVector::from_vec(vec![0.3, -1.2, 2.5]);
        let cg = conjugate_gradient_solve(&a, &b, 1e-12, 50).unwrap();
        let chol = madlib_linalg::decomposition::Cholesky::new(&a)
            .unwrap()
            .solve(&b)
            .unwrap();
        for i in 0..3 {
            assert!((cg.x[i] - chol[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_bad_shapes_and_indefinite_matrices() {
        let rect = DenseMatrix::zeros(2, 3);
        let b = DenseVector::zeros(2);
        assert!(conjugate_gradient_solve(&rect, &b, 1e-8, 10).is_err());

        let square = DenseMatrix::zeros(3, 3);
        assert!(conjugate_gradient_solve(&square, &DenseVector::zeros(2), 1e-8, 10).is_err());

        // Indefinite matrix triggers the curvature check when the right-hand
        // side has a component along the negative eigenvector.
        let indefinite = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let b = DenseVector::from_vec(vec![1.0, -1.0]);
        assert!(conjugate_gradient_solve(&indefinite, &b, 1e-8, 10).is_err());
    }

    #[test]
    fn reports_non_convergence() {
        // Very tight tolerance with a cap of one iteration on a 3-dimensional
        // system cannot converge.
        let a = spd();
        let b = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let err = conjugate_gradient_solve(&a, &b, 1e-15, 1);
        assert!(matches!(err, Err(MethodError::DidNotConverge { .. })));
    }
}
