//! Batch gradient descent over an engine table.
//!
//! Section 5.1 of the paper introduces gradient methods with the pseudocode
//! `x ← x − α · G(x)`: a full gradient pass per iteration with a decaying
//! step size.  This module provides that *batch* driver (the stochastic
//! variant lives in the `madlib-convex` crate).  Each iteration computes the
//! gradient with one parallel pass over the table via a caller-provided
//! per-row gradient function, aggregated element-wise — the UDA pattern
//! again — and the driver loop stages the (small) parameter vector between
//! iterations.

use crate::error::{MethodError, Result};
use madlib_engine::iteration::{l2_relative_convergence, IterationConfig, IterationController};
use madlib_engine::{Database, Executor, Row, Schema, Table};

/// Result of a gradient-descent run.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientDescentResult {
    /// Final parameter vector.
    pub parameters: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the convergence criterion was met.
    pub converged: bool,
}

/// Batch gradient-descent driver.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    step_size: f64,
    decay: f64,
    max_iterations: usize,
    tolerance: f64,
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self {
            step_size: 0.1,
            decay: 1.0,
            max_iterations: 200,
            tolerance: 1e-7,
        }
    }
}

impl GradientDescent {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the initial step size α₀.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] for a non-positive step.
    pub fn with_step_size(mut self, step_size: f64) -> Result<Self> {
        if step_size <= 0.0 {
            return Err(MethodError::invalid_parameter(
                "step_size",
                "must be positive",
            ));
        }
        self.step_size = step_size;
        Ok(self)
    }

    /// Sets the per-iteration decay exponent: the step at iteration `k` is
    /// `α₀ / k^decay` (the paper's `α = 1/k` example corresponds to
    /// `decay = 1`).
    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the convergence tolerance on parameter movement.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Minimizes `Σ_rows f_row(parameters)` where `per_row_gradient` returns
    /// each row's gradient contribution.
    ///
    /// # Errors
    /// Propagates engine errors and gradient-evaluation failures.
    pub fn minimize<G>(
        &self,
        executor: &Executor,
        database: &Database,
        table: &Table,
        initial: Vec<f64>,
        per_row_gradient: G,
    ) -> Result<GradientDescentResult>
    where
        G: Fn(&Row, &Schema, &[f64]) -> madlib_engine::Result<Vec<f64>> + Sync,
    {
        executor
            .validate_input(table, true)
            .map_err(MethodError::from)?;
        let width = initial.len();
        let config = IterationConfig {
            max_iterations: self.max_iterations,
            tolerance: self.tolerance,
            fail_on_max_iterations: false,
            state_table_name: "gradient_descent_state".to_owned(),
        };
        let controller = IterationController::new(database.clone(), config);
        let outcome = controller
            .run(
                initial,
                |params, iteration| {
                    // One parallel pass computes all per-row gradients, which
                    // are then reduced element-wise.
                    let contributions = executor
                        .parallel_map(table, |row, schema| per_row_gradient(row, schema, params))?;
                    let mut gradient = vec![0.0; width];
                    for c in &contributions {
                        if c.len() != width {
                            return Err(madlib_engine::EngineError::aggregate(format!(
                                "gradient contribution has length {}, expected {width}",
                                c.len()
                            )));
                        }
                        for (g, v) in gradient.iter_mut().zip(c) {
                            *g += v;
                        }
                    }
                    let alpha = self.step_size / (iteration as f64).powf(self.decay);
                    Ok(params
                        .iter()
                        .zip(&gradient)
                        .map(|(p, g)| p - alpha * g)
                        .collect())
                },
                l2_relative_convergence,
            )
            .map_err(MethodError::from)?;
        Ok(GradientDescentResult {
            parameters: outcome.final_state,
            iterations: outcome.iterations,
            converged: outcome.converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{labeled_point_schema, linear_regression_data};
    use madlib_engine::aggregate::extract_labeled_point;

    #[test]
    fn minimizes_least_squares_to_ols_solution() {
        let data = linear_regression_data(400, 3, 0.05, 2, 77).unwrap();
        let db = Database::new(2).unwrap();
        let n = data.table.row_count() as f64;
        let result = GradientDescent::new()
            .with_step_size(0.5)
            .unwrap()
            .with_decay(0.0)
            .with_max_iterations(500)
            .with_tolerance(1e-9)
            .minimize(
                &Executor::new(),
                &db,
                &data.table,
                vec![0.0; 3],
                move |row, schema, params| {
                    let (y, x) = extract_labeled_point(row, schema, "y", "x")?;
                    let pred: f64 = x.iter().zip(params).map(|(a, b)| a * b).sum();
                    // Per-row gradient of the *mean* squared error.
                    Ok(x.iter().map(|xi| 2.0 * (pred - y) * xi / n).collect())
                },
            )
            .unwrap();
        assert!(result.converged);
        for (fitted, truth) in result.parameters.iter().zip(&data.true_coefficients) {
            assert!((fitted - truth).abs() < 0.05, "{fitted} vs {truth}");
        }
    }

    #[test]
    fn quadratic_in_one_dimension() {
        // Minimize (w − 5)² using a single-row "table" carrying no data.
        let mut table = Table::new(labeled_point_schema(), 1).unwrap();
        table.insert(madlib_engine::row![0.0, vec![0.0]]).unwrap();
        let db = Database::new(1).unwrap();
        let result = GradientDescent::new()
            .with_step_size(0.4)
            .unwrap()
            .with_decay(0.0)
            .with_max_iterations(200)
            .minimize(&Executor::new(), &db, &table, vec![0.0], |_, _, params| {
                Ok(vec![2.0 * (params[0] - 5.0)])
            })
            .unwrap();
        assert!((result.parameters[0] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn parameter_validation_and_error_paths() {
        assert!(GradientDescent::new().with_step_size(0.0).is_err());
        assert!(GradientDescent::new().with_step_size(-1.0).is_err());

        let db = Database::new(1).unwrap();
        let empty = Table::new(labeled_point_schema(), 1).unwrap();
        assert!(GradientDescent::new()
            .minimize(&Executor::new(), &db, &empty, vec![0.0], |_, _, _| Ok(
                vec![0.0]
            ))
            .is_err());

        // Wrong gradient width is reported.
        let mut table = Table::new(labeled_point_schema(), 1).unwrap();
        table.insert(madlib_engine::row![0.0, vec![0.0]]).unwrap();
        assert!(GradientDescent::new()
            .minimize(&Executor::new(), &db, &table, vec![0.0], |_, _, _| Ok(
                vec![0.0, 1.0]
            ))
            .is_err());
    }
}
