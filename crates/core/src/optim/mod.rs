//! Optimization support modules (paper Table 1: "Conjugate Gradient
//! Optimization") plus a generic batch gradient-descent driver.

pub mod conjugate_gradient;
pub mod gradient_descent;

pub use conjugate_gradient::conjugate_gradient_solve;
pub use gradient_descent::{GradientDescent, GradientDescentResult};
