//! Gaussian naive Bayes classification.
//!
//! Table 1 of the paper lists Naive Bayes among the supervised methods.  The
//! MADlib implementation computes per-class feature statistics with grouped
//! SQL aggregation; here the same structure appears as a single parallel
//! aggregate whose state is a per-class set of streaming summaries (count,
//! mean, variance per feature), merged across segments with the same
//! Chan/Welford update the `madlib-stats` summary uses.

use crate::error::{MethodError, Result};
use crate::train::{
    fit_grouped_single_pass, refresh_single_pass, train_incremental_single_pass, Estimator,
    GroupedModels, IncrementalEstimator, Session,
};
use madlib_engine::aggregate::transition_chunk_by_rows;
use madlib_engine::chunk::ColumnChunk;
use madlib_engine::dataset::Dataset;
use madlib_engine::{Aggregate, Row, RowChunk, Schema};
use madlib_stats::Summary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-class training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Number of training rows with this label.
    pub count: u64,
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature variances (with a small floor to avoid zero-variance
    /// degeneracy).
    pub variances: Vec<f64>,
}

/// A fitted Gaussian naive Bayes model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayesModel {
    /// Per-class statistics keyed by label.
    pub classes: BTreeMap<String, ClassStats>,
    /// Total number of training rows.
    pub total_rows: u64,
    /// Number of features.
    pub num_features: usize,
}

impl NaiveBayesModel {
    /// Log joint score `log P(class) + Σ log N(x_i | μ, σ²)` for each class,
    /// sorted descending by score.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on feature-length mismatch.
    pub fn log_scores(&self, x: &[f64]) -> Result<Vec<(String, f64)>> {
        if x.len() != self.num_features {
            return Err(MethodError::invalid_input(format!(
                "feature length {} does not match model width {}",
                x.len(),
                self.num_features
            )));
        }
        let mut scores = Vec::with_capacity(self.classes.len());
        for (label, stats) in &self.classes {
            let prior = (stats.count as f64 / self.total_rows as f64).ln();
            let mut log_likelihood = 0.0;
            for ((xi, mean), var) in x.iter().zip(&stats.means).zip(&stats.variances) {
                let var = var.max(1e-9);
                log_likelihood += -0.5 * ((xi - mean) * (xi - mean) / var)
                    - 0.5 * (2.0 * std::f64::consts::PI * var).ln();
            }
            scores.push((label.clone(), prior + log_likelihood));
        }
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        Ok(scores)
    }

    /// Most likely class label.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on feature-length mismatch or an
    /// untrained (empty) model.
    pub fn predict(&self, x: &[f64]) -> Result<String> {
        self.log_scores(x)?
            .into_iter()
            .next()
            .map(|(label, _)| label)
            .ok_or_else(|| MethodError::invalid_input("model has no classes"))
    }
}

/// Gaussian naive Bayes as a user-defined aggregate.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    label_column: String,
    features_column: String,
}

/// Transition state: per-class, per-feature streaming summaries.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayesState {
    classes: BTreeMap<String, Vec<Summary>>,
    num_features: usize,
}

impl NaiveBayes {
    /// Creates the aggregate reading `label_column` (text) and
    /// `features_column` (double array).
    pub fn new(label_column: impl Into<String>, features_column: impl Into<String>) -> Self {
        Self {
            label_column: label_column.into(),
            features_column: features_column.into(),
        }
    }
}

impl Estimator for NaiveBayes {
    type Model = NaiveBayesModel;

    /// Fits the model in one pass over the dataset's (filtered) rows.
    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<NaiveBayesModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        dataset.aggregate(self).map_err(MethodError::from)
    }

    /// Single-pass grouped training: one grouped scan trains every group's
    /// per-class summaries at once.
    fn fit_grouped(
        &self,
        dataset: &Dataset<'_>,
        _session: &Session,
    ) -> Result<GroupedModels<NaiveBayesModel>> {
        fit_grouped_single_pass(self, dataset)
    }
}

impl IncrementalEstimator for NaiveBayes {
    /// Registers a materialized view of the per-class count/sum/sum-of-squares
    /// states; appends refresh the model at O(appended) cost.
    fn train_incremental(
        &self,
        session: &Session,
        table: &str,
        name: &str,
    ) -> Result<NaiveBayesModel> {
        train_incremental_single_pass(self, session, table, name)
    }

    /// Absorbs only appended rows and re-finalizes — bit-identical to a full
    /// retrain (the aggregate is algebraic).
    fn refresh(&self, session: &Session, table: &str, name: &str) -> Result<NaiveBayesModel> {
        refresh_single_pass(self, session, table, name)
    }
}

impl Aggregate for NaiveBayes {
    type State = NaiveBayesState;
    type Output = NaiveBayesModel;

    fn initial_state(&self) -> NaiveBayesState {
        NaiveBayesState::default()
    }

    fn transition(
        &self,
        state: &mut NaiveBayesState,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let label = row
            .get_named(schema, &self.label_column)?
            .as_text()?
            .to_owned();
        let features = row
            .get_named(schema, &self.features_column)?
            .as_double_array()?;
        if state.num_features == 0 {
            state.num_features = features.len();
        } else if features.len() != state.num_features {
            return Err(madlib_engine::EngineError::aggregate(format!(
                "inconsistent feature width: expected {}, found {}",
                state.num_features,
                features.len()
            )));
        }
        let summaries = state
            .classes
            .entry(label)
            .or_insert_with(|| vec![Summary::new(); features.len()]);
        for (summary, value) in summaries.iter_mut().zip(features) {
            summary.update(*value);
        }
        Ok(())
    }

    /// Chunked transition: streams the contiguous label buffer and the
    /// flattened feature buffer instead of materializing one [`Row`] (two
    /// heap allocations) per training point.  Per-class summaries see their
    /// rows in exactly the per-row order, so states are bit-identical to the
    /// fallback.
    fn transition_chunk(
        &self,
        state: &mut NaiveBayesState,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let label_idx = schema.index_of(&self.label_column)?;
        let features_idx = schema.index_of(&self.features_column)?;
        let (labels, label_nulls) = match chunk.column(label_idx) {
            ColumnChunk::Text { values, nulls } => (values, nulls),
            _ => return transition_chunk_by_rows(self, state, chunk, schema),
        };
        if !matches!(chunk.column(features_idx), ColumnChunk::DoubleArray { .. }) {
            return transition_chunk_by_rows(self, state, chunk, schema);
        }
        let features = chunk.double_arrays(features_idx)?;
        for (i, label) in labels.iter().enumerate() {
            // NULLs raise the same type errors the per-row accessors raise.
            if label_nulls.is_null(i) {
                return Err(madlib_engine::EngineError::TypeMismatch {
                    expected: "text",
                    found: "null".to_owned(),
                });
            }
            if features.nulls().is_null(i) {
                return Err(madlib_engine::EngineError::TypeMismatch {
                    expected: "double precision[]",
                    found: "null".to_owned(),
                });
            }
            let row_features = features.row(i);
            if state.num_features == 0 {
                state.num_features = row_features.len();
            } else if row_features.len() != state.num_features {
                return Err(madlib_engine::EngineError::aggregate(format!(
                    "inconsistent feature width: expected {}, found {}",
                    state.num_features,
                    row_features.len()
                )));
            }
            if !state.classes.contains_key(label) {
                state
                    .classes
                    .insert(label.clone(), vec![Summary::new(); row_features.len()]);
            }
            let summaries = state
                .classes
                .get_mut(label)
                .expect("class entry just ensured");
            for (summary, value) in summaries.iter_mut().zip(row_features) {
                summary.update(*value);
            }
        }
        Ok(())
    }

    fn merge(&self, left: NaiveBayesState, right: NaiveBayesState) -> NaiveBayesState {
        if left.classes.is_empty() {
            return right;
        }
        let mut out = left;
        if out.num_features == 0 {
            out.num_features = right.num_features;
        }
        for (label, summaries) in right.classes {
            match out.classes.get_mut(&label) {
                None => {
                    out.classes.insert(label, summaries);
                }
                Some(existing) => {
                    for (a, b) in existing.iter_mut().zip(&summaries) {
                        a.merge(b);
                    }
                }
            }
        }
        out
    }

    fn finalize(&self, state: NaiveBayesState) -> madlib_engine::Result<NaiveBayesModel> {
        if state.classes.is_empty() {
            return Err(madlib_engine::EngineError::aggregate(
                "naive Bayes over empty input",
            ));
        }
        let mut classes = BTreeMap::new();
        let mut total_rows = 0u64;
        for (label, summaries) in state.classes {
            let count = summaries.first().map(|s| s.count()).unwrap_or(0);
            total_rows += count;
            let means = summaries.iter().map(|s| s.mean().unwrap_or(0.0)).collect();
            let variances = summaries
                .iter()
                .map(|s| s.variance_population().unwrap_or(0.0).max(1e-9))
                .collect();
            classes.insert(
                label,
                ClassStats {
                    count,
                    means,
                    variances,
                },
            );
        }
        Ok(NaiveBayesModel {
            classes,
            total_rows,
            num_features: state.num_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::{row, Column, ColumnType, Executor, Schema, Table};

    fn session() -> Session {
        Session::in_memory(1).unwrap()
    }

    fn labeled_schema() -> Schema {
        Schema::new(vec![
            Column::new("label", ColumnType::Text),
            Column::new("features", ColumnType::DoubleArray),
        ])
    }

    fn two_blob_table(segments: usize) -> Table {
        let mut t = Table::new(labeled_schema(), segments).unwrap();
        // Class A around (0, 0); class B around (10, 10).
        for i in 0..50 {
            let jitter = (i % 5) as f64 * 0.1;
            t.insert(row!["A", vec![0.0 + jitter, 0.5 - jitter]])
                .unwrap();
            t.insert(row!["B", vec![10.0 - jitter, 9.5 + jitter]])
                .unwrap();
        }
        t
    }

    #[test]
    fn separates_well_separated_classes() {
        let t = two_blob_table(4);
        let model = NaiveBayes::new("label", "features")
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(model.classes.len(), 2);
        assert_eq!(model.total_rows, 100);
        assert_eq!(model.num_features, 2);
        assert_eq!(model.predict(&[0.1, 0.4]).unwrap(), "A");
        assert_eq!(model.predict(&[9.8, 9.9]).unwrap(), "B");
        let scores = model.log_scores(&[0.0, 0.0]).unwrap();
        assert_eq!(scores[0].0, "A");
        assert!(scores[0].1 > scores[1].1);
    }

    #[test]
    fn partition_invariance() {
        let t1 = two_blob_table(1);
        let t8 = t1.repartition(8).unwrap();
        let m1 = NaiveBayes::new("label", "features")
            .fit(&Dataset::from_table(&t1), &session())
            .unwrap();
        let m8 = NaiveBayes::new("label", "features")
            .fit(&Dataset::from_table(&t8), &session())
            .unwrap();
        for (label, stats) in &m1.classes {
            let other = &m8.classes[label];
            assert_eq!(stats.count, other.count);
            for (a, b) in stats.means.iter().zip(&other.means) {
                assert!((a - b).abs() < 1e-9);
            }
            for (a, b) in stats.variances.iter().zip(&other.variances) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn chunked_and_row_paths_are_bit_identical() {
        let base = two_blob_table(1);
        let mut t = Table::new(base.schema().clone(), 3)
            .unwrap()
            .with_chunk_capacity(7)
            .unwrap();
        t.insert_all(base.iter()).unwrap();
        let nb = NaiveBayes::new("label", "features");
        let chunked = nb.fit(&Dataset::from_table(&t), &session()).unwrap();
        let by_rows = nb
            .fit(
                &Dataset::from_table(&t).with_executor(Executor::row_at_a_time()),
                &session(),
            )
            .unwrap();
        assert_eq!(chunked.total_rows, by_rows.total_rows);
        for (label, stats) in &chunked.classes {
            let other = &by_rows.classes[label];
            assert_eq!(stats.count, other.count);
            for (a, b) in stats.means.iter().zip(&other.means) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in stats.variances.iter().zip(&other.variances) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn class_priors_influence_prediction() {
        let mut t = Table::new(labeled_schema(), 2).unwrap();
        // Heavily imbalanced identical distributions: prior should dominate.
        for _ in 0..95 {
            t.insert(row!["common", vec![0.0]]).unwrap();
        }
        for _ in 0..5 {
            t.insert(row!["rare", vec![0.0]]).unwrap();
        }
        let model = NaiveBayes::new("label", "features")
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(model.predict(&[0.0]).unwrap(), "common");
    }

    #[test]
    fn error_handling() {
        let empty = Table::new(labeled_schema(), 2).unwrap();
        assert!(NaiveBayes::new("label", "features")
            .fit(&Dataset::from_table(&empty), &session())
            .is_err());

        let mut ragged = Table::new(labeled_schema(), 1).unwrap();
        ragged.insert(row!["A", vec![1.0, 2.0]]).unwrap();
        ragged.insert(row!["A", vec![1.0]]).unwrap();
        assert!(NaiveBayes::new("label", "features")
            .fit(&Dataset::from_table(&ragged), &session())
            .is_err());

        let t = two_blob_table(1);
        let model = NaiveBayes::new("label", "features")
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert!(model.predict(&[1.0]).is_err());
        assert!(model.log_scores(&[1.0, 2.0, 3.0]).is_err());
    }
}
