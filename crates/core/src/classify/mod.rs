//! Supervised classification methods: naive Bayes, C4.5 decision trees, and
//! linear support vector machines.

pub mod decision_tree;
pub mod naive_bayes;
pub mod svm;

pub use decision_tree::{DecisionTree, DecisionTreeModel};
pub use naive_bayes::{NaiveBayes, NaiveBayesModel};
pub use svm::{LinearSvm, SvmModel};
