//! Linear support vector machines.
//!
//! MADlib's SVM module (Table 1) and the Wisconsin SGD framework's
//! "Classification (SVM)" objective (Table 2) both train a linear SVM by
//! stochastic (sub)gradient descent on the regularized hinge loss — the
//! Pegasos-style update.  Labels are `±1`; the decision function is
//! `sign(⟨w, x⟩)` (add a constant 1 feature for a bias term).

use crate::error::{MethodError, Result};
use crate::train::{Estimator, Session};
use madlib_engine::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fitted linear SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    /// Weight vector.
    pub weights: Vec<f64>,
    /// Regularization parameter λ used during training.
    pub lambda: f64,
    /// Number of epochs run.
    pub epochs: usize,
    /// Average hinge loss + regularization on the final epoch.
    pub final_objective: f64,
    /// Number of training rows.
    pub num_rows: usize,
}

impl SvmModel {
    /// Raw decision value `⟨w, x⟩`.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on a feature-length mismatch.
    pub fn decision_value(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.weights.len() {
            return Err(MethodError::invalid_input(format!(
                "feature length {} does not match weight length {}",
                x.len(),
                self.weights.len()
            )));
        }
        Ok(self.weights.iter().zip(x).map(|(w, v)| w * v).sum())
    }

    /// Predicted label in {−1, +1}.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on a feature-length mismatch.
    pub fn predict(&self, x: &[f64]) -> Result<f64> {
        Ok(if self.decision_value(x)? >= 0.0 {
            1.0
        } else {
            -1.0
        })
    }
}

/// Linear SVM trained with Pegasos-style stochastic subgradient descent.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    label_column: String,
    features_column: String,
    lambda: f64,
    epochs: usize,
    seed: u64,
}

impl LinearSvm {
    /// Creates a trainer with defaults (λ = 1e-3, 20 epochs, seed 0).
    pub fn new(label_column: impl Into<String>, features_column: impl Into<String>) -> Self {
        Self {
            label_column: label_column.into(),
            features_column: features_column.into(),
            lambda: 1e-3,
            epochs: 20,
            seed: 0,
        }
    }

    /// Sets the regularization strength λ.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] for λ ≤ 0.
    pub fn with_lambda(mut self, lambda: f64) -> Result<Self> {
        if lambda <= 0.0 {
            return Err(MethodError::invalid_parameter("lambda", "must be positive"));
        }
        self.lambda = lambda;
        Ok(self)
    }

    /// Sets the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the shuffling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Estimator for LinearSvm {
    type Model = SvmModel;

    /// Fits the model over the dataset's (filtered) rows.  Labels must be
    /// −1 or +1 (0/1 labels are remapped).
    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<SvmModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        let label_col = self.label_column.clone();
        let feat_col = self.features_column.clone();
        let rows: Vec<(f64, Vec<f64>)> = dataset
            .map_rows(move |row, schema| {
                let y = row.get_named(schema, &label_col)?.as_double()?;
                let x = row
                    .get_named(schema, &feat_col)?
                    .as_double_array()?
                    .to_vec();
                Ok((y, x))
            })
            .map_err(MethodError::from)?;
        let width = rows
            .first()
            .map(|(_, x)| x.len())
            .ok_or_else(|| MethodError::invalid_input("empty input table"))?;
        let mut data = Vec::with_capacity(rows.len());
        for (y, x) in rows {
            if x.len() != width {
                return Err(MethodError::invalid_input(
                    "inconsistent feature widths across rows",
                ));
            }
            let label = if y == 0.0 { -1.0 } else { y.signum() };
            data.push((label, x));
        }

        let mut weights = vec![0.0; width];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut t: u64 = 0;
        for _epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f64);
                let (y, x) = &data[i];
                let margin: f64 = weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() * y;
                // w ← (1 − ηλ) w  [+ η y x  when the margin is violated]
                let shrink = 1.0 - eta * self.lambda;
                for w in weights.iter_mut() {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, v) in weights.iter_mut().zip(x) {
                        *w += eta * y * v;
                    }
                }
            }
        }

        // Final objective: λ/2 ‖w‖² + mean hinge loss.
        let norm_sq: f64 = weights.iter().map(|w| w * w).sum();
        let hinge: f64 = data
            .iter()
            .map(|(y, x)| {
                let margin: f64 = weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() * y;
                (1.0 - margin).max(0.0)
            })
            .sum::<f64>()
            / data.len() as f64;
        Ok(SvmModel {
            weights,
            lambda: self.lambda,
            epochs: self.epochs,
            final_objective: 0.5 * self.lambda * norm_sq + hinge,
            num_rows: data.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::{row, Column, ColumnType, Schema, Table};

    fn session() -> Session {
        Session::in_memory(1).unwrap()
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ])
    }

    fn separable_table(segments: usize) -> Table {
        let mut t = Table::new(schema(), segments).unwrap();
        // Separable by the hyperplane x1 + x2 = 0 with a wide margin.
        for i in 0..100 {
            let offset = 1.0 + (i % 10) as f64 * 0.2;
            let along = (i % 7) as f64 - 3.0;
            // Positive side.
            t.insert(row![
                1.0,
                vec![1.0, offset + along * 0.1, offset - along * 0.1]
            ])
            .unwrap();
            // Negative side.
            t.insert(row![
                -1.0,
                vec![1.0, -offset + along * 0.1, -offset - along * 0.1]
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn separates_linearly_separable_data() {
        let t = separable_table(4);
        let model = LinearSvm::new("y", "x")
            .with_epochs(30)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(model.num_rows, 200);
        let mut correct = 0;
        for row in t.iter() {
            let y = row.get(0).as_double().unwrap();
            let x = row.get(1).as_double_array().unwrap();
            if model.predict(x).unwrap() == y {
                correct += 1;
            }
        }
        assert!(
            correct >= 195,
            "expected near-perfect separation, got {correct}/200"
        );
        assert!(model.final_objective < 0.5);
    }

    #[test]
    fn zero_one_labels_are_remapped() {
        let mut t = Table::new(schema(), 2).unwrap();
        for i in 0..50 {
            let v = i as f64 / 10.0 - 2.5;
            let y = if v > 0.0 { 1.0 } else { 0.0 };
            t.insert(row![y, vec![1.0, v]]).unwrap();
        }
        let model = LinearSvm::new("y", "x")
            .with_epochs(40)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(model.predict(&[1.0, 2.0]).unwrap(), 1.0);
        assert_eq!(model.predict(&[1.0, -2.0]).unwrap(), -1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = separable_table(2);
        let a = LinearSvm::new("y", "x")
            .with_seed(7)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        let b = LinearSvm::new("y", "x")
            .with_seed(7)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn parameter_validation_and_errors() {
        assert!(LinearSvm::new("y", "x").with_lambda(0.0).is_err());
        assert!(LinearSvm::new("y", "x").with_lambda(0.1).is_ok());
        let empty = Table::new(schema(), 2).unwrap();
        assert!(LinearSvm::new("y", "x")
            .fit(&Dataset::from_table(&empty), &session())
            .is_err());

        let mut ragged = Table::new(schema(), 1).unwrap();
        ragged.insert(row![1.0, vec![1.0, 2.0]]).unwrap();
        ragged.insert(row![-1.0, vec![1.0]]).unwrap();
        assert!(LinearSvm::new("y", "x")
            .fit(&Dataset::from_table(&ragged), &session())
            .is_err());

        let t = separable_table(1);
        let model = LinearSvm::new("y", "x")
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert!(model.decision_value(&[1.0]).is_err());
    }
}
