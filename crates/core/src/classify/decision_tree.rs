//! Decision trees in the C4.5 style.
//!
//! Table 1 of the paper lists "Decision Trees (C4.5)".  This implementation
//! follows Quinlan's C4.5 recipe for numeric attributes: at every node the
//! candidate split for each feature is the threshold midway between adjacent
//! sorted values that maximizes *gain ratio* (information gain normalized by
//! the split's intrinsic information), recursion stops on purity, depth, or
//! minimum node size, and a chi-square significance pre-prune can reject
//! splits that are not better than chance.
//!
//! Training data is read from an engine table (label text + feature array);
//! the per-node statistics are computed from an in-memory copy of the rows
//! reaching the node, which mirrors how MADlib's C4.5 module materializes
//! per-node row sets in temp tables.

use crate::error::{MethodError, Result};
use crate::train::{Estimator, Session};
use madlib_engine::chunk::ColumnChunk;
use madlib_engine::dataset::Dataset;
use madlib_stats::ChiSquare;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node of the fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// Leaf predicting a class label.
    Leaf {
        /// Predicted label.
        label: String,
        /// Number of training rows that reached the leaf.
        samples: usize,
        /// Fraction of those rows carrying the predicted label.
        purity: f64,
    },
    /// Internal split on `feature <= threshold`.
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold (goes left when `x[feature] <= threshold`).
        threshold: f64,
        /// Gain ratio achieved by this split.
        gain_ratio: f64,
        /// Left subtree (`<= threshold`).
        left: Box<TreeNode>,
        /// Right subtree (`> threshold`).
        right: Box<TreeNode>,
    },
}

/// A fitted decision-tree model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeModel {
    /// Root node.
    pub root: TreeNode,
    /// Number of features expected by [`DecisionTreeModel::predict`].
    pub num_features: usize,
    /// Number of training rows.
    pub num_rows: usize,
}

impl DecisionTreeModel {
    /// Predicts the class label for a feature vector.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on a feature-length mismatch.
    pub fn predict(&self, x: &[f64]) -> Result<&str> {
        if x.len() != self.num_features {
            return Err(MethodError::invalid_input(format!(
                "feature length {} does not match model width {}",
                x.len(),
                self.num_features
            )));
        }
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf { label, .. } => return Ok(label),
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        fn count(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

/// C4.5-style decision-tree learner.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    label_column: String,
    features_column: String,
    max_depth: usize,
    min_samples_split: usize,
    /// Chi-square significance level for accepting a split; `None` disables
    /// the significance pre-prune.
    significance_level: Option<f64>,
}

impl DecisionTree {
    /// Creates a learner with defaults (depth ≤ 10, min node size 2, no
    /// significance prune).
    pub fn new(label_column: impl Into<String>, features_column: impl Into<String>) -> Self {
        Self {
            label_column: label_column.into(),
            features_column: features_column.into(),
            max_depth: 10,
            min_samples_split: 2,
            significance_level: None,
        }
    }

    /// Limits the tree depth.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the minimum number of rows required to attempt a split.
    pub fn with_min_samples_split(mut self, min_samples_split: usize) -> Self {
        self.min_samples_split = min_samples_split.max(2);
        self
    }

    /// Enables the chi-square split significance test at level `alpha`
    /// (typically 0.05): a split is rejected when its class×branch
    /// contingency table is not significant.
    pub fn with_significance_level(mut self, alpha: f64) -> Self {
        self.significance_level = Some(alpha);
        self
    }
}

impl Estimator for DecisionTree {
    type Model = DecisionTreeModel;

    /// Fits the tree over the dataset's (filtered) rows.
    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<DecisionTreeModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        // Materialize (label, features) pairs via the chunk-level projection:
        // whole-column reads per chunk instead of one row materialization per
        // training point (partially selected chunks arrive compacted).
        let label_col = self.label_column.clone();
        let feat_col = self.features_column.clone();
        let rows: Vec<(String, Vec<f64>)> = dataset
            .map_chunks(move |chunk, schema| {
                let label_idx = schema.index_of(&label_col)?;
                let feat_idx = schema.index_of(&feat_col)?;
                let mut out = Vec::with_capacity(chunk.len());
                match chunk.column(label_idx) {
                    ColumnChunk::Text { values, nulls }
                        if matches!(chunk.column(feat_idx), ColumnChunk::DoubleArray { .. }) =>
                    {
                        let features = chunk.double_arrays(feat_idx)?;
                        for (i, label) in values.iter().enumerate() {
                            if nulls.is_null(i) || features.nulls().is_null(i) {
                                // Same errors the row-level accessors raise.
                                let row = chunk.row(i);
                                row.get(label_idx).as_text()?;
                                row.get(feat_idx).as_double_array()?;
                            }
                            out.push((label.clone(), features.row(i).to_vec()));
                        }
                    }
                    _ => {
                        for row in chunk.rows() {
                            let label = row.get(label_idx).as_text()?.to_owned();
                            let features = row.get(feat_idx).as_double_array()?.to_vec();
                            out.push((label, features));
                        }
                    }
                }
                Ok(out)
            })
            .map_err(MethodError::from)?;
        let num_features = rows
            .first()
            .map(|(_, f)| f.len())
            .ok_or_else(|| MethodError::invalid_input("empty input table"))?;
        if rows.iter().any(|(_, f)| f.len() != num_features) {
            return Err(MethodError::invalid_input(
                "inconsistent feature widths across rows",
            ));
        }
        let indices: Vec<usize> = (0..rows.len()).collect();
        let root = self.build_node(&rows, &indices, 0);
        Ok(DecisionTreeModel {
            root,
            num_features,
            num_rows: rows.len(),
        })
    }
}

impl DecisionTree {
    fn build_node(&self, rows: &[(String, Vec<f64>)], indices: &[usize], depth: usize) -> TreeNode {
        let (majority, majority_count) = majority_label(rows, indices);
        let purity = majority_count as f64 / indices.len() as f64;
        if purity >= 1.0 - 1e-12
            || depth >= self.max_depth
            || indices.len() < self.min_samples_split
        {
            return TreeNode::Leaf {
                label: majority,
                samples: indices.len(),
                purity,
            };
        }
        match self.best_split(rows, indices) {
            None => TreeNode::Leaf {
                label: majority,
                samples: indices.len(),
                purity,
            },
            Some(split) => {
                let left = self.build_node(rows, &split.left_indices, depth + 1);
                let right = self.build_node(rows, &split.right_indices, depth + 1);
                TreeNode::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    gain_ratio: split.gain_ratio,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
    }

    fn best_split(&self, rows: &[(String, Vec<f64>)], indices: &[usize]) -> Option<SplitChoice> {
        let num_features = rows[indices[0]].1.len();
        let parent_entropy = entropy(rows, indices);
        let mut best: Option<SplitChoice> = None;
        for feature in 0..num_features {
            let mut values: Vec<(f64, usize)> =
                indices.iter().map(|&i| (rows[i].1[feature], i)).collect();
            values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for w in 1..values.len() {
                let (prev, cur) = (values[w - 1].0, values[w].0);
                if (cur - prev).abs() < 1e-12 {
                    continue;
                }
                let threshold = 0.5 * (prev + cur);
                let left_indices: Vec<usize> = values[..w].iter().map(|&(_, i)| i).collect();
                let right_indices: Vec<usize> = values[w..].iter().map(|&(_, i)| i).collect();
                let n = indices.len() as f64;
                let p_left = left_indices.len() as f64 / n;
                let p_right = right_indices.len() as f64 / n;
                let gain = parent_entropy
                    - p_left * entropy(rows, &left_indices)
                    - p_right * entropy(rows, &right_indices);
                let intrinsic = -p_left * p_left.log2() - p_right * p_right.log2();
                if intrinsic <= 1e-12 || gain <= 1e-12 {
                    continue;
                }
                let gain_ratio = gain / intrinsic;
                if let Some(alpha) = self.significance_level {
                    if !split_is_significant(rows, &left_indices, &right_indices, alpha) {
                        continue;
                    }
                }
                if best
                    .as_ref()
                    .map(|b| gain_ratio > b.gain_ratio)
                    .unwrap_or(true)
                {
                    best = Some(SplitChoice {
                        feature,
                        threshold,
                        gain_ratio,
                        left_indices,
                        right_indices,
                    });
                }
            }
        }
        best
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain_ratio: f64,
    left_indices: Vec<usize>,
    right_indices: Vec<usize>,
}

fn majority_label(rows: &[(String, Vec<f64>)], indices: &[usize]) -> (String, usize) {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for &i in indices {
        *counts.entry(rows[i].0.as_str()).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(label, count)| (label.to_owned(), count))
        .unwrap_or_else(|| (String::new(), 0))
}

fn entropy(rows: &[(String, Vec<f64>)], indices: &[usize]) -> f64 {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for &i in indices {
        *counts.entry(rows[i].0.as_str()).or_insert(0) += 1;
    }
    let n = indices.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Chi-square test of independence between the class distribution and the
/// left/right branch assignment.
fn split_is_significant(
    rows: &[(String, Vec<f64>)],
    left: &[usize],
    right: &[usize],
    alpha: f64,
) -> bool {
    let mut classes: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for &i in left {
        classes.entry(rows[i].0.as_str()).or_insert((0.0, 0.0)).0 += 1.0;
    }
    for &i in right {
        classes.entry(rows[i].0.as_str()).or_insert((0.0, 0.0)).1 += 1.0;
    }
    let n_left = left.len() as f64;
    let n_right = right.len() as f64;
    let n = n_left + n_right;
    let mut chi2 = 0.0;
    for &(l, r) in classes.values() {
        let class_total = l + r;
        let expected_left = class_total * n_left / n;
        let expected_right = class_total * n_right / n;
        if expected_left > 0.0 {
            chi2 += (l - expected_left) * (l - expected_left) / expected_left;
        }
        if expected_right > 0.0 {
            chi2 += (r - expected_right) * (r - expected_right) / expected_right;
        }
    }
    let df = (classes.len().max(2) - 1) as f64;
    ChiSquare::new(df).p_value(chi2) < alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::{row, Column, ColumnType, Schema, Table};

    fn session() -> Session {
        Session::in_memory(1).unwrap()
    }

    fn labeled_schema() -> Schema {
        Schema::new(vec![
            Column::new("label", ColumnType::Text),
            Column::new("features", ColumnType::DoubleArray),
        ])
    }

    /// Conjunctive rule (label "in" iff x > 0 AND y > 0) learnable by greedy
    /// axis-aligned splits: the first split on x isolates a pure "out" side,
    /// the second split on y finishes the job.
    fn quadrant_table(segments: usize) -> Table {
        let mut t = Table::new(labeled_schema(), segments).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 - 4.5;
                let y = j as f64 - 4.5;
                let label = if x > 0.0 && y > 0.0 { "in" } else { "out" };
                t.insert(row![label, vec![x, y]]).unwrap();
            }
        }
        t
    }

    #[test]
    fn learns_quadrant_rule_exactly() {
        let t = quadrant_table(4);
        let model = DecisionTree::new("label", "features")
            .with_max_depth(4)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(model.num_rows, 100);
        assert_eq!(model.predict(&[3.0, 3.0]).unwrap(), "in");
        assert_eq!(model.predict(&[-3.0, -3.0]).unwrap(), "out");
        assert_eq!(model.predict(&[3.0, -3.0]).unwrap(), "out");
        assert_eq!(model.predict(&[-3.0, 3.0]).unwrap(), "out");
        assert!(model.depth() >= 2);
        assert!(model.leaf_count() >= 3);
    }

    #[test]
    fn pure_input_yields_single_leaf() {
        let mut t = Table::new(labeled_schema(), 2).unwrap();
        for i in 0..20 {
            t.insert(row!["only", vec![i as f64]]).unwrap();
        }
        let model = DecisionTree::new("label", "features")
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(model.leaf_count(), 1);
        assert_eq!(model.depth(), 0);
        assert_eq!(model.predict(&[100.0]).unwrap(), "only");
        match &model.root {
            TreeNode::Leaf {
                purity, samples, ..
            } => {
                assert_eq!(*samples, 20);
                assert!((purity - 1.0).abs() < 1e-12);
            }
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    fn depth_limit_is_respected() {
        let t = quadrant_table(2);
        let model = DecisionTree::new("label", "features")
            .with_max_depth(1)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert!(model.depth() <= 1);
    }

    #[test]
    fn significance_prune_rejects_noise_splits() {
        // Labels are independent of the single feature: a significant split
        // should not be found, so the tree stays a single leaf.
        let mut t = Table::new(labeled_schema(), 2).unwrap();
        for i in 0..60 {
            let label = if i % 2 == 0 { "a" } else { "b" };
            // Feature alternates in a way uncorrelated with the label pattern
            // (period 3 vs period 2).
            t.insert(row![label, vec![(i % 3) as f64]]).unwrap();
        }
        let model = DecisionTree::new("label", "features")
            .with_significance_level(0.05)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert_eq!(model.leaf_count(), 1, "noise split should be pruned");
    }

    #[test]
    fn error_handling() {
        let empty = Table::new(labeled_schema(), 2).unwrap();
        assert!(DecisionTree::new("label", "features")
            .fit(&Dataset::from_table(&empty), &session())
            .is_err());

        let mut ragged = Table::new(labeled_schema(), 1).unwrap();
        ragged.insert(row!["a", vec![1.0, 2.0]]).unwrap();
        ragged.insert(row!["b", vec![1.0]]).unwrap();
        assert!(DecisionTree::new("label", "features")
            .fit(&Dataset::from_table(&ragged), &session())
            .is_err());

        let t = quadrant_table(1);
        let model = DecisionTree::new("label", "features")
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        assert!(model.predict(&[1.0]).is_err());
    }

    #[test]
    fn min_samples_split_floor() {
        let t = quadrant_table(1);
        let model = DecisionTree::new("label", "features")
            .with_min_samples_split(1_000)
            .fit(&Dataset::from_table(&t), &session())
            .unwrap();
        // Cannot split anywhere: single leaf with the majority label.
        assert_eq!(model.leaf_count(), 1);
    }
}
