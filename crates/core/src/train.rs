//! The uniform training convention: `Session::train(estimator, dataset)`.
//!
//! MADlib's interface contract (paper Sections 3–4) is that every method is
//! called the same way — `method_train(source_table, output, dep_var,
//! indep_vars, grouping_cols)` — and that supplying `grouping_cols` trains
//! one model *per group* in the same call.  This module is the Rust shape of
//! that contract:
//!
//! * [`Estimator`] — one trait, one signature, for every trainable method:
//!   `fit(&self, dataset, session)`.  The dataset carries the rows
//!   (source table + `WHERE` + `grouping_cols`, see
//!   [`madlib_engine::dataset::Dataset`]); the session carries the execution
//!   context (an [`Executor`] plus the [`Database`] iterative drivers stage
//!   their temp tables in).  This replaces the old per-method signature zoo
//!   (`LinearRegression::fit(&executor, &table)` vs
//!   `LogisticRegression::fit(&executor, &db, &table)`).
//! * [`Session::train`] — fits one model over an ungrouped dataset.
//! * [`Session::train_grouped`] — the paper's `grouping_cols` scenario: one
//!   model per distinct group key, returned as [`GroupedModels`] keyed by
//!   the typed [`GroupKey`]s of the grouped scan.  `grouping_cols` is an
//!   arbitrary column list, so `group_by(["a", "b"])` trains one model per
//!   composite `(a, b)` tuple.  Single-pass aggregating
//!   estimators (linear regression, naive Bayes, the profiler) override
//!   [`Estimator::fit_grouped`] to train *all* groups in one
//!   segment-parallel [`Dataset::aggregate_per_group`] pass; iterative
//!   estimators use the default per-group gather, which splits the input
//!   into per-group tables **preserving each row's segment** so every
//!   per-group fit is bitwise identical to filtering the source down to
//!   that group and fitting it alone (property-tested in
//!   `tests/grouped_training.rs`).
//!
//! # Parallel grouped fitting and determinism
//!
//! Both grouped paths fan the per-group work out over the engine's
//! work-stealing worker pool ([`madlib_engine::scan`]): the single-pass
//! path parallelizes per-group *finalize*, the gather path parallelizes the
//! per-group *fits* themselves.  The determinism contract is that each
//! group's fit/finalize is a pure function of that group's rows, so
//! scheduling only decides **which worker** computes a group, never the
//! result — outputs land in per-group slots and are reassembled in key
//! order, making grouped training bit-for-bit identical to the serial
//! per-group loop (and to filter-then-fit), property-tested in
//! `tests/grouped_training.rs`.  A panic inside one group's fit surfaces as
//! a typed [`madlib_engine::EngineError::WorkerPanicked`] error instead of
//! poisoning the whole training call.

use crate::error::{MethodError, Result};
use madlib_engine::dataset::Dataset;
use madlib_engine::group::GroupKey;
use madlib_engine::materialize::MaterializedAggregate;
use madlib_engine::{Database, Executor, Value};

/// Execution context for training: the executor that runs scans and the
/// database iterative drivers stage their (small) inter-iteration state in.
///
/// A session is cheap to clone ([`Database`] is a shared handle and
/// [`Executor`] is `Copy`).  [`Session::train`] / [`Session::train_grouped`]
/// supply the session's executor as the dataset's *default*: a dataset that
/// never called [`Dataset::with_executor`] runs under the session's
/// executor, while an explicitly bound one keeps its own (so mode
/// comparisons can pin either side).
#[derive(Debug, Clone)]
pub struct Session {
    executor: Executor,
    database: Database,
}

impl Session {
    /// Creates a session over `database` with the default parallel
    /// chunk-at-a-time executor.
    pub fn new(database: Database) -> Self {
        Self {
            executor: Executor::new(),
            database,
        }
    }

    /// Creates a session over a fresh in-memory database whose tables
    /// default to `num_segments` partitions.
    ///
    /// # Errors
    /// Propagates [`Database::new`] errors (zero segments).
    pub fn in_memory(num_segments: usize) -> Result<Self> {
        Ok(Self::new(Database::new(num_segments)?))
    }

    /// Replaces the session's executor (e.g. with
    /// [`Executor::row_at_a_time`] for mode comparisons).
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The executor scans run under.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The database iterative drivers stage temp state in.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Opens a dataset over a snapshot of the named catalog table, bound to
    /// this session's executor.
    ///
    /// # Errors
    /// Returns an error for an unknown table name.
    pub fn dataset(&self, name: &str) -> Result<Dataset<'static>> {
        Ok(self.database.dataset(name)?.with_executor(self.executor))
    }

    /// Trains one model over an ungrouped dataset.
    ///
    /// # Errors
    /// Propagates estimator errors; errors when the dataset has grouping
    /// columns (use [`Session::train_grouped`]).
    pub fn train<E: Estimator>(&self, estimator: &E, dataset: &Dataset<'_>) -> Result<E::Model> {
        if dataset.is_grouped() {
            return Err(MethodError::invalid_input(
                "dataset has grouping columns; use Session::train_grouped",
            ));
        }
        estimator.fit(
            &dataset.reborrow().with_default_executor(self.executor),
            self,
        )
    }

    /// Trains one model per distinct group key of a `group_by` dataset —
    /// MADlib's `grouping_cols` — returning the models keyed by the typed
    /// (possibly composite, for multi-column `group_by`) [`GroupKey`]s of
    /// the grouped scan, sorted by key (NULL group first).
    ///
    /// Per-group fits run concurrently on the engine's work-stealing worker
    /// pool (see the module docs for the determinism contract: results are
    /// bit-identical to the serial per-group loop).
    ///
    /// # Errors
    /// Propagates estimator errors; errors when the dataset has no grouping
    /// columns (use [`Session::train`]).
    pub fn train_grouped<E>(
        &self,
        estimator: &E,
        dataset: &Dataset<'_>,
    ) -> Result<GroupedModels<E::Model>>
    where
        E: Estimator + Sync,
        E::Model: Send,
    {
        if !dataset.is_grouped() {
            return Err(MethodError::invalid_input(
                "dataset has no grouping columns; call group_by([...]) or use Session::train",
            ));
        }
        estimator.fit_grouped(
            &dataset.reborrow().with_default_executor(self.executor),
            self,
        )
    }

    /// Trains a model over the whole catalog table `table`, registers it in
    /// the model catalog under `name` (`CREATE OR REPLACE` semantics), and
    /// sets up whatever incremental machinery the estimator maintains —
    /// materialized partial aggregate states for single-pass estimators,
    /// just the cataloged model for warm-starting iterative ones.
    ///
    /// After rows are appended to `table` (via
    /// [`Database::append_rows`] or [`Database::with_table_mut`]), call
    /// [`Session::refresh`] to bring the model up to date without a full
    /// retrain.
    ///
    /// # Errors
    /// Propagates estimator, table-lookup and registration errors.
    pub fn train_incremental<E: IncrementalEstimator>(
        &self,
        estimator: &E,
        table: &str,
        name: &str,
    ) -> Result<E::Model> {
        estimator.train_incremental(self, table, name)
    }

    /// Refreshes the model registered under `name` from the current contents
    /// of `table`: single-pass estimators absorb only the rows appended
    /// since the last train/refresh (their materialized states' chunk
    /// watermarks) and cheaply re-finalize — bit-identical to a full
    /// retrain; iterative estimators re-fit warm-started from the previous
    /// model in the catalog — same optimum within the convergence
    /// tolerance, in far fewer iterations.  The refreshed model replaces the
    /// cataloged one and is returned.
    ///
    /// # Errors
    /// Propagates estimator, view and catalog errors.
    pub fn refresh<E: IncrementalEstimator>(
        &self,
        estimator: &E,
        table: &str,
        name: &str,
    ) -> Result<E::Model> {
        estimator.refresh(self, table, name)
    }
}

/// A trainable method with the uniform `fit(dataset, session)` signature.
pub trait Estimator {
    /// The fitted model type.
    type Model;

    /// Fits one model over the dataset's (filtered) rows.
    ///
    /// Implementations read rows through the dataset's terminals (which
    /// honour its filter and executor) and stage any iteration state through
    /// `session.database()`.
    ///
    /// # Errors
    /// Surfaces malformed input and numerical failures as [`MethodError`].
    fn fit(&self, dataset: &Dataset<'_>, session: &Session) -> Result<Self::Model>;

    /// Fits one model per distinct group key of a grouped dataset.
    ///
    /// The default implementation is the *per-group gather*: it splits the
    /// dataset into per-group tables ([`Dataset::gather_groups`], which
    /// preserves every row's segment and per-segment order) and fits the
    /// groups concurrently on the engine's work-stealing worker pool —
    /// correct for any estimator, including iterative ones, because each
    /// per-group fit sees exactly the table a serial loop would; models are
    /// reassembled in key order, so the result is bitwise identical to
    /// filtering the source down to each group and fitting it alone.
    /// Single-pass aggregating estimators override this to train all groups
    /// in one segment-parallel pass (see [`fit_grouped_single_pass`]).
    ///
    /// # Errors
    /// Propagates per-group fit errors and grouping errors (no grouping
    /// column, unsupported multi-column grouping); a panicking per-group fit
    /// surfaces as [`madlib_engine::EngineError::WorkerPanicked`].
    fn fit_grouped(
        &self,
        dataset: &Dataset<'_>,
        session: &Session,
    ) -> Result<GroupedModels<Self::Model>>
    where
        Self: Sized + Sync,
        Self::Model: Send,
    {
        let groups = dataset.gather_groups()?;
        let executor = *dataset.executor();
        let fitted =
            madlib_engine::scan::run_per_item(groups, executor.is_parallel(), |_, (key, table)| {
                let group_dataset = Dataset::from_table(&table).with_executor(executor);
                self.fit(&group_dataset, session).map(|model| (key, model))
            });
        let mut models = Vec::with_capacity(fitted.len());
        for slot in fitted {
            // Outer Err = worker panic; inner Err = the fit's own failure.
            models.push(slot.map_err(MethodError::from)??);
        }
        Ok(GroupedModels::new(models))
    }
}

/// Grouped training for single-pass aggregating estimators: one
/// segment-parallel [`Dataset::aggregate_per_group`] pass trains every
/// group's model at once (the paper's "one regression per group in a single
/// scan").  Estimators whose [`madlib_engine::Aggregate::Output`] *is* their
/// model call this from their [`Estimator::fit_grouped`] override.
///
/// # Errors
/// Propagates aggregate and grouping errors.
pub fn fit_grouped_single_pass<E>(
    estimator: &E,
    dataset: &Dataset<'_>,
) -> Result<GroupedModels<E::Model>>
where
    E: Estimator + madlib_engine::Aggregate<Output = <E as Estimator>::Model>,
    <E as Estimator>::Model: Send,
{
    Ok(GroupedModels::new(dataset.aggregate_per_group(estimator)?))
}

/// An estimator whose model can be maintained under table appends without a
/// full retrain — the paper's algebraic transition/merge/final contract
/// applied to *streaming ingest*.
///
/// Two maintenance strategies, chosen per estimator:
///
/// * **Single-pass** estimators (linear regression, naive Bayes, the
///   profiler) keep a [`MaterializedAggregate`] view of their partial
///   transition states registered on the database
///   ([`Database::register_view`]).  [`IncrementalEstimator::refresh`]
///   absorbs only the rows appended past the view's chunk watermark and
///   re-finalizes — bit-identical to a full retrain, at O(appended) cost.
///   These implement the trait via [`train_incremental_single_pass`] /
///   [`refresh_single_pass`].
/// * **Iterative** estimators (logistic regression, k-means) warm-start:
///   `refresh` re-fits over the whole table but seeds the solver from the
///   previous model in the [`Database::models`] catalog, converging in far
///   fewer iterations after a small append (same optimum within the
///   solver's convergence tolerance, *not* bit-identical).
///
/// Both paths register the model under `name` with `CREATE OR REPLACE`
/// semantics, so [`Database::models`]`().get::<M>(name)` always serves the
/// latest refresh.
pub trait IncrementalEstimator: Estimator {
    /// Trains over the whole catalog table, registers the model under
    /// `name`, and installs the estimator's incremental machinery.
    ///
    /// # Errors
    /// Propagates fit, table-lookup and registration errors.
    fn train_incremental(&self, session: &Session, table: &str, name: &str) -> Result<Self::Model>;

    /// Brings the model registered under `name` up to date with `table`'s
    /// current contents (see the trait docs for the per-strategy cost and
    /// equivalence guarantees).  Falls back to
    /// [`IncrementalEstimator::train_incremental`] when `name` was never
    /// trained in this session.
    ///
    /// # Errors
    /// Propagates fit, view and catalog errors.
    fn refresh(&self, session: &Session, table: &str, name: &str) -> Result<Self::Model>;
}

/// The database view name backing the incremental model `name` — namespaced
/// so it cannot collide with user-registered views.
pub fn incremental_view_name(model_name: &str) -> String {
    format!("__incremental::{model_name}")
}

/// [`IncrementalEstimator::train_incremental`] for single-pass aggregating
/// estimators: registers a [`MaterializedAggregate`] view of the estimator's
/// transition states over `table`, absorbs the table's current rows, and
/// finalizes + catalogs the model.  Replaces any previous view/model of the
/// same `name`.
///
/// # Errors
/// Propagates table-lookup, absorb and finalize errors.
pub fn train_incremental_single_pass<E>(
    estimator: &E,
    session: &Session,
    table: &str,
    name: &str,
) -> Result<<E as Estimator>::Model>
where
    E: Estimator + madlib_engine::Aggregate<Output = <E as Estimator>::Model>,
    E: Clone + Send + 'static,
    <E as madlib_engine::Aggregate>::State: Clone + 'static,
    <E as Estimator>::Model: Clone + Send + Sync + 'static,
{
    let view = MaterializedAggregate::new(estimator.clone(), session.executor());
    session
        .database()
        .register_view(&incremental_view_name(name), table, Box::new(view))?;
    finalize_single_pass::<E>(session, name)
}

/// [`IncrementalEstimator::refresh`] for single-pass aggregating estimators:
/// absorbs rows appended past the view's watermark, re-finalizes, and
/// replaces the cataloged model.  Falls back to
/// [`train_incremental_single_pass`] when no view exists (e.g. a fresh
/// session refreshing a name it never trained).
///
/// # Errors
/// Propagates absorb, finalize and catalog errors.
pub fn refresh_single_pass<E>(
    estimator: &E,
    session: &Session,
    table: &str,
    name: &str,
) -> Result<<E as Estimator>::Model>
where
    E: Estimator + madlib_engine::Aggregate<Output = <E as Estimator>::Model>,
    E: Clone + Send + 'static,
    <E as madlib_engine::Aggregate>::State: Clone + 'static,
    <E as Estimator>::Model: Clone + Send + Sync + 'static,
{
    if !session.database().has_view(&incremental_view_name(name)) {
        return train_incremental_single_pass(estimator, session, table, name);
    }
    finalize_single_pass::<E>(session, name)
}

/// Catches the view backing `name` up to its source table and re-finalizes,
/// registering the resulting model under `name`.
fn finalize_single_pass<E>(session: &Session, name: &str) -> Result<<E as Estimator>::Model>
where
    E: Estimator + madlib_engine::Aggregate<Output = <E as Estimator>::Model>,
    E: Clone + Send + 'static,
    <E as madlib_engine::Aggregate>::State: Clone + 'static,
    <E as Estimator>::Model: Clone + Send + Sync + 'static,
{
    let model = session
        .database()
        .refresh_view(&incremental_view_name(name), |state| {
            state
                .as_any_mut()
                .downcast_mut::<MaterializedAggregate<E>>()
                .ok_or_else(|| {
                    madlib_engine::EngineError::invalid(format!(
                        "materialized view backing model {name:?} holds a different aggregate type"
                    ))
                })?
                .finalize()
        })?;
    session.database().models().register(name, model.clone());
    Ok(model)
}

/// One model per group, keyed by the typed [`GroupKey`]s of the grouped
/// scan, sorted by key (NULL group first).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedModels<M> {
    models: Vec<(GroupKey, M)>,
}

impl<M> GroupedModels<M> {
    /// Wraps already-keyed models (assumed sorted by key).
    pub fn new(models: Vec<(GroupKey, M)>) -> Self {
        Self { models }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no group produced a model.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Iterates over `(key, model)` pairs in key order.
    pub fn iter(&self) -> std::slice::Iter<'_, (GroupKey, M)> {
        self.models.iter()
    }

    /// The group keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &GroupKey> {
        self.models.iter().map(|(key, _)| key)
    }

    /// Looks up the model of the group containing `value` (NULL, NaN and
    /// signed zeros resolve by group-key semantics, not `Value` equality).
    /// For models trained with multiple grouping columns use
    /// [`GroupedModels::get_values`].
    pub fn get(&self, value: &Value) -> Option<&M> {
        self.get_key(&GroupKey::from_value(value))
    }

    /// Looks up the model of the group whose composite key matches `values`
    /// — one value per grouping column, in `group_by` order, with group-key
    /// semantics per part (NULL matches NULL, NaN matches NaN, `-0.0` ≠
    /// `0.0`).
    pub fn get_values(&self, values: &[Value]) -> Option<&M> {
        self.get_key(&GroupKey::from_values(values))
    }

    /// Looks up a model by its typed group key (binary search over the
    /// key-sorted entries).
    pub fn get_key(&self, key: &GroupKey) -> Option<&M> {
        self.models
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|idx| &self.models[idx].1)
    }

    /// Unwraps into the underlying `(key, model)` vector.
    pub fn into_vec(self) -> Vec<(GroupKey, M)> {
        self.models
    }
}

impl<M> IntoIterator for GroupedModels<M> {
    type Item = (GroupKey, M);
    type IntoIter = std::vec::IntoIter<(GroupKey, M)>;

    fn into_iter(self) -> Self::IntoIter {
        self.models.into_iter()
    }
}

impl<'a, M> IntoIterator for &'a GroupedModels<M> {
    type Item = &'a (GroupKey, M);
    type IntoIter = std::slice::Iter<'a, (GroupKey, M)>;

    fn into_iter(self) -> Self::IntoIter {
        self.models.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::LinearRegression;
    use madlib_engine::{row, Column, ColumnType, Schema, Table};

    fn grouped_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("g", ColumnType::Text),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, 3).unwrap();
        for i in 0..60 {
            let (g, slope) = if i % 2 == 0 { ("a", 2.0) } else { ("b", -1.0) };
            let x = i as f64 * 0.25;
            t.insert(row![g, slope * x + 1.0, vec![1.0, x]]).unwrap();
        }
        t
    }

    #[test]
    fn session_routes_grouped_and_ungrouped_training() {
        let t = grouped_table();
        let session = Session::in_memory(3).unwrap();
        let estimator = LinearRegression::new("y", "x");

        let whole = session.train(&estimator, &Dataset::from_table(&t)).unwrap();
        assert_eq!(whole.num_rows, 60);

        let grouped = session
            .train_grouped(&estimator, &Dataset::from_table(&t).group_by(["g"]))
            .unwrap();
        assert_eq!(grouped.len(), 2);
        let a = grouped.get(&Value::Text("a".into())).unwrap();
        assert!((a.coef[1] - 2.0).abs() < 1e-8);
        let b = grouped.get(&Value::Text("b".into())).unwrap();
        assert!((b.coef[1] + 1.0).abs() < 1e-8);
        assert!(grouped.get(&Value::Text("c".into())).is_none());

        // Mis-routed calls are rejected with guidance.
        assert!(session
            .train(&estimator, &Dataset::from_table(&t).group_by(["g"]))
            .is_err());
        assert!(session
            .train_grouped(&estimator, &Dataset::from_table(&t))
            .is_err());
    }

    #[test]
    fn explicitly_bound_dataset_executor_wins_over_the_session_default() {
        use madlib_engine::ExecutionMode;

        /// Reports which execution mode the training actually ran under.
        struct Probe;
        impl Estimator for Probe {
            type Model = ExecutionMode;
            fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<ExecutionMode> {
                Ok(dataset.executor().mode())
            }
        }

        let t = grouped_table();
        let session = Session::in_memory(1)
            .unwrap()
            .with_executor(Executor::row_at_a_time());
        // Unbound dataset: the session's executor applies.
        let mode = session.train(&Probe, &Dataset::from_table(&t)).unwrap();
        assert_eq!(mode, ExecutionMode::RowAtATime);
        // Explicitly bound dataset: its executor sticks.
        let mode = session
            .train(
                &Probe,
                &Dataset::from_table(&t).with_executor(Executor::new()),
            )
            .unwrap();
        assert_eq!(mode, ExecutionMode::Chunked);
    }

    #[test]
    fn session_dataset_binds_the_session_executor() {
        let session = Session::in_memory(2)
            .unwrap()
            .with_executor(Executor::row_at_a_time());
        session
            .database()
            .create_table(
                "data",
                Schema::new(vec![Column::new("v", ColumnType::Double)]),
            )
            .unwrap();
        let ds = session.dataset("data").unwrap();
        assert_eq!(ds.executor().mode(), session.executor().mode());
    }
}
