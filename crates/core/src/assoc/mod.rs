//! Association-rule mining.

pub mod apriori;

pub use apriori::{Apriori, AssociationRule, FrequentItemset};
