//! Association-rule mining.
//!
//! [`Apriori`] implements [`crate::train::Estimator`]: `Session::train`
//! returns an [`AprioriModel`] (frequent itemsets + rules), and
//! `Session::train_grouped` mines one model per `grouping_cols` key.

pub mod apriori;

pub use apriori::{Apriori, AprioriModel, AssociationRule, FrequentItemset};
