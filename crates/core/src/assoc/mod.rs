//! Association-rule mining.

pub mod apriori;

pub use apriori::{AssociationRule, Apriori, FrequentItemset};
