//! Association-rule mining with the Apriori algorithm.
//!
//! Table 1 lists "Association Rules" among the unsupervised methods.  The
//! implementation is the classical Apriori level-wise search: frequent
//! itemsets are grown one item at a time, candidate k-itemsets are generated
//! by joining frequent (k−1)-itemsets, and support counting is one parallel
//! pass over the transactions dataset per level — each pass is a genuine UDA
//! on the chunked scan pipeline (`ItemCountsAggregate` for level 1,
//! `CandidateSupportAggregate` for the candidate levels; both override
//! `transition_chunk` to read the flattened `text[]` buffers directly, and
//! the per-segment counts merge by addition).  [`Apriori`] trains through the
//! uniform [`Estimator`] convention: `Session::train` yields an
//! [`AprioriModel`] holding the frequent itemsets *and* the confidence-
//! filtered association rules, and `Session::train_grouped` mines one rule
//! set per `grouping_cols` key (per-region market baskets).

use crate::error::{MethodError, Result};
use crate::train::{Estimator, Session};
use madlib_engine::aggregate::transition_chunk_by_rows;
use madlib_engine::chunk::ColumnChunk;
use madlib_engine::dataset::Dataset;
use madlib_engine::{Aggregate, Row, RowChunk, Schema};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A frequent itemset with its support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// Items, sorted lexicographically.
    pub items: Vec<String>,
    /// Fraction of transactions containing all the items.
    pub support: f64,
    /// Absolute number of transactions containing all the items.
    pub count: u64,
}

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Left-hand side items.
    pub antecedent: Vec<String>,
    /// Right-hand side items.
    pub consequent: Vec<String>,
    /// Support of the full itemset.
    pub support: f64,
    /// Confidence `support(A ∪ C) / support(A)`.
    pub confidence: f64,
    /// Lift `confidence / support(C)`.
    pub lift: f64,
}

/// A mined market-basket model: the frequent itemsets and the association
/// rules meeting the confidence threshold, as produced by
/// `Session::train(&Apriori::new(...)?, &dataset)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AprioriModel {
    /// Frequent itemsets in level order (singletons first), each level
    /// sorted lexicographically.
    pub itemsets: Vec<FrequentItemset>,
    /// Association rules meeting the confidence threshold, sorted by
    /// confidence descending.
    pub rules: Vec<AssociationRule>,
    /// Number of transactions mined.
    pub num_transactions: u64,
}

impl AprioriModel {
    /// The frequent itemset with exactly these items (sorted), if any.
    pub fn itemset(&self, items: &[&str]) -> Option<&FrequentItemset> {
        self.itemsets
            .iter()
            .find(|f| f.items.iter().map(String::as_str).eq(items.iter().copied()))
    }
}

/// Apriori frequent-itemset and rule miner.
#[derive(Debug, Clone)]
pub struct Apriori {
    items_column: String,
    min_support: f64,
    min_confidence: f64,
    max_itemset_size: usize,
}

impl Apriori {
    /// Creates a miner with the given minimum support and confidence.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] when thresholds are outside
    /// `(0, 1]`.
    pub fn new(
        items_column: impl Into<String>,
        min_support: f64,
        min_confidence: f64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&min_support) || min_support == 0.0 {
            return Err(MethodError::invalid_parameter(
                "min_support",
                "must be in (0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&min_confidence) {
            return Err(MethodError::invalid_parameter(
                "min_confidence",
                "must be in [0, 1]",
            ));
        }
        Ok(Self {
            items_column: items_column.into(),
            min_support,
            min_confidence,
            max_itemset_size: 4,
        })
    }

    /// Caps the size of mined itemsets (default 4).
    pub fn with_max_itemset_size(mut self, max_itemset_size: usize) -> Self {
        self.max_itemset_size = max_itemset_size.max(1);
        self
    }

    /// Generates the candidate `size`-itemsets by joining frequent
    /// `(size−1)`-itemsets sharing a `(size−2)`-prefix.
    fn candidates(previous_level: &[Vec<String>], size: usize) -> Vec<Vec<String>> {
        let mut candidates: BTreeSet<Vec<String>> = BTreeSet::new();
        for i in 0..previous_level.len() {
            for j in (i + 1)..previous_level.len() {
                let a = &previous_level[i];
                let b = &previous_level[j];
                if a[..size - 2] == b[..size - 2] {
                    let mut merged: Vec<String> = a.clone();
                    merged.push(b[size - 2].clone());
                    merged.sort();
                    merged.dedup();
                    if merged.len() == size {
                        candidates.insert(merged);
                    }
                }
            }
        }
        candidates.into_iter().collect()
    }

    /// Derives the association rules meeting the confidence threshold from
    /// the frequent itemsets (pure in-memory post-processing).
    fn rules_from_itemsets(&self, itemsets: &[FrequentItemset]) -> Vec<AssociationRule> {
        let support_of: BTreeMap<&[String], f64> = itemsets
            .iter()
            .map(|f| (f.items.as_slice(), f.support))
            .collect();
        let mut rules = Vec::new();
        for itemset in itemsets.iter().filter(|f| f.items.len() >= 2) {
            // All non-empty proper subsets as antecedents.
            let k = itemset.items.len();
            for mask in 1..(1u32 << k) - 1 {
                let mut antecedent = Vec::new();
                let mut consequent = Vec::new();
                for (bit, item) in itemset.items.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        antecedent.push(item.clone());
                    } else {
                        consequent.push(item.clone());
                    }
                }
                let Some(&antecedent_support) = support_of.get(antecedent.as_slice()) else {
                    continue;
                };
                let confidence = itemset.support / antecedent_support;
                if confidence < self.min_confidence {
                    continue;
                }
                let lift = match support_of.get(consequent.as_slice()) {
                    Some(&cs) if cs > 0.0 => confidence / cs,
                    _ => f64::NAN,
                };
                rules.push(AssociationRule {
                    antecedent,
                    consequent,
                    support: itemset.support,
                    confidence,
                    lift,
                });
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rules
    }
}

impl Estimator for Apriori {
    type Model = AprioriModel;

    /// Mines the model with one aggregate pass over the dataset per itemset
    /// level: level 1 tallies per-item transaction counts (and the
    /// transaction total), each further level counts the support of the
    /// generated candidates.  Every pass honours the dataset's filter and
    /// executor.
    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<AprioriModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        let (item_counts, n) = dataset
            .aggregate(&ItemCountsAggregate {
                items_column: &self.items_column,
            })
            .map_err(MethodError::from)?;
        if n == 0 {
            return Err(MethodError::invalid_input("no transactions in input"));
        }
        let min_count = (self.min_support * n as f64).ceil() as u64;

        let mut frequent: Vec<FrequentItemset> = Vec::new();
        let mut current_level: Vec<Vec<String>> = Vec::new();
        for (item, count) in item_counts {
            if count >= min_count {
                current_level.push(vec![item.clone()]);
                frequent.push(FrequentItemset {
                    items: vec![item],
                    support: count as f64 / n as f64,
                    count,
                });
            }
        }

        let mut size = 1;
        while !current_level.is_empty() && size < self.max_itemset_size {
            size += 1;
            let candidates = Self::candidates(&current_level, size);
            if candidates.is_empty() {
                break;
            }
            // Support-counting pass for this level.
            let counts = dataset
                .aggregate(&CandidateSupportAggregate {
                    items_column: &self.items_column,
                    candidates: &candidates,
                })
                .map_err(MethodError::from)?;
            current_level = Vec::new();
            for (items, count) in candidates.into_iter().zip(counts) {
                if count >= min_count {
                    frequent.push(FrequentItemset {
                        items: items.clone(),
                        support: count as f64 / n as f64,
                        count,
                    });
                    current_level.push(items);
                }
            }
        }

        let rules = self.rules_from_itemsets(&frequent);
        Ok(AprioriModel {
            itemsets: frequent,
            rules,
            num_transactions: n,
        })
    }
}

/// Reads one transaction's distinct items out of a chunk's flattened
/// `text[]` buffer (duplicates within a basket count once, matching the
/// per-row `BTreeSet` semantics).
fn distinct_items<'a>(scratch: &mut BTreeSet<&'a str>, basket: &'a [String]) {
    scratch.clear();
    for item in basket {
        scratch.insert(item.as_str());
    }
}

/// Level-1 UDA: per-item transaction counts plus the transaction total.
struct ItemCountsAggregate<'a> {
    items_column: &'a str,
}

impl Aggregate for ItemCountsAggregate<'_> {
    type State = (BTreeMap<String, u64>, u64);
    type Output = (BTreeMap<String, u64>, u64);

    fn initial_state(&self) -> Self::State {
        (BTreeMap::new(), 0)
    }

    fn transition(
        &self,
        state: &mut Self::State,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let basket = row.get_named(schema, self.items_column)?.as_text_array()?;
        let mut scratch = BTreeSet::new();
        distinct_items(&mut scratch, basket);
        for item in &scratch {
            *state.0.entry((*item).to_owned()).or_insert(0) += 1;
        }
        state.1 += 1;
        Ok(())
    }

    /// Chunk kernel: walks the flattened `text[]` buffer span by span with no
    /// `Row`/`Value` materialization.  NULL-bearing chunks fall back to the
    /// per-row path, which reports the same type error a row scan would.
    fn transition_chunk(
        &self,
        state: &mut Self::State,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let idx = schema.index_of(self.items_column)?;
        if let ColumnChunk::TextArray {
            values,
            offsets,
            nulls,
        } = chunk.column(idx)
        {
            if !nulls.any_null() {
                let mut scratch = BTreeSet::new();
                for i in 0..chunk.len() {
                    distinct_items(&mut scratch, &values[offsets[i]..offsets[i + 1]]);
                    for item in &scratch {
                        *state.0.entry((*item).to_owned()).or_insert(0) += 1;
                    }
                    state.1 += 1;
                }
                return Ok(());
            }
        }
        transition_chunk_by_rows(self, state, chunk, schema)
    }

    fn merge(&self, mut left: Self::State, right: Self::State) -> Self::State {
        for (item, count) in right.0 {
            *left.0.entry(item).or_insert(0) += count;
        }
        left.1 += right.1;
        left
    }

    fn finalize(&self, state: Self::State) -> madlib_engine::Result<Self::Output> {
        Ok(state)
    }
}

/// Level-k UDA: counts, for each candidate itemset, the transactions
/// containing all of its items.  The state is one counter per candidate,
/// merged by addition.
struct CandidateSupportAggregate<'a> {
    items_column: &'a str,
    candidates: &'a [Vec<String>],
}

impl CandidateSupportAggregate<'_> {
    fn count_basket(&self, counts: &mut [u64], basket: &BTreeSet<&str>) {
        for (slot, candidate) in self.candidates.iter().enumerate() {
            if candidate.iter().all(|item| basket.contains(item.as_str())) {
                counts[slot] += 1;
            }
        }
    }
}

impl Aggregate for CandidateSupportAggregate<'_> {
    type State = Vec<u64>;
    type Output = Vec<u64>;

    fn initial_state(&self) -> Vec<u64> {
        vec![0; self.candidates.len()]
    }

    fn transition(
        &self,
        state: &mut Vec<u64>,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let basket = row.get_named(schema, self.items_column)?.as_text_array()?;
        let mut scratch = BTreeSet::new();
        distinct_items(&mut scratch, basket);
        self.count_basket(state, &scratch);
        Ok(())
    }

    /// Chunk kernel over the flattened `text[]` buffer; NULL-bearing chunks
    /// fall back to the per-row path.
    fn transition_chunk(
        &self,
        state: &mut Vec<u64>,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let idx = schema.index_of(self.items_column)?;
        if let ColumnChunk::TextArray {
            values,
            offsets,
            nulls,
        } = chunk.column(idx)
        {
            if !nulls.any_null() {
                let mut scratch = BTreeSet::new();
                for i in 0..chunk.len() {
                    distinct_items(&mut scratch, &values[offsets[i]..offsets[i + 1]]);
                    self.count_basket(state, &scratch);
                }
                return Ok(());
            }
        }
        transition_chunk_by_rows(self, state, chunk, schema)
    }

    fn merge(&self, mut left: Vec<u64>, right: Vec<u64>) -> Vec<u64> {
        for (l, r) in left.iter_mut().zip(right) {
            *l += r;
        }
        left
    }

    fn finalize(&self, state: Vec<u64>) -> madlib_engine::Result<Vec<u64>> {
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::market_basket_data;
    use madlib_engine::{row, Column, ColumnType, Schema, Table};

    fn fit(estimator: &Apriori, table: &Table) -> Result<AprioriModel> {
        estimator.fit(
            &Dataset::from_table(table),
            &Session::in_memory(table.num_segments()).unwrap(),
        )
    }

    fn tiny_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("transaction_id", ColumnType::Int),
            Column::new("items", ColumnType::TextArray),
        ]);
        let mut t = Table::new(schema, 2).unwrap();
        let baskets: Vec<Vec<&str>> = vec![
            vec!["bread", "milk"],
            vec!["bread", "diapers", "beer", "eggs"],
            vec!["milk", "diapers", "beer", "cola"],
            vec!["bread", "milk", "diapers", "beer"],
            vec!["bread", "milk", "diapers", "cola"],
        ];
        for (i, basket) in baskets.iter().enumerate() {
            t.insert(row![
                i as i64,
                madlib_engine::Value::TextArray(basket.iter().map(|s| s.to_string()).collect())
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn finds_textbook_frequent_itemsets() {
        // The classic diapers/beer example: support({diapers, beer}) = 3/5.
        let t = tiny_table();
        let apriori = Apriori::new("items", 0.6, 0.7).unwrap();
        let model = fit(&apriori, &t).unwrap();
        assert_eq!(model.num_transactions, 5);
        assert!(model.itemset(&["bread"]).is_some());
        assert!(model.itemset(&["milk"]).is_some());
        assert!(model.itemset(&["diapers"]).is_some());
        let db = model
            .itemset(&["beer", "diapers"])
            .expect("beer+diapers should be frequent");
        assert!((db.support - 0.6).abs() < 1e-12);
        assert_eq!(db.count, 3);
        // {beer, eggs} has support 1/5 < 0.6: must be absent.
        assert!(model.itemset(&["beer", "eggs"]).is_none());
    }

    #[test]
    fn rule_confidence_and_lift() {
        let t = tiny_table();
        let apriori = Apriori::new("items", 0.4, 0.7).unwrap();
        let rules = fit(&apriori, &t).unwrap().rules;
        // beer ⇒ diapers has confidence 3/3 = 1.0 and lift 1/(4/5) = 1.25.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == ["beer"] && r.consequent == ["diapers"])
            .expect("beer ⇒ diapers rule expected");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert!((rule.lift - 1.25).abs() < 1e-12);
        assert!((rule.support - 0.6).abs() < 1e-12);
        // Rules are sorted by confidence descending.
        for pair in rules.windows(2) {
            assert!(pair[0].confidence >= pair[1].confidence);
        }
    }

    #[test]
    fn finds_planted_pattern_in_synthetic_baskets() {
        let t = market_basket_data(400, 30, 4, 13).unwrap();
        let apriori = Apriori::new("items", 0.2, 0.6).unwrap();
        let rules = fit(&apriori, &t).unwrap().rules;
        // The generator plants item_0 + item_1 co-occurrence in ~40% of
        // baskets; a rule between them must be found with high confidence.
        assert!(
            rules.iter().any(|r| {
                (r.antecedent == ["item_0"] && r.consequent == ["item_1"])
                    || (r.antecedent == ["item_1"] && r.consequent == ["item_0"])
            }),
            "planted rule not found; rules: {rules:?}"
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(Apriori::new("items", 0.0, 0.5).is_err());
        assert!(Apriori::new("items", 1.5, 0.5).is_err());
        assert!(Apriori::new("items", 0.5, 1.5).is_err());
        assert!(Apriori::new("items", 0.5, 0.5).is_ok());

        let schema = Schema::new(vec![
            Column::new("transaction_id", ColumnType::Int),
            Column::new("items", ColumnType::TextArray),
        ]);
        let empty = Table::new(schema, 2).unwrap();
        assert!(fit(&Apriori::new("items", 0.5, 0.5).unwrap(), &empty).is_err());
    }

    #[test]
    fn filters_apply_to_the_mining_passes() {
        use madlib_engine::expr::Predicate;

        // Restricting to the last four transactions changes the counts: only
        // transactions 1..=4 are mined, so n = 4 and bread appears 3 times.
        let t = tiny_table();
        let apriori = Apriori::new("items", 0.5, 0.5).unwrap();
        let session = Session::in_memory(2).unwrap();
        let model = apriori
            .fit(
                &Dataset::from_table(&t).filter(Predicate::column_gt("transaction_id", 0.5)),
                &session,
            )
            .unwrap();
        assert_eq!(model.num_transactions, 4);
        assert_eq!(model.itemset(&["bread"]).unwrap().count, 3);
        assert_eq!(model.itemset(&["beer", "diapers"]).unwrap().count, 3);
    }

    #[test]
    fn max_itemset_size_limits_search() {
        let t = tiny_table();
        let apriori = Apriori::new("items", 0.2, 0.5)
            .unwrap()
            .with_max_itemset_size(1);
        let model = fit(&apriori, &t).unwrap();
        assert!(model.itemsets.iter().all(|f| f.items.len() == 1));
    }
}
