//! Association-rule mining with the Apriori algorithm.
//!
//! Table 1 lists "Association Rules" among the unsupervised methods.  The
//! implementation is the classical Apriori level-wise search: frequent
//! itemsets are grown one item at a time, candidate k-itemsets are generated
//! by joining frequent (k−1)-itemsets, and support counting is one parallel
//! pass over the transactions table per level (a UDA in engine terms: the
//! per-segment counts merge by addition).

use crate::error::{MethodError, Result};
use madlib_engine::{Executor, Table};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A frequent itemset with its support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// Items, sorted lexicographically.
    pub items: Vec<String>,
    /// Fraction of transactions containing all the items.
    pub support: f64,
    /// Absolute number of transactions containing all the items.
    pub count: u64,
}

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Left-hand side items.
    pub antecedent: Vec<String>,
    /// Right-hand side items.
    pub consequent: Vec<String>,
    /// Support of the full itemset.
    pub support: f64,
    /// Confidence `support(A ∪ C) / support(A)`.
    pub confidence: f64,
    /// Lift `confidence / support(C)`.
    pub lift: f64,
}

/// Apriori frequent-itemset and rule miner.
#[derive(Debug, Clone)]
pub struct Apriori {
    items_column: String,
    min_support: f64,
    min_confidence: f64,
    max_itemset_size: usize,
}

impl Apriori {
    /// Creates a miner with the given minimum support and confidence.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] when thresholds are outside
    /// `(0, 1]`.
    pub fn new(
        items_column: impl Into<String>,
        min_support: f64,
        min_confidence: f64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&min_support) || min_support == 0.0 {
            return Err(MethodError::invalid_parameter(
                "min_support",
                "must be in (0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&min_confidence) {
            return Err(MethodError::invalid_parameter(
                "min_confidence",
                "must be in [0, 1]",
            ));
        }
        Ok(Self {
            items_column: items_column.into(),
            min_support,
            min_confidence,
            max_itemset_size: 4,
        })
    }

    /// Caps the size of mined itemsets (default 4).
    pub fn with_max_itemset_size(mut self, max_itemset_size: usize) -> Self {
        self.max_itemset_size = max_itemset_size.max(1);
        self
    }

    /// Mines frequent itemsets from the transactions table.
    ///
    /// # Errors
    /// Propagates engine errors; requires a non-empty table.
    pub fn frequent_itemsets(
        &self,
        executor: &Executor,
        table: &Table,
    ) -> Result<Vec<FrequentItemset>> {
        executor
            .validate_input(table, true)
            .map_err(MethodError::from)?;
        let items_col = self.items_column.clone();
        let transactions: Vec<BTreeSet<String>> = executor
            .parallel_map(table, move |row, schema| {
                Ok(row
                    .get_named(schema, &items_col)?
                    .as_text_array()?
                    .iter()
                    .cloned()
                    .collect())
            })
            .map_err(MethodError::from)?;
        let n = transactions.len() as f64;
        let min_count = (self.min_support * n).ceil() as u64;

        // Level 1: frequent single items.
        let mut item_counts: BTreeMap<Vec<String>, u64> = BTreeMap::new();
        for t in &transactions {
            for item in t {
                *item_counts.entry(vec![item.clone()]).or_insert(0) += 1;
            }
        }
        let mut frequent: Vec<FrequentItemset> = Vec::new();
        let mut current_level: Vec<Vec<String>> = Vec::new();
        for (items, count) in item_counts {
            if count >= min_count {
                current_level.push(items.clone());
                frequent.push(FrequentItemset {
                    items,
                    support: count as f64 / n,
                    count,
                });
            }
        }

        let mut size = 1;
        while !current_level.is_empty() && size < self.max_itemset_size {
            size += 1;
            // Candidate generation: join itemsets sharing a (k−2)-prefix.
            let mut candidates: BTreeSet<Vec<String>> = BTreeSet::new();
            for i in 0..current_level.len() {
                for j in (i + 1)..current_level.len() {
                    let a = &current_level[i];
                    let b = &current_level[j];
                    if a[..size - 2] == b[..size - 2] {
                        let mut merged: Vec<String> = a.clone();
                        merged.push(b[size - 2].clone());
                        merged.sort();
                        merged.dedup();
                        if merged.len() == size {
                            candidates.insert(merged);
                        }
                    }
                }
            }
            // Support counting pass.
            let mut counts: BTreeMap<Vec<String>, u64> = BTreeMap::new();
            for t in &transactions {
                for candidate in &candidates {
                    if candidate.iter().all(|item| t.contains(item)) {
                        *counts.entry(candidate.clone()).or_insert(0) += 1;
                    }
                }
            }
            current_level = Vec::new();
            for (items, count) in counts {
                if count >= min_count {
                    current_level.push(items.clone());
                    frequent.push(FrequentItemset {
                        items,
                        support: count as f64 / n,
                        count,
                    });
                }
            }
        }
        Ok(frequent)
    }

    /// Mines association rules meeting the confidence threshold from the
    /// frequent itemsets.
    ///
    /// # Errors
    /// Propagates the itemset-mining errors.
    pub fn mine_rules(&self, executor: &Executor, table: &Table) -> Result<Vec<AssociationRule>> {
        let itemsets = self.frequent_itemsets(executor, table)?;
        let support_of: BTreeMap<Vec<String>, f64> = itemsets
            .iter()
            .map(|f| (f.items.clone(), f.support))
            .collect();
        let mut rules = Vec::new();
        for itemset in itemsets.iter().filter(|f| f.items.len() >= 2) {
            // All non-empty proper subsets as antecedents.
            let k = itemset.items.len();
            for mask in 1..(1u32 << k) - 1 {
                let mut antecedent = Vec::new();
                let mut consequent = Vec::new();
                for (bit, item) in itemset.items.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        antecedent.push(item.clone());
                    } else {
                        consequent.push(item.clone());
                    }
                }
                let Some(&antecedent_support) = support_of.get(&antecedent) else {
                    continue;
                };
                let confidence = itemset.support / antecedent_support;
                if confidence < self.min_confidence {
                    continue;
                }
                let lift = match support_of.get(&consequent) {
                    Some(&cs) if cs > 0.0 => confidence / cs,
                    _ => f64::NAN,
                };
                rules.push(AssociationRule {
                    antecedent,
                    consequent,
                    support: itemset.support,
                    confidence,
                    lift,
                });
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::market_basket_data;
    use madlib_engine::{row, Column, ColumnType, Schema};

    fn tiny_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("transaction_id", ColumnType::Int),
            Column::new("items", ColumnType::TextArray),
        ]);
        let mut t = Table::new(schema, 2).unwrap();
        let baskets: Vec<Vec<&str>> = vec![
            vec!["bread", "milk"],
            vec!["bread", "diapers", "beer", "eggs"],
            vec!["milk", "diapers", "beer", "cola"],
            vec!["bread", "milk", "diapers", "beer"],
            vec!["bread", "milk", "diapers", "cola"],
        ];
        for (i, basket) in baskets.iter().enumerate() {
            t.insert(row![
                i as i64,
                madlib_engine::Value::TextArray(basket.iter().map(|s| s.to_string()).collect())
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn finds_textbook_frequent_itemsets() {
        // The classic diapers/beer example: support({diapers, beer}) = 3/5.
        let t = tiny_table();
        let apriori = Apriori::new("items", 0.6, 0.7).unwrap();
        let itemsets = apriori.frequent_itemsets(&Executor::new(), &t).unwrap();
        let find = |items: &[&str]| {
            itemsets
                .iter()
                .find(|f| f.items == items.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert!(find(&["bread"]).is_some());
        assert!(find(&["milk"]).is_some());
        assert!(find(&["diapers"]).is_some());
        let db = find(&["beer", "diapers"]).expect("beer+diapers should be frequent");
        assert!((db.support - 0.6).abs() < 1e-12);
        assert_eq!(db.count, 3);
        // {beer, eggs} has support 1/5 < 0.6: must be absent.
        assert!(find(&["beer", "eggs"]).is_none());
    }

    #[test]
    fn rule_confidence_and_lift() {
        let t = tiny_table();
        let apriori = Apriori::new("items", 0.4, 0.7).unwrap();
        let rules = apriori.mine_rules(&Executor::new(), &t).unwrap();
        // beer ⇒ diapers has confidence 3/3 = 1.0 and lift 1/(4/5) = 1.25.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == ["beer"] && r.consequent == ["diapers"])
            .expect("beer ⇒ diapers rule expected");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert!((rule.lift - 1.25).abs() < 1e-12);
        assert!((rule.support - 0.6).abs() < 1e-12);
        // Rules are sorted by confidence descending.
        for pair in rules.windows(2) {
            assert!(pair[0].confidence >= pair[1].confidence);
        }
    }

    #[test]
    fn finds_planted_pattern_in_synthetic_baskets() {
        let t = market_basket_data(400, 30, 4, 13).unwrap();
        let apriori = Apriori::new("items", 0.2, 0.6).unwrap();
        let rules = apriori.mine_rules(&Executor::new(), &t).unwrap();
        // The generator plants item_0 + item_1 co-occurrence in ~40% of
        // baskets; a rule between them must be found with high confidence.
        assert!(
            rules.iter().any(|r| {
                (r.antecedent == ["item_0"] && r.consequent == ["item_1"])
                    || (r.antecedent == ["item_1"] && r.consequent == ["item_0"])
            }),
            "planted rule not found; rules: {rules:?}"
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(Apriori::new("items", 0.0, 0.5).is_err());
        assert!(Apriori::new("items", 1.5, 0.5).is_err());
        assert!(Apriori::new("items", 0.5, 1.5).is_err());
        assert!(Apriori::new("items", 0.5, 0.5).is_ok());

        let schema = Schema::new(vec![
            Column::new("transaction_id", ColumnType::Int),
            Column::new("items", ColumnType::TextArray),
        ]);
        let empty = Table::new(schema, 2).unwrap();
        assert!(Apriori::new("items", 0.5, 0.5)
            .unwrap()
            .frequent_itemsets(&Executor::new(), &empty)
            .is_err());
    }

    #[test]
    fn max_itemset_size_limits_search() {
        let t = tiny_table();
        let apriori = Apriori::new("items", 0.2, 0.5)
            .unwrap()
            .with_max_itemset_size(1);
        let itemsets = apriori.frequent_itemsets(&Executor::new(), &t).unwrap();
        assert!(itemsets.iter().all(|f| f.items.len() == 1));
    }
}
