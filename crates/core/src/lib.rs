//! # madlib-core
//!
//! The MADlib-rs method library: the statistical methods listed in Table 1 of
//! the paper, implemented in the macro/micro-programming style of Section 3 —
//! every data-bound computation is a user-defined aggregate or a driver-
//! function iteration over the [`madlib_engine`] substrate, and the in-core
//! arithmetic goes through [`madlib_linalg`].
//!
//! | Paper Table 1 entry            | Module |
//! |--------------------------------|--------|
//! | Linear Regression              | [`regress::linear`] |
//! | Logistic Regression            | [`regress::logistic`] |
//! | Naive Bayes Classification     | [`classify::naive_bayes`] |
//! | Decision Trees (C4.5)          | [`classify::decision_tree`] |
//! | Support Vector Machines        | [`classify::svm`] |
//! | k-Means Clustering             | [`cluster::kmeans`] |
//! | SVD Matrix Factorization       | [`factor::lowrank`] |
//! | Latent Dirichlet Allocation    | [`topic::lda`] |
//! | Association Rules              | [`assoc::apriori`] |
//! | Conjugate Gradient             | [`optim::conjugate_gradient`] |
//! | Quantiles / Sketches / Profile | the `madlib-sketch` crate |
//! | Sparse Vectors / Array Ops     | the `madlib-linalg` crate |
//!
//! **Every** method trains through the uniform convention in [`train`]:
//! `Session::train(&estimator, &dataset)` (one model) or
//! `Session::train_grouped` (one model per `group_by` key — the paper's
//! `grouping_cols`).  The [`train::Estimator`] impls in this crate are
//! [`regress::LinearRegression`], [`regress::LogisticRegression`],
//! [`classify::NaiveBayes`], [`classify::DecisionTree`],
//! [`classify::LinearSvm`], [`cluster::KMeans`],
//! [`factor::LowRankFactorization`], [`topic::Lda`] and [`assoc::Apriori`];
//! the convex-framework objectives train via `madlib_convex::IgdEstimator`,
//! the CRF via `madlib_text::CrfEstimator`, and the profiler via
//! `madlib_sketch::Profiler`.  In addition, [`datasets`] provides the
//! synthetic workload generators used by the examples, tests and the
//! benchmark harness, and [`validate`] provides evaluation metrics and
//! cross-validation.
//!
//! Serving mirrors training: every fitted model implements the typed
//! [`score::Predictor`] contract, [`score::FeatureScorer`] adapts it to the
//! engine's `Scorer` scan pass, and `Session::register_model` /
//! `Session::score` store and serve models by name through the database
//! model catalog (grouped registries route rows to their group's model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod classify;
pub mod cluster;
pub mod datasets;
pub mod error;
pub mod factor;
pub mod optim;
pub mod regress;
pub mod score;
pub mod topic;
pub mod train;
pub mod validate;

pub use error::{MethodError, Result};
pub use score::{FeatureScorer, Predictor};
pub use train::{Estimator, GroupedModels, IncrementalEstimator, Session};
