//! Synthetic dataset generators.
//!
//! The paper's evaluation (Section 4.4) runs linear regression over dense
//! synthetic data with a configurable number of rows and independent
//! variables; the university-contribution sections train SGD models and CRFs
//! on labeled data.  We do not have the authors' generator or cluster, so
//! this module provides deterministic, seeded generators that produce
//! workloads with the same *statistical structure*: known ground-truth
//! parameters plus controlled noise, so tests can verify recovery and the
//! benchmark harness can sweep sizes.

use crate::error::{MethodError, Result};
use madlib_engine::{Column, ColumnType, Row, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard schema for regression/classification tables: `(y double
/// precision, x double precision[])`, exactly the layout assumed by the
/// paper's Listing 1 transition function.
pub fn labeled_point_schema() -> Schema {
    Schema::new(vec![
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ])
}

/// Draws from a standard normal via the Box–Muller transform (keeps the
/// dependency surface to `rand`'s uniform sampler only).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generated regression data together with its ground truth.
#[derive(Debug, Clone)]
pub struct RegressionData {
    /// Table with columns `(y, x)`.
    pub table: Table,
    /// True coefficient vector used by the generator (first entry is the
    /// intercept when `intercept` was requested).
    pub true_coefficients: Vec<f64>,
    /// Noise standard deviation.
    pub noise_std: f64,
}

/// Generates a dense linear-regression workload: `y = ⟨b, x⟩ + ε`.
///
/// * `rows` — number of observations.
/// * `num_variables` — number of independent variables (the "# independent
///   variables" axis of Figure 4/5).
/// * `noise_std` — standard deviation of the Gaussian noise ε.
/// * `segments` — how many table partitions to spread the rows over.
/// * `seed` — RNG seed (generation is fully deterministic).
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] for zero rows/variables/segments.
pub fn linear_regression_data(
    rows: usize,
    num_variables: usize,
    noise_std: f64,
    segments: usize,
    seed: u64,
) -> Result<RegressionData> {
    if rows == 0 {
        return Err(MethodError::invalid_parameter("rows", "must be positive"));
    }
    if num_variables == 0 {
        return Err(MethodError::invalid_parameter(
            "num_variables",
            "must be positive",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let true_coefficients: Vec<f64> = (0..num_variables)
        .map(|_| rng.gen_range(-2.0..2.0))
        .collect();
    let mut table = Table::new(labeled_point_schema(), segments).map_err(MethodError::from)?;
    for _ in 0..rows {
        let x: Vec<f64> = (0..num_variables)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut y: f64 = x.iter().zip(&true_coefficients).map(|(a, b)| a * b).sum();
        y += noise_std * standard_normal(&mut rng);
        table
            .insert(Row::new(vec![Value::Double(y), Value::DoubleArray(x)]))
            .map_err(MethodError::from)?;
    }
    Ok(RegressionData {
        table,
        true_coefficients,
        noise_std,
    })
}

/// Generated binary-classification data with ground truth.
#[derive(Debug, Clone)]
pub struct ClassificationData {
    /// Table with columns `(y, x)` where `y ∈ {0, 1}`.
    pub table: Table,
    /// True coefficient vector of the generating logistic model.
    pub true_coefficients: Vec<f64>,
}

/// Generates logistic-regression data: `P(y=1|x) = σ(⟨b, x⟩)`.
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] for zero rows/variables.
pub fn logistic_regression_data(
    rows: usize,
    num_variables: usize,
    segments: usize,
    seed: u64,
) -> Result<ClassificationData> {
    if rows == 0 || num_variables == 0 {
        return Err(MethodError::invalid_parameter(
            "rows/num_variables",
            "must be positive",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let true_coefficients: Vec<f64> = (0..num_variables)
        .map(|_| rng.gen_range(-3.0..3.0))
        .collect();
    let mut table = Table::new(labeled_point_schema(), segments).map_err(MethodError::from)?;
    for _ in 0..rows {
        let x: Vec<f64> = (0..num_variables)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let z: f64 = x.iter().zip(&true_coefficients).map(|(a, b)| a * b).sum();
        let p = 1.0 / (1.0 + (-z).exp());
        let y = if rng.gen::<f64>() < p { 1.0 } else { 0.0 };
        table
            .insert(Row::new(vec![Value::Double(y), Value::DoubleArray(x)]))
            .map_err(MethodError::from)?;
    }
    Ok(ClassificationData {
        table,
        true_coefficients,
    })
}

/// Generated clustering data with ground truth.
#[derive(Debug, Clone)]
pub struct ClusterData {
    /// Table with columns `(id bigint, coords double precision[])` — the
    /// `points` table layout of the paper's Section 4.3.
    pub table: Table,
    /// Centers used by the generator.
    pub true_centers: Vec<Vec<f64>>,
    /// Ground-truth cluster assignment per row, in insertion order.
    pub assignments: Vec<usize>,
}

/// Schema of the k-means `points` table.
pub fn points_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", ColumnType::Int),
        Column::new("coords", ColumnType::DoubleArray),
    ])
}

/// Generates a Gaussian-mixture clustering workload with `k` well-separated
/// centers in `dims` dimensions.
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] for zero rows/clusters/dims.
pub fn gaussian_blobs(
    rows: usize,
    k: usize,
    dims: usize,
    spread: f64,
    segments: usize,
    seed: u64,
) -> Result<ClusterData> {
    if rows == 0 || k == 0 || dims == 0 {
        return Err(MethodError::invalid_parameter(
            "rows/k/dims",
            "must be positive",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Well-separated centers on a scaled integer lattice.
    let true_centers: Vec<Vec<f64>> = (0..k)
        .map(|c| {
            (0..dims)
                .map(|d| ((c * dims + d) % 7) as f64 * 10.0 + c as f64 * 25.0)
                .collect()
        })
        .collect();
    let mut table = Table::new(points_schema(), segments).map_err(MethodError::from)?;
    let mut assignments = Vec::with_capacity(rows);
    for i in 0..rows {
        let cluster = rng.gen_range(0..k);
        assignments.push(cluster);
        let coords: Vec<f64> = true_centers[cluster]
            .iter()
            .map(|c| c + spread * standard_normal(&mut rng))
            .collect();
        table
            .insert(Row::new(vec![
                Value::Int(i as i64),
                Value::DoubleArray(coords),
            ]))
            .map_err(MethodError::from)?;
    }
    Ok(ClusterData {
        table,
        true_centers,
        assignments,
    })
}

/// Generates market-basket transactions for the association-rules module:
/// a table `(transaction_id bigint, store text, items text[])`.  A handful
/// of "pattern" item pairs co-occur frequently so that Apriori has real
/// rules to find; the `store` column tags each transaction with one of two
/// stores so the table doubles as a `grouping_cols` workload (per-store
/// basket models).
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] for zero transactions or items.
pub fn market_basket_data(
    transactions: usize,
    catalog_size: usize,
    segments: usize,
    seed: u64,
) -> Result<Table> {
    if transactions == 0 || catalog_size < 4 {
        return Err(MethodError::invalid_parameter(
            "transactions/catalog_size",
            "need at least 1 transaction and 4 catalog items",
        ));
    }
    let schema = Schema::new(vec![
        Column::new("transaction_id", ColumnType::Int),
        Column::new("store", ColumnType::Text),
        Column::new("items", ColumnType::TextArray),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(schema, segments).map_err(MethodError::from)?;
    for tid in 0..transactions {
        let store = if rng.gen::<f64>() < 0.5 {
            "north"
        } else {
            "south"
        };
        let mut items: Vec<String> = Vec::new();
        // Pattern: item_0 + item_1 co-occur in ~40% of baskets; item_2 joins
        // them half the time, giving a strong 2- and 3-item rule.
        if rng.gen::<f64>() < 0.4 {
            items.push("item_0".to_owned());
            items.push("item_1".to_owned());
            if rng.gen::<f64>() < 0.5 {
                items.push("item_2".to_owned());
            }
        }
        let extras = rng.gen_range(1..4);
        for _ in 0..extras {
            let idx = rng.gen_range(3..catalog_size);
            let name = format!("item_{idx}");
            if !items.contains(&name) {
                items.push(name);
            }
        }
        table
            .insert(Row::new(vec![
                Value::Int(tid as i64),
                Value::Text(store.to_owned()),
                Value::TextArray(items),
            ]))
            .map_err(MethodError::from)?;
    }
    Ok(table)
}

/// Generates a ratings table `(user_id, item_id, rating)` from a low-rank
/// ground-truth model, for the matrix-factorization module (the
/// "Recommendation" row of the paper's Table 2).
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] for empty dimensions.
pub fn ratings_data(
    users: usize,
    items: usize,
    rank: usize,
    observed_fraction: f64,
    segments: usize,
    seed: u64,
) -> Result<Table> {
    if users == 0 || items == 0 || rank == 0 {
        return Err(MethodError::invalid_parameter(
            "users/items/rank",
            "must be positive",
        ));
    }
    let schema = Schema::new(vec![
        Column::new("user_id", ColumnType::Int),
        Column::new("item_id", ColumnType::Int),
        Column::new("rating", ColumnType::Double),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let user_factors: Vec<Vec<f64>> = (0..users)
        .map(|_| (0..rank).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let item_factors: Vec<Vec<f64>> = (0..items)
        .map(|_| (0..rank).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut table = Table::new(schema, segments).map_err(MethodError::from)?;
    for (u, uf) in user_factors.iter().enumerate() {
        for (i, itf) in item_factors.iter().enumerate() {
            if rng.gen::<f64>() > observed_fraction {
                continue;
            }
            let rating: f64 = uf.iter().zip(itf).map(|(a, b)| a * b).sum::<f64>()
                + 0.05 * standard_normal(&mut rng);
            table
                .insert(Row::new(vec![
                    Value::Int(u as i64),
                    Value::Int(i as i64),
                    Value::Double(rating),
                ]))
                .map_err(MethodError::from)?;
        }
    }
    Ok(table)
}

/// Generates a corpus of synthetic documents for the LDA module: a table
/// `(doc_id bigint, tokens text[])` drawn from `k` topics with distinct
/// vocabularies.
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] for empty dimensions.
pub fn document_corpus(
    documents: usize,
    topics: usize,
    words_per_topic: usize,
    doc_length: usize,
    segments: usize,
    seed: u64,
) -> Result<Table> {
    if documents == 0 || topics == 0 || words_per_topic == 0 || doc_length == 0 {
        return Err(MethodError::invalid_parameter(
            "documents/topics/words_per_topic/doc_length",
            "must be positive",
        ));
    }
    let schema = Schema::new(vec![
        Column::new("doc_id", ColumnType::Int),
        Column::new("tokens", ColumnType::TextArray),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(schema, segments).map_err(MethodError::from)?;
    for d in 0..documents {
        let dominant = d % topics;
        let mut tokens = Vec::with_capacity(doc_length);
        for _ in 0..doc_length {
            // 80% of tokens come from the dominant topic's vocabulary.
            let topic = if rng.gen::<f64>() < 0.8 {
                dominant
            } else {
                rng.gen_range(0..topics)
            };
            let word = rng.gen_range(0..words_per_topic);
            tokens.push(format!("t{topic}_w{word}"));
        }
        table
            .insert(Row::new(vec![
                Value::Int(d as i64),
                Value::TextArray(tokens),
            ]))
            .map_err(MethodError::from)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_data_shape_and_determinism() {
        let a = linear_regression_data(100, 5, 0.1, 4, 42).unwrap();
        let b = linear_regression_data(100, 5, 0.1, 4, 42).unwrap();
        assert_eq!(a.table.row_count(), 100);
        assert_eq!(a.true_coefficients.len(), 5);
        assert_eq!(a.true_coefficients, b.true_coefficients);
        assert_eq!(a.table.collect_rows(), b.table.collect_rows());
        let c = linear_regression_data(100, 5, 0.1, 4, 43).unwrap();
        assert_ne!(a.true_coefficients, c.true_coefficients);
        assert!(linear_regression_data(0, 5, 0.1, 1, 0).is_err());
        assert!(linear_regression_data(5, 0, 0.1, 1, 0).is_err());
    }

    #[test]
    fn logistic_data_labels_are_binary() {
        let d = logistic_regression_data(200, 3, 2, 7).unwrap();
        assert_eq!(d.table.row_count(), 200);
        for row in d.table.iter() {
            let y = row.get(0).as_double().unwrap();
            assert!(y == 0.0 || y == 1.0);
        }
        assert!(logistic_regression_data(0, 1, 1, 0).is_err());
    }

    #[test]
    fn blobs_have_k_clusters() {
        let d = gaussian_blobs(90, 3, 2, 0.5, 3, 11).unwrap();
        assert_eq!(d.table.row_count(), 90);
        assert_eq!(d.true_centers.len(), 3);
        assert_eq!(d.assignments.len(), 90);
        assert!(d.assignments.iter().all(|&a| a < 3));
        assert!(gaussian_blobs(0, 3, 2, 0.5, 1, 0).is_err());
    }

    #[test]
    fn market_basket_contains_pattern_items() {
        let t = market_basket_data(500, 20, 4, 3).unwrap();
        assert_eq!(t.row_count(), 500);
        let with_pattern = t
            .iter()
            .filter(|r| {
                r.get(2)
                    .as_text_array()
                    .unwrap()
                    .contains(&"item_0".to_owned())
            })
            .count();
        // ~40% of 500 = 200; allow generous slack.
        assert!(with_pattern > 120 && with_pattern < 280);
        // Both stores are populated.
        let north = t
            .iter()
            .filter(|r| r.get(1).as_text().unwrap() == "north")
            .count();
        assert!(north > 100 && north < 400);
        assert!(market_basket_data(10, 2, 1, 0).is_err());
    }

    #[test]
    fn ratings_and_corpus_generators() {
        let r = ratings_data(10, 8, 2, 0.5, 2, 5).unwrap();
        assert!(r.row_count() > 10);
        assert!(r.row_count() <= 80);
        assert!(ratings_data(0, 1, 1, 0.1, 1, 0).is_err());

        let c = document_corpus(12, 3, 10, 30, 2, 9).unwrap();
        assert_eq!(c.row_count(), 12);
        for row in c.iter() {
            assert_eq!(row.get(1).as_text_array().unwrap().len(), 30);
        }
        assert!(document_corpus(0, 1, 1, 1, 1, 0).is_err());
    }
}
