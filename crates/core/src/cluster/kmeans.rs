//! k-means clustering (paper Section 4.3).
//!
//! The paper uses k-means as its example of *large-state iteration*: the
//! inter-iteration state is the set of `k` centroids, the intra-iteration
//! state is the running barycenter accumulation, and each Lloyd iteration is
//! one user-defined aggregate pass driven by a driver function.  This module
//! reproduces exactly that structure:
//!
//! * the per-iteration pass is `KMeansStep`, a UDA whose transition function
//!   assigns each point to its closest centroid (the `closest_column` UDF of
//!   the paper) and accumulates per-centroid sums and counts;
//! * the outer loop is an [`IterationController`] run, staging the flattened
//!   centroid matrix as the inter-iteration state;
//! * convergence is declared when no (or few) points change assignment, which
//!   the step tracks by also counting reassignments against the previous
//!   centroids.

use crate::cluster::seeding::{seed_centroids, SeedingMethod};
use crate::error::{MethodError, Result};
use crate::train::{Estimator, IncrementalEstimator, Session};
use madlib_engine::aggregate::transition_chunk_by_rows;
use madlib_engine::dataset::Dataset;
use madlib_engine::iteration::{IterationConfig, IterationController};
use madlib_engine::{Aggregate, Row, RowChunk, Schema};
use madlib_linalg::array_ops::{batch_closest_column, closest_column};
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansModel {
    /// Final centroid positions.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of every point to its closest centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
    /// Whether the reassignment-fraction convergence criterion was met.
    pub converged: bool,
    /// Number of points clustered.
    pub num_points: usize,
}

impl KMeansModel {
    /// Index of the centroid closest to `point`.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on a dimension mismatch.
    pub fn assign(&self, point: &[f64]) -> Result<usize> {
        let (idx, _) = closest_column(&self.centroids, point)?;
        Ok(idx)
    }

    /// Predicted cluster index for `point` — closest-centroid assignment,
    /// the serving-side name for [`KMeansModel::assign`] (every other major
    /// model exposes `predict`; k-means now does too).
    ///
    /// # Errors
    /// Returns a dimension-mismatch error when `point`'s width differs from
    /// the centroids'.
    pub fn predict(&self, point: &[f64]) -> Result<usize> {
        self.assign(point)
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// Configuration and driver for Lloyd's algorithm.
#[derive(Debug, Clone)]
pub struct KMeans {
    coords_column: String,
    k: usize,
    max_iterations: usize,
    /// Stop when the fraction of points changing assignment falls below this.
    reassignment_fraction: f64,
    seeding: SeedingMethod,
    seed: u64,
    initial_centroids: Option<Vec<Vec<f64>>>,
}

impl KMeans {
    /// Creates a k-means driver reading points from `coords_column`.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] when `k == 0`.
    pub fn new(coords_column: impl Into<String>, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(MethodError::invalid_parameter("k", "must be positive"));
        }
        Ok(Self {
            coords_column: coords_column.into(),
            k,
            max_iterations: 50,
            reassignment_fraction: 0.001,
            seeding: SeedingMethod::KMeansPlusPlus,
            seed: 0,
            initial_centroids: None,
        })
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the convergence threshold on the fraction of reassigned points.
    pub fn with_reassignment_fraction(mut self, fraction: f64) -> Self {
        self.reassignment_fraction = fraction.max(0.0);
        self
    }

    /// Selects the seeding method.
    pub fn with_seeding(mut self, seeding: SeedingMethod) -> Self {
        self.seeding = seeding;
        self
    }

    /// Sets the RNG seed used for seeding.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Warm-starts Lloyd's algorithm from `centroids` instead of running the
    /// seeding phase — the incremental-refresh path seeds this with the
    /// previous model's centroids so a refresh after a small append settles
    /// in a few iterations.  There must be exactly `k` centroids, all of the
    /// data's dimension (checked at fit time).
    #[must_use]
    pub fn with_initial_centroids(mut self, centroids: Vec<Vec<f64>>) -> Self {
        self.initial_centroids = Some(centroids);
        self
    }
}

impl Estimator for KMeans {
    type Model = KMeansModel;

    /// Runs Lloyd's algorithm over the dataset's (filtered) points; the
    /// session's database stages the centroid state between iterations.
    fn fit(&self, dataset: &Dataset<'_>, session: &Session) -> Result<KMeansModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        let coords_column = self.coords_column.clone();
        // Seeding phase: pull a small sample of points (here: all points'
        // coordinates; the seeding itself is cheap relative to Lloyd).
        let points: Vec<Vec<f64>> = dataset
            .map_rows(move |row, schema| {
                Ok(row
                    .get_named(schema, &coords_column)?
                    .as_double_array()?
                    .to_vec())
            })
            .map_err(MethodError::from)?;
        let num_points = points.len();
        if num_points < self.k {
            return Err(MethodError::invalid_parameter(
                "k",
                format!("need at least k={} points, found {num_points}", self.k),
            ));
        }
        let dims = points[0].len();
        if points.iter().any(|p| p.len() != dims) {
            return Err(MethodError::invalid_input(
                "inconsistent point dimensions across rows",
            ));
        }
        let initial = match &self.initial_centroids {
            None => seed_centroids(&points, self.k, self.seeding, self.seed)?,
            Some(centroids) => {
                if centroids.len() != self.k || centroids.iter().any(|c| c.len() != dims) {
                    return Err(MethodError::invalid_input(format!(
                        "initial centroids must be k={} vectors of dimension {dims}",
                        self.k
                    )));
                }
                centroids.clone()
            }
        };

        let config = IterationConfig {
            max_iterations: self.max_iterations,
            tolerance: self.reassignment_fraction,
            fail_on_max_iterations: false,
            state_table_name: "kmeans_state".to_owned(),
        };
        let controller = IterationController::new(session.database().clone(), config);

        let k = self.k;
        let reassignment_threshold = (self.reassignment_fraction * num_points as f64).ceil();
        let coords_column = self.coords_column.clone();
        let outcome = controller
            .run(
                flatten_centroids(&initial),
                |state, _iteration| {
                    // The state is the flattened centroid matrix, optionally
                    // followed by one bookkeeping slot (reassignment count)
                    // appended by the previous step.
                    let centroids = unflatten_centroids(&state[..k * dims], dims);
                    let step = KMeansStep {
                        coords_column: &coords_column,
                        centroids: &centroids,
                    };
                    let result = dataset.aggregate(&step)?;
                    let new_centroids = result.new_centroids(&centroids);
                    // Flatten and append the bookkeeping slot carrying the
                    // reassignment count so the convergence test can see it.
                    let mut flat = flatten_centroids(&new_centroids);
                    flat.push(result.reassignments as f64);
                    Ok(flat)
                },
                |_prev, next, _tol| {
                    // The last slot of the state is the reassignment count of
                    // the pass that produced it.
                    next.last()
                        .map(|&r| r <= reassignment_threshold)
                        .unwrap_or(false)
                },
            )
            .map_err(MethodError::from)?;

        // Strip the bookkeeping slot (absent when zero iterations ran).
        let mut final_flat = outcome.final_state.clone();
        if final_flat.len() == k * dims + 1 {
            final_flat.pop();
        }
        let centroids = unflatten_centroids(&final_flat, dims);

        // Final inertia pass.
        let inertia: f64 = points
            .iter()
            .map(|p| closest_column(&centroids, p).map(|(_, d)| d))
            .collect::<std::result::Result<Vec<f64>, _>>()?
            .iter()
            .sum();

        Ok(KMeansModel {
            centroids,
            inertia,
            iterations: outcome.iterations,
            converged: outcome.converged,
            num_points,
        })
    }
}

impl IncrementalEstimator for KMeans {
    /// Fits over the whole table and catalogs the model under `name` so
    /// later refreshes can warm-start from it.
    fn train_incremental(&self, session: &Session, table: &str, name: &str) -> Result<KMeansModel> {
        let model = session.train(self, &session.dataset(table)?)?;
        session.database().models().register(name, model.clone());
        Ok(model)
    }

    /// Re-runs Lloyd's algorithm over the table's current contents, starting
    /// from the previous model's centroids in the catalog instead of
    /// re-seeding (cold start when `name` is unknown).  After a small append
    /// the centroids barely move, so the refresh settles in a few cheap
    /// iterations; like any k-means restart it converges to a local optimum,
    /// which warm-starting keeps stable across refreshes.
    fn refresh(&self, session: &Session, table: &str, name: &str) -> Result<KMeansModel> {
        let warm = match session.database().models().get::<KMeansModel>(name) {
            Ok(previous) if previous.centroids.len() == self.k => self
                .clone()
                .with_initial_centroids(previous.centroids.clone()),
            _ => self.clone(),
        };
        let model = session.train(&warm, &session.dataset(table)?)?;
        session.database().models().register(name, model.clone());
        Ok(model)
    }
}

fn flatten_centroids(centroids: &[Vec<f64>]) -> Vec<f64> {
    centroids.iter().flatten().copied().collect()
}

fn unflatten_centroids(flat: &[f64], dims: usize) -> Vec<Vec<f64>> {
    flat.chunks(dims).map(|c| c.to_vec()).collect()
}

/// Result of one Lloyd pass.
#[derive(Debug, Clone)]
struct StepResult {
    sums: Vec<Vec<f64>>,
    counts: Vec<u64>,
    reassignments: u64,
}

impl StepResult {
    /// New centroid positions: barycenters of the assigned points; empty
    /// clusters keep their previous centroid (the standard Lloyd fix-up).
    fn new_centroids(&self, previous: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.sums
            .iter()
            .zip(&self.counts)
            .zip(previous)
            .map(|((sum, &count), prev)| {
                if count == 0 {
                    prev.clone()
                } else {
                    sum.iter().map(|s| s / count as f64).collect()
                }
            })
            .collect()
    }
}

/// One Lloyd iteration as a UDA.  The *inter*-iteration state (previous
/// centroids) is carried in the aggregate definition itself; the *intra*-
/// iteration state (sums/counts/reassignments) is the transition state —
/// matching the paper's description of which state the transition function
/// may modify.
#[derive(Debug, Clone)]
struct KMeansStep<'a> {
    coords_column: &'a str,
    centroids: &'a [Vec<f64>],
}

#[derive(Debug, Clone)]
struct KMeansIntraState {
    sums: Vec<Vec<f64>>,
    counts: Vec<u64>,
    reassignments: u64,
}

impl Aggregate for KMeansStep<'_> {
    type State = KMeansIntraState;
    type Output = StepResult;

    fn initial_state(&self) -> KMeansIntraState {
        let dims = self.centroids.first().map(Vec::len).unwrap_or(0);
        KMeansIntraState {
            sums: vec![vec![0.0; dims]; self.centroids.len()],
            counts: vec![0; self.centroids.len()],
            reassignments: 0,
        }
    }

    fn transition(
        &self,
        state: &mut KMeansIntraState,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let point = row
            .get_named(schema, self.coords_column)?
            .as_double_array()?;
        let (closest, _) =
            closest_column(self.centroids, point).map_err(madlib_engine::EngineError::aggregate)?;
        for (s, p) in state.sums[closest].iter_mut().zip(point) {
            *s += p;
        }
        state.counts[closest] += 1;
        Ok(())
    }

    /// Chunk-at-a-time Lloyd assignment: the chunk's points arrive as one
    /// contiguous row-major block, so every distance computation of the
    /// `closest_column` UDF runs over dense memory with no per-row `Value`
    /// unpacking.  Assignment comparisons and barycenter accumulation happen
    /// in the same order as the per-row path, so the step result is
    /// bit-identical.  Chunks with NULLs, a non-array column, or ragged
    /// widths fall back to per-row transitions (reproducing per-row errors).
    fn transition_chunk(
        &self,
        state: &mut KMeansIntraState,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let idx = schema.index_of(self.coords_column)?;
        let points = match chunk.double_arrays(idx) {
            Ok(p) if !p.nulls().any_null() => p,
            _ => return transition_chunk_by_rows(self, state, chunk, schema),
        };
        let Some(width) = points.uniform_width() else {
            return transition_chunk_by_rows(self, state, chunk, schema);
        };
        let mut assignments = vec![0usize; chunk.len()];
        batch_closest_column(
            self.centroids,
            points.flat_values(),
            width,
            &mut assignments,
        )
        .map_err(madlib_engine::EngineError::aggregate)?;
        for (r, &closest) in assignments.iter().enumerate() {
            let point = points.row(r);
            for (s, p) in state.sums[closest].iter_mut().zip(point) {
                *s += p;
            }
            state.counts[closest] += 1;
        }
        Ok(())
    }

    fn merge(&self, mut left: KMeansIntraState, right: KMeansIntraState) -> KMeansIntraState {
        for (ls, rs) in left.sums.iter_mut().zip(&right.sums) {
            for (a, b) in ls.iter_mut().zip(rs) {
                *a += b;
            }
        }
        for (lc, rc) in left.counts.iter_mut().zip(&right.counts) {
            *lc += rc;
        }
        left.reassignments += right.reassignments;
        left
    }

    fn finalize(&self, state: KMeansIntraState) -> madlib_engine::Result<StepResult> {
        // Reassignment count: how many points are assigned to a centroid that
        // will move by more than a tiny amount this iteration.  Computed from
        // the difference between the old centroid and the new barycenter,
        // weighted by the cluster size.
        let mut reassignments = 0u64;
        for ((sum, &count), prev) in state.sums.iter().zip(&state.counts).zip(self.centroids) {
            if count == 0 {
                continue;
            }
            let movement: f64 = sum
                .iter()
                .zip(prev)
                .map(|(s, p)| {
                    let new = s / count as f64;
                    (new - p) * (new - p)
                })
                .sum();
            if movement.sqrt() > 1e-9 {
                reassignments += count;
            }
        }
        Ok(StepResult {
            sums: state.sums,
            counts: state.counts,
            reassignments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_blobs;
    use madlib_engine::Table;

    fn fit(k: usize, data: &Table, seed: u64) -> KMeansModel {
        let session = Session::in_memory(data.num_segments()).unwrap();
        session
            .train(
                &KMeans::new("coords", k).unwrap().with_seed(seed),
                &Dataset::from_table(data),
            )
            .unwrap()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = gaussian_blobs(300, 3, 2, 0.5, 4, 11).unwrap();
        let model = fit(3, &data.table, 3);
        assert_eq!(model.k(), 3);
        assert_eq!(model.num_points, 300);
        assert!(model.converged);
        // Every true center should have a fitted centroid within a small
        // distance (blobs are ~25+ units apart, noise σ = 0.5).
        for truth in &data.true_centers {
            let min_dist = model
                .centroids
                .iter()
                .map(|c| {
                    c.iter()
                        .zip(truth)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            assert!(min_dist < 2.0, "no centroid near true center {truth:?}");
        }
        // Inertia should be roughly rows · dims · σ² (≈ 300·2·0.25 = 150).
        assert!(model.inertia < 600.0);
    }

    #[test]
    fn assignment_agrees_with_ground_truth_partition() {
        let data = gaussian_blobs(200, 2, 3, 0.3, 2, 29).unwrap();
        let model = fit(2, &data.table, 1);
        // Points from the same generator cluster map to the same fitted
        // cluster (up to relabeling): check pairwise consistency on a sample.
        // Rows come back in segment order, so use the id column to look up
        // the ground-truth assignment made at insertion time.
        let rows = data.table.collect_rows();
        let pairs: Vec<(usize, usize)> = rows
            .iter()
            .map(|r| {
                let id = r.get(0).as_int().unwrap() as usize;
                let fitted = model.assign(r.get(1).as_double_array().unwrap()).unwrap();
                (data.assignments[id], fitted)
            })
            .collect();
        for i in (0..pairs.len()).step_by(7) {
            for j in (0..pairs.len()).step_by(13) {
                let same_truth = pairs[i].0 == pairs[j].0;
                let same_fitted = pairs[i].1 == pairs[j].1;
                assert_eq!(same_truth, same_fitted, "rows {i} and {j} disagree");
            }
        }
    }

    #[test]
    fn k_equal_one_gives_global_mean() {
        let data = gaussian_blobs(100, 1, 2, 1.0, 2, 5).unwrap();
        let model = fit(1, &data.table, 0);
        assert_eq!(model.k(), 1);
        // Centroid should be near the single true center.
        let truth = &data.true_centers[0];
        for (c, t) in model.centroids[0].iter().zip(truth) {
            assert!((c - t).abs() < 1.0);
        }
    }

    #[test]
    fn parameter_and_input_validation() {
        assert!(KMeans::new("coords", 0).is_err());
        let data = gaussian_blobs(5, 2, 2, 0.1, 1, 2).unwrap();
        let session = Session::in_memory(1).unwrap();
        // k larger than the number of points.
        assert!(KMeans::new("coords", 10)
            .unwrap()
            .fit(&Dataset::from_table(&data.table), &session)
            .is_err());
        // Empty table.
        let empty = Table::new(crate::datasets::points_schema(), 2).unwrap();
        assert!(KMeans::new("coords", 2)
            .unwrap()
            .fit(&Dataset::from_table(&empty), &session)
            .is_err());
    }

    #[test]
    fn random_seeding_also_converges() {
        let data = gaussian_blobs(150, 3, 2, 0.4, 3, 17).unwrap();
        let session = Session::in_memory(3).unwrap();
        let model = KMeans::new("coords", 3)
            .unwrap()
            .with_seeding(SeedingMethod::Random)
            .with_max_iterations(100)
            .with_seed(23)
            .fit(&Dataset::from_table(&data.table), &session)
            .unwrap();
        assert_eq!(model.centroids.len(), 3);
        assert!(model.iterations >= 1);
        // Driver temp tables cleaned up.
        assert!(session.database().list_tables().is_empty());
    }

    #[test]
    fn partition_invariance_of_one_step() {
        // With fixed seeding the whole fit is deterministic and partition
        // invariant.
        let data = gaussian_blobs(120, 3, 2, 0.2, 1, 31).unwrap();
        let reference = fit(3, &data.table, 7);
        let repartitioned = data.table.repartition(6).unwrap();
        let other = fit(3, &repartitioned, 7);
        let mut a = reference.centroids.clone();
        let mut b = other.centroids.clone();
        let sort_key = |c: &Vec<f64>| (c[0] * 1e6) as i64;
        a.sort_by_key(sort_key);
        b.sort_by_key(sort_key);
        for (ca, cb) in a.iter().zip(&b) {
            for (x, y) in ca.iter().zip(cb) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }
}
