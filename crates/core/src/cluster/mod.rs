//! Unsupervised clustering methods.

pub mod kmeans;
pub mod seeding;

pub use kmeans::{KMeans, KMeansModel};
pub use seeding::SeedingMethod;
