//! Centroid seeding strategies for k-means.
//!
//! The paper's Section 4.3 describes the seeding phase as step (1) of Lloyd's
//! algorithm; MADlib offers both random seeding and the k-means++ strategy of
//! Arthur & Vassilvitskii (the paper cites it as reference \[5\]).

use crate::error::{MethodError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How initial centroids are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedingMethod {
    /// Choose `k` distinct input points uniformly at random.
    Random,
    /// k-means++: choose points with probability proportional to their
    /// squared distance from the nearest already-chosen centroid.
    KMeansPlusPlus,
}

/// Selects `k` initial centroids from `points` using the given method.
///
/// # Errors
/// Returns [`MethodError::InvalidParameter`] when `k` is zero or larger than
/// the number of points.
pub fn seed_centroids(
    points: &[Vec<f64>],
    k: usize,
    method: SeedingMethod,
    seed: u64,
) -> Result<Vec<Vec<f64>>> {
    if k == 0 {
        return Err(MethodError::invalid_parameter("k", "must be positive"));
    }
    if k > points.len() {
        return Err(MethodError::invalid_parameter(
            "k",
            format!("cannot exceed the number of points ({})", points.len()),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    match method {
        SeedingMethod::Random => {
            // Reservoir-free sampling of k distinct indices.
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            while chosen.len() < k {
                let idx = rng.gen_range(0..points.len());
                if !chosen.contains(&idx) {
                    chosen.push(idx);
                }
            }
            Ok(chosen.into_iter().map(|i| points[i].clone()).collect())
        }
        SeedingMethod::KMeansPlusPlus => {
            let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
            let first = rng.gen_range(0..points.len());
            centroids.push(points[first].clone());
            let mut distances: Vec<f64> = points
                .iter()
                .map(|p| squared_distance(p, &centroids[0]))
                .collect();
            while centroids.len() < k {
                let total: f64 = distances.iter().sum();
                let next_idx = if total <= 0.0 {
                    // All remaining points coincide with a centroid; pick any.
                    rng.gen_range(0..points.len())
                } else {
                    let mut target = rng.gen_range(0.0..total);
                    let mut idx = 0;
                    for (i, d) in distances.iter().enumerate() {
                        if target < *d {
                            idx = i;
                            break;
                        }
                        target -= d;
                        idx = i;
                    }
                    idx
                };
                centroids.push(points[next_idx].clone());
                let newest = centroids.last().expect("just pushed");
                for (d, p) in distances.iter_mut().zip(points) {
                    let nd = squared_distance(p, newest);
                    if nd < *d {
                        *d = nd;
                    }
                }
            }
            Ok(centroids)
        }
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for cx in [0.0, 100.0, 200.0] {
            for i in 0..20 {
                points.push(vec![cx + (i % 5) as f64 * 0.1, cx + (i / 5) as f64 * 0.1]);
            }
        }
        points
    }

    #[test]
    fn produces_k_centroids_from_input_points() {
        let points = grid_points();
        for method in [SeedingMethod::Random, SeedingMethod::KMeansPlusPlus] {
            let centroids = seed_centroids(&points, 3, method, 42).unwrap();
            assert_eq!(centroids.len(), 3);
            for c in &centroids {
                assert!(points.contains(c), "centroid must be one of the inputs");
            }
        }
    }

    #[test]
    fn kmeans_plus_plus_spreads_centroids() {
        let points = grid_points();
        let centroids = seed_centroids(&points, 3, SeedingMethod::KMeansPlusPlus, 1).unwrap();
        // With three well-separated clumps, k-means++ should pick one point
        // from each clump (each clump spans < 1 unit, clumps are 100 apart).
        let mut clumps: Vec<usize> = centroids
            .iter()
            .map(|c| (c[0] / 100.0).round() as usize)
            .collect();
        clumps.sort_unstable();
        clumps.dedup();
        assert_eq!(clumps.len(), 3, "expected one centroid per clump");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let points = grid_points();
        let a = seed_centroids(&points, 4, SeedingMethod::Random, 9).unwrap();
        let b = seed_centroids(&points, 4, SeedingMethod::Random, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_k() {
        let points = grid_points();
        assert!(seed_centroids(&points, 0, SeedingMethod::Random, 0).is_err());
        assert!(seed_centroids(&points, points.len() + 1, SeedingMethod::Random, 0).is_err());
    }

    #[test]
    fn handles_duplicate_points() {
        let points = vec![vec![1.0, 1.0]; 10];
        let centroids = seed_centroids(&points, 3, SeedingMethod::KMeansPlusPlus, 5).unwrap();
        assert_eq!(centroids.len(), 3);
    }
}
