//! Latent Dirichlet Allocation via collapsed Gibbs sampling.
//!
//! Table 1 of the paper lists LDA among the unsupervised methods, and Section
//! 5.2 describes the general pattern of carrying MCMC state across iterations
//! inside the engine.  This implementation uses the standard collapsed Gibbs
//! sampler: each token's topic assignment is resampled conditioned on the
//! current document-topic and topic-word counts, and the per-iteration sweep
//! over the corpus plays the role of the data-parallel pass.

use crate::error::{MethodError, Result};
use crate::train::{Estimator, Session};
use madlib_engine::chunk::ColumnChunk;
use madlib_engine::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fitted LDA model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaModel {
    /// Number of topics.
    pub num_topics: usize,
    /// Vocabulary: distinct words in index order.
    pub vocabulary: Vec<String>,
    /// Topic-word counts: `topic_word[k][w]`.
    pub topic_word: Vec<Vec<u32>>,
    /// Document-topic counts: `doc_topic[d][k]`.
    pub doc_topic: Vec<Vec<u32>>,
    /// Dirichlet prior on document-topic proportions.
    pub alpha: f64,
    /// Dirichlet prior on topic-word proportions.
    pub beta: f64,
    /// Gibbs sweeps performed.
    pub iterations: usize,
}

impl LdaModel {
    /// The `top_n` highest-probability words of a topic.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] for an out-of-range topic.
    pub fn top_words(&self, topic: usize, top_n: usize) -> Result<Vec<(String, u32)>> {
        let counts = self
            .topic_word
            .get(topic)
            .ok_or_else(|| MethodError::invalid_parameter("topic", "out of range"))?;
        let mut pairs: Vec<(String, u32)> = self
            .vocabulary
            .iter()
            .cloned()
            .zip(counts.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(top_n);
        Ok(pairs)
    }

    /// Topic proportions of a document (normalized, with the α prior).
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] for an out-of-range document.
    pub fn document_topics(&self, doc: usize) -> Result<Vec<f64>> {
        let counts = self
            .doc_topic
            .get(doc)
            .ok_or_else(|| MethodError::invalid_parameter("doc", "out of range"))?;
        let total: f64 =
            counts.iter().map(|&c| c as f64).sum::<f64>() + self.alpha * self.num_topics as f64;
        Ok(counts
            .iter()
            .map(|&c| (c as f64 + self.alpha) / total)
            .collect())
    }
}

/// Collapsed-Gibbs LDA trainer.
#[derive(Debug, Clone)]
pub struct Lda {
    tokens_column: String,
    num_topics: usize,
    alpha: f64,
    beta: f64,
    iterations: usize,
    seed: u64,
}

impl Lda {
    /// Creates a trainer with `num_topics` topics and defaults
    /// (α = 50/K, β = 0.01, 100 sweeps).
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] when `num_topics == 0`.
    pub fn new(tokens_column: impl Into<String>, num_topics: usize) -> Result<Self> {
        if num_topics == 0 {
            return Err(MethodError::invalid_parameter(
                "num_topics",
                "must be positive",
            ));
        }
        Ok(Self {
            tokens_column: tokens_column.into(),
            num_topics,
            alpha: 50.0 / num_topics as f64,
            beta: 0.01,
            iterations: 100,
            seed: 0,
        })
    }

    /// Sets the document-topic prior α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the topic-word prior β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the number of Gibbs sweeps.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Extracts the token sequences of one column-major chunk: the fast path
    /// slices each document straight out of the flattened `text[]` buffer;
    /// NULL-bearing chunks and unexpected column types fall back to per-row
    /// access, which raises exactly the errors the legacy row loop did.
    fn chunk_documents(
        &self,
        chunk: &madlib_engine::RowChunk,
        schema: &madlib_engine::Schema,
    ) -> madlib_engine::Result<Vec<Vec<String>>> {
        let idx = schema.index_of(&self.tokens_column)?;
        if let ColumnChunk::TextArray {
            values,
            offsets,
            nulls,
        } = chunk.column(idx)
        {
            if !nulls.any_null() {
                return Ok((0..chunk.len())
                    .map(|i| values[offsets[i]..offsets[i + 1]].to_vec())
                    .collect());
            }
        }
        (0..chunk.len())
            .map(|i| Ok(chunk.value(i, idx).as_text_array()?.to_vec()))
            .collect()
    }
}

impl Estimator for Lda {
    type Model = LdaModel;

    /// Fits the model over a corpus dataset whose `tokens_column` holds
    /// `text[]` token sequences.  The corpus-loading pass rides the chunked
    /// scan pipeline; the seeded Gibbs sweeps run in-core over the collected
    /// documents in scan order.
    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<LdaModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        let documents: Vec<Vec<String>> = dataset
            .map_chunks(|chunk, schema| self.chunk_documents(chunk, schema))
            .map_err(MethodError::from)?;
        if documents.iter().all(|d| d.is_empty()) {
            return Err(MethodError::invalid_input("corpus contains no tokens"));
        }

        // Build the vocabulary.
        let mut word_ids: BTreeMap<&str, usize> = BTreeMap::new();
        for doc in &documents {
            for word in doc {
                let next_id = word_ids.len();
                word_ids.entry(word.as_str()).or_insert(next_id);
            }
        }
        let vocab_size = word_ids.len();
        let mut vocabulary = vec![String::new(); vocab_size];
        for (word, &id) in &word_ids {
            vocabulary[id] = (*word).to_owned();
        }

        // Tokenized corpus as word ids.
        let corpus: Vec<Vec<usize>> = documents
            .iter()
            .map(|doc| doc.iter().map(|w| word_ids[w.as_str()]).collect())
            .collect();

        let k = self.num_topics;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut topic_word = vec![vec![0u32; vocab_size]; k];
        let mut topic_totals = vec![0u32; k];
        let mut doc_topic = vec![vec![0u32; k]; corpus.len()];
        let mut assignments: Vec<Vec<usize>> = corpus
            .iter()
            .map(|doc| doc.iter().map(|_| rng.gen_range(0..k)).collect())
            .collect();
        for (d, doc) in corpus.iter().enumerate() {
            for (n, &w) in doc.iter().enumerate() {
                let z = assignments[d][n];
                topic_word[z][w] += 1;
                topic_totals[z] += 1;
                doc_topic[d][z] += 1;
            }
        }

        let mut probabilities = vec![0.0; k];
        for _sweep in 0..self.iterations {
            for (d, doc) in corpus.iter().enumerate() {
                for (n, &w) in doc.iter().enumerate() {
                    let old = assignments[d][n];
                    topic_word[old][w] -= 1;
                    topic_totals[old] -= 1;
                    doc_topic[d][old] -= 1;

                    let mut total = 0.0;
                    for (t, p) in probabilities.iter_mut().enumerate() {
                        let word_part = (topic_word[t][w] as f64 + self.beta)
                            / (topic_totals[t] as f64 + self.beta * vocab_size as f64);
                        let doc_part = doc_topic[d][t] as f64 + self.alpha;
                        *p = word_part * doc_part;
                        total += *p;
                    }
                    let mut target = rng.gen_range(0.0..total);
                    let mut new_topic = k - 1;
                    for (t, &p) in probabilities.iter().enumerate() {
                        if target < p {
                            new_topic = t;
                            break;
                        }
                        target -= p;
                    }

                    assignments[d][n] = new_topic;
                    topic_word[new_topic][w] += 1;
                    topic_totals[new_topic] += 1;
                    doc_topic[d][new_topic] += 1;
                }
            }
        }

        Ok(LdaModel {
            num_topics: k,
            vocabulary,
            topic_word,
            doc_topic,
            alpha: self.alpha,
            beta: self.beta,
            iterations: self.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::document_corpus;
    use madlib_engine::Table;

    fn fit(estimator: &Lda, table: &Table) -> Result<LdaModel> {
        estimator.fit(
            &Dataset::from_table(table),
            &Session::in_memory(table.num_segments()).unwrap(),
        )
    }

    #[test]
    fn recovers_topic_structure() {
        // 3 topics with disjoint vocabularies (t0_*, t1_*, t2_*).
        let corpus = document_corpus(30, 3, 20, 50, 3, 7).unwrap();
        let estimator = Lda::new("tokens", 3)
            .unwrap()
            .with_alpha(0.1)
            .with_beta(0.01)
            .with_iterations(200)
            .with_seed(3);
        let model = fit(&estimator, &corpus).unwrap();
        assert_eq!(model.num_topics, 3);
        assert_eq!(model.iterations, 200);
        // Each fitted topic should be dominated by words from one generator
        // topic: check the top-10 words share a prefix.
        let mut seen_prefixes = Vec::new();
        for t in 0..3 {
            let top = model.top_words(t, 10).unwrap();
            let mut prefix_counts: BTreeMap<String, usize> = BTreeMap::new();
            for (word, _) in &top {
                let prefix = word.split('_').next().unwrap_or("").to_owned();
                *prefix_counts.entry(prefix).or_insert(0) += 1;
            }
            let (best_prefix, best_count) =
                prefix_counts.into_iter().max_by_key(|(_, c)| *c).unwrap();
            assert!(
                best_count >= 8,
                "topic {t} not dominated by one generator topic: {top:?}"
            );
            seen_prefixes.push(best_prefix);
        }
        seen_prefixes.sort();
        seen_prefixes.dedup();
        assert_eq!(
            seen_prefixes.len(),
            3,
            "each topic maps to a distinct generator topic"
        );
    }

    #[test]
    fn document_topic_proportions_sum_to_one() {
        let corpus = document_corpus(10, 2, 10, 30, 2, 5).unwrap();
        let estimator = Lda::new("tokens", 2).unwrap().with_iterations(50);
        let model = fit(&estimator, &corpus).unwrap();
        for d in 0..10 {
            let props = model.document_topics(d).unwrap();
            let sum: f64 = props.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(props.iter().all(|&p| p > 0.0));
        }
        assert!(model.document_topics(99).is_err());
        assert!(model.top_words(99, 5).is_err());
    }

    #[test]
    fn parameter_validation() {
        assert!(Lda::new("tokens", 0).is_err());
        let empty = madlib_engine::Table::new(
            madlib_engine::Schema::new(vec![
                madlib_engine::Column::new("doc_id", madlib_engine::ColumnType::Int),
                madlib_engine::Column::new("tokens", madlib_engine::ColumnType::TextArray),
            ]),
            2,
        )
        .unwrap();
        assert!(fit(&Lda::new("tokens", 2).unwrap(), &empty).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = document_corpus(8, 2, 8, 20, 2, 11).unwrap();
        let estimator = Lda::new("tokens", 2)
            .unwrap()
            .with_iterations(20)
            .with_seed(9);
        let a = fit(&estimator, &corpus).unwrap();
        let b = fit(&estimator, &corpus).unwrap();
        assert_eq!(a.topic_word, b.topic_word);
        assert_eq!(a.doc_topic, b.doc_topic);
    }
}
