//! Topic models.

pub mod lda;

pub use lda::{Lda, LdaModel};
