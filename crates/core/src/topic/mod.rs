//! Topic models.
//!
//! [`Lda`] implements [`crate::train::Estimator`], so topic models train
//! through `Session::train` / `Session::train_grouped` (one topic model per
//! corpus via `grouping_cols`) like every other method.

pub mod lda;

pub use lda::{Lda, LdaModel};
