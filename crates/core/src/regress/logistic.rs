//! Binary logistic regression (paper Section 4.2).
//!
//! Fitted by iteratively reweighted least squares (IRLS, i.e. Newton's method
//! on the log-likelihood), following the paper's Figure 3 control flow: a
//! driver loop (the [`madlib_engine::iteration::IterationController`])
//! repeatedly invokes a user-defined aggregate (`logregr_irls_step`) that
//! computes one Newton update in a single parallel pass over the data, staging
//! only the (small) coefficient state between iterations.
//!
//! An SGD-based solver for the same model lives in the `madlib-convex` crate
//! (the paper's Section 5.1 framework); the two are cross-checked in the
//! integration tests.

use crate::error::{MethodError, Result};
use crate::train::{Estimator, IncrementalEstimator, Session};
use madlib_engine::aggregate::{extract_labeled_point, transition_chunk_by_rows};
use madlib_engine::dataset::Dataset;
use madlib_engine::iteration::{IterationConfig, IterationController};
use madlib_engine::{Aggregate, Row, RowChunk, Schema};
use madlib_linalg::decomposition::{symmetric_inverse_with, symmetric_solve, EigenWorkspace};
use madlib_linalg::kernels::{batch_dot, weighted_rank_k_update_lower, xty_update};
use madlib_linalg::{DenseMatrix, DenseVector};
use madlib_stats::Normal;
use serde::{Deserialize, Serialize};

/// The logistic function σ(z) = 1 / (1 + e^{−z}).
pub fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Fitted binary logistic-regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionModel {
    /// Fitted coefficients.
    pub coef: Vec<f64>,
    /// Standard error of each coefficient (from the inverse Fisher
    /// information at the optimum).
    pub std_err: Vec<f64>,
    /// Wald z statistics.
    pub z_stats: Vec<f64>,
    /// Two-sided p-values of the Wald tests.
    pub p_values: Vec<f64>,
    /// Log-likelihood at the optimum.
    pub log_likelihood: f64,
    /// Number of IRLS iterations performed.
    pub num_iterations: usize,
    /// Whether the convergence criterion was met.
    pub converged: bool,
    /// Number of observations.
    pub num_rows: u64,
}

impl LogisticRegressionModel {
    /// Predicted probability `P(y = 1 | x)`.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on a feature-length mismatch.
    pub fn predict_probability(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.coef.len() {
            return Err(MethodError::invalid_input(format!(
                "feature length {} does not match coefficient length {}",
                x.len(),
                self.coef.len()
            )));
        }
        Ok(sigmoid(self.coef.iter().zip(x).map(|(c, v)| c * v).sum()))
    }

    /// Predicted class label with a 0.5 threshold.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] on a feature-length mismatch.
    pub fn predict(&self, x: &[f64]) -> Result<bool> {
        Ok(self.predict_probability(x)? >= 0.5)
    }
}

/// One IRLS step as a user-defined aggregate: given the previous coefficient
/// vector β, accumulate the Hessian `XᵀDX`, the gradient `Xᵀ(y − p)` and the
/// log-likelihood in one pass.
#[derive(Debug, Clone)]
struct IrlsStep<'a> {
    y_column: &'a str,
    x_column: &'a str,
    beta: &'a [f64],
}

/// Transition state for [`IrlsStep`].
#[derive(Debug, Clone)]
struct IrlsState {
    num_rows: u64,
    width: usize,
    hessian: DenseMatrix,
    gradient: DenseVector,
    log_likelihood: f64,
}

impl IrlsState {
    fn empty() -> Self {
        Self {
            num_rows: 0,
            width: 0,
            hessian: DenseMatrix::zeros(0, 0),
            gradient: DenseVector::zeros(0),
            log_likelihood: 0.0,
        }
    }
}

impl Aggregate for IrlsStep<'_> {
    type State = IrlsState;
    type Output = (DenseMatrix, DenseVector, f64, u64);

    fn initial_state(&self) -> IrlsState {
        IrlsState::empty()
    }

    fn transition(
        &self,
        state: &mut IrlsState,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let (y, x) = extract_labeled_point(row, schema, self.y_column, self.x_column)?;
        if !(y == 0.0 || y == 1.0) {
            return Err(madlib_engine::EngineError::aggregate(format!(
                "logistic regression labels must be 0 or 1, found {y}"
            )));
        }
        if state.num_rows == 0 {
            state.width = x.len();
            state.hessian = DenseMatrix::zeros(x.len(), x.len());
            state.gradient = DenseVector::zeros(x.len());
        } else if x.len() != state.width {
            return Err(madlib_engine::EngineError::aggregate(format!(
                "inconsistent feature width: expected {}, found {}",
                state.width,
                x.len()
            )));
        }
        if x.len() != self.beta.len() {
            return Err(madlib_engine::EngineError::aggregate(format!(
                "feature width {} does not match coefficient width {}",
                x.len(),
                self.beta.len()
            )));
        }
        state.num_rows += 1;
        let eta: f64 = x.iter().zip(self.beta).map(|(a, b)| a * b).sum();
        let p = sigmoid(eta);
        let w = (p * (1.0 - p)).max(1e-12);
        // Gradient of the log-likelihood: Σ (y − p) x.
        for (g, xi) in state.gradient.as_mut_slice().iter_mut().zip(x) {
            *g += (y - p) * xi;
        }
        // Hessian (negated): Σ w x xᵀ — only the lower triangle, symmetrized
        // in finalize (same trick as linear regression).
        for i in 0..x.len() {
            for j in 0..=i {
                state.hessian.add_to(i, j, w * x[i] * x[j]);
            }
        }
        // Log-likelihood contribution.
        state.log_likelihood += if y > 0.5 {
            p.max(1e-300).ln()
        } else {
            (1.0 - p).max(1e-300).ln()
        };
        Ok(())
    }

    /// Chunk-at-a-time IRLS transition: linear scores `η = Xβ` come from the
    /// batched dot-product kernel over the chunk's contiguous feature block,
    /// the gradient `Xᵀ(y − p)` from the batched `Xᵀy` kernel, and the
    /// weighted Hessian `XᵀDX` from the tiled weighted rank-k kernel — all
    /// bit-identical to the per-row formulation.  Chunks the vectorized path
    /// cannot represent (NULLs, wrong column types, ragged or mismatched
    /// widths, labels outside {0, 1}) fall back to per-row transitions, which
    /// reproduces per-row error behaviour exactly.
    fn transition_chunk(
        &self,
        state: &mut IrlsState,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let y_idx = schema.index_of(self.y_column)?;
        let x_idx = schema.index_of(self.x_column)?;
        let (y, x) = match (chunk.doubles(y_idx), chunk.double_arrays(x_idx)) {
            (Ok(y), Ok(x)) if !y.nulls.any_null() && !x.nulls().any_null() => (y, x),
            _ => return transition_chunk_by_rows(self, state, chunk, schema),
        };
        let widths_consistent = x.uniform_width() == Some(self.beta.len())
            && (state.num_rows == 0 || state.width == self.beta.len());
        let labels_valid = y.values.iter().all(|&v| v == 0.0 || v == 1.0);
        if !widths_consistent || !labels_valid {
            return transition_chunk_by_rows(self, state, chunk, schema);
        }
        let width = self.beta.len();
        if state.num_rows == 0 {
            state.width = width;
            state.hessian = DenseMatrix::zeros(width, width);
            state.gradient = DenseVector::zeros(width);
        }
        let rows = chunk.len();
        let xs = x.flat_values();
        let mut eta = vec![0.0; rows];
        batch_dot(xs, self.beta, &mut eta);
        // Per-row residuals (y − p) and IRLS weights w = p(1 − p).
        let mut residuals = vec![0.0; rows];
        let mut weights = vec![0.0; rows];
        for (i, (&yv, &e)) in y.values.iter().zip(&eta).enumerate() {
            let p = sigmoid(e);
            residuals[i] = yv - p;
            weights[i] = (p * (1.0 - p)).max(1e-12);
            state.log_likelihood += if yv > 0.5 {
                p.max(1e-300).ln()
            } else {
                (1.0 - p).max(1e-300).ln()
            };
        }
        state.num_rows += rows as u64;
        xty_update(state.gradient.as_mut_slice(), xs, &residuals, width);
        weighted_rank_k_update_lower(&mut state.hessian, xs, &weights, width);
        Ok(())
    }

    fn merge(&self, left: IrlsState, right: IrlsState) -> IrlsState {
        if left.num_rows == 0 {
            return right;
        }
        if right.num_rows == 0 {
            return left;
        }
        let mut out = left;
        out.num_rows += right.num_rows;
        out.log_likelihood += right.log_likelihood;
        out.gradient
            .add_assign(&right.gradient)
            .expect("equal widths");
        out.hessian
            .add_assign(&right.hessian)
            .expect("equal widths");
        out
    }

    fn finalize(
        &self,
        mut state: IrlsState,
    ) -> madlib_engine::Result<(DenseMatrix, DenseVector, f64, u64)> {
        if state.num_rows == 0 {
            return Err(madlib_engine::EngineError::aggregate(
                "logistic regression over empty input",
            ));
        }
        state
            .hessian
            .symmetrize_from_lower()
            .map_err(madlib_engine::EngineError::aggregate)?;
        Ok((
            state.hessian,
            state.gradient,
            state.log_likelihood,
            state.num_rows,
        ))
    }
}

/// Binary logistic regression via an IRLS driver function.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    y_column: String,
    x_column: String,
    max_iterations: usize,
    tolerance: f64,
    ridge: f64,
    initial_coefficients: Option<Vec<f64>>,
}

impl LogisticRegression {
    /// Creates the estimator with default settings (at most 50 IRLS
    /// iterations, tolerance 1e-8, tiny ridge jitter for separable data).
    pub fn new(y_column: impl Into<String>, x_column: impl Into<String>) -> Self {
        Self {
            y_column: y_column.into(),
            x_column: x_column.into(),
            max_iterations: 50,
            tolerance: 1e-8,
            ridge: 1e-8,
            initial_coefficients: None,
        }
    }

    /// Warm-starts the IRLS iteration from `coefficients` instead of the
    /// zero vector — the incremental-refresh path seeds this with the
    /// previous model's coefficients from the [`madlib_engine::ModelCatalog`]
    /// so a refresh after a small append converges in a few cheap Newton
    /// steps.  Newton's method on the (strictly convex, ridge-stabilized)
    /// IRLS objective converges to the same optimum from any starting point,
    /// so the warm-started fit agrees with a cold start to within the
    /// convergence tolerance.  The length must match the feature width at
    /// fit time.
    #[must_use]
    pub fn with_initial_coefficients(mut self, coefficients: Vec<f64>) -> Self {
        self.initial_coefficients = Some(coefficients);
        self
    }

    /// Sets the maximum number of IRLS iterations.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the convergence tolerance on relative coefficient movement.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the ridge term added to the Hessian diagonal (stabilizes
    /// separable or collinear data).
    pub fn with_ridge(mut self, ridge: f64) -> Self {
        self.ridge = ridge;
        self
    }
}

impl Estimator for LogisticRegression {
    type Model = LogisticRegressionModel;

    /// Fits the model.  The session's database is used only to stage the
    /// (small) inter-iteration coefficient state, exactly as in the paper's
    /// Figure 3; the heavy per-iteration scan runs through the dataset's
    /// terminals (honouring its filter and executor).
    fn fit(&self, dataset: &Dataset<'_>, session: &Session) -> Result<LogisticRegressionModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        // Determine the feature width from the first (filter-surviving) row.
        let first = dataset
            .first_row()
            .map_err(MethodError::from)?
            .ok_or_else(|| MethodError::invalid_input("empty input table"))?;
        let width = first
            .get_named(dataset.schema(), &self.x_column)
            .map_err(MethodError::from)?
            .as_double_array()
            .map_err(MethodError::from)?
            .len();

        let initial = match &self.initial_coefficients {
            None => vec![0.0; width],
            Some(coefficients) if coefficients.len() == width => coefficients.clone(),
            Some(coefficients) => {
                return Err(MethodError::invalid_input(format!(
                    "initial coefficient length {} does not match feature width {width}",
                    coefficients.len()
                )))
            }
        };

        let config = IterationConfig {
            max_iterations: self.max_iterations,
            tolerance: self.tolerance,
            fail_on_max_iterations: false,
            state_table_name: "logregr_irls_state".to_owned(),
        };
        let controller = IterationController::new(session.database().clone(), config);

        let outcome = controller
            .run(
                initial,
                |beta, _iteration| {
                    let step = IrlsStep {
                        y_column: &self.y_column,
                        x_column: &self.x_column,
                        beta,
                    };
                    let (mut hessian, gradient, _ll, _n) = dataset.aggregate(&step)?;
                    for i in 0..width {
                        hessian.add_to(i, i, self.ridge);
                    }
                    let delta = symmetric_solve(&hessian, &gradient, 1e-12)
                        .map_err(madlib_engine::EngineError::aggregate)?;
                    Ok(beta
                        .iter()
                        .zip(delta.as_slice())
                        .map(|(b, d)| b + d)
                        .collect())
                },
                madlib_engine::iteration::l2_relative_convergence,
            )
            .map_err(MethodError::from)?;

        // One more pass at the optimum for the Fisher information (standard
        // errors) and the final log-likelihood.
        let step = IrlsStep {
            y_column: &self.y_column,
            x_column: &self.x_column,
            beta: &outcome.final_state,
        };
        let (mut hessian, _gradient, log_likelihood, num_rows) =
            dataset.aggregate(&step).map_err(MethodError::from)?;
        for i in 0..width {
            hessian.add_to(i, i, self.ridge);
        }
        let (covariance, _condition) =
            symmetric_inverse_with(&hessian, 1e-12, &mut EigenWorkspace::new())?;

        let normal = Normal::standard();
        let coef = outcome.final_state.clone();
        let mut std_err = Vec::with_capacity(width);
        let mut z_stats = Vec::with_capacity(width);
        let mut p_values = Vec::with_capacity(width);
        for (i, c) in coef.iter().enumerate() {
            let se = covariance.get(i, i).max(0.0).sqrt();
            std_err.push(se);
            let z = if se > 0.0 { c / se } else { f64::INFINITY };
            z_stats.push(z);
            p_values.push(if z.is_finite() {
                normal.two_sided_p_value(z)
            } else {
                0.0
            });
        }

        Ok(LogisticRegressionModel {
            coef,
            std_err,
            z_stats,
            p_values,
            log_likelihood,
            num_iterations: outcome.iterations,
            converged: outcome.converged,
            num_rows,
        })
    }
}

impl IncrementalEstimator for LogisticRegression {
    /// Fits over the whole table and catalogs the model under `name` so
    /// later refreshes can warm-start from it.
    fn train_incremental(
        &self,
        session: &Session,
        table: &str,
        name: &str,
    ) -> Result<LogisticRegressionModel> {
        let model = session.train(self, &session.dataset(table)?)?;
        session.database().models().register(name, model.clone());
        Ok(model)
    }

    /// Re-fits over the table's current contents, seeding IRLS from the
    /// previous model's coefficients in the catalog (cold start when `name`
    /// is unknown).  Converges to the same optimum as a cold fit within the
    /// solver's tolerance — not bit-identical — in far fewer Newton steps
    /// after a small append.
    fn refresh(
        &self,
        session: &Session,
        table: &str,
        name: &str,
    ) -> Result<LogisticRegressionModel> {
        let warm = match session
            .database()
            .models()
            .get::<LogisticRegressionModel>(name)
        {
            Ok(previous) => self
                .clone()
                .with_initial_coefficients(previous.coef.clone()),
            Err(_) => self.clone(),
        };
        let model = session.train(&warm, &session.dataset(table)?)?;
        session.database().models().register(name, model.clone());
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{labeled_point_schema, logistic_regression_data};
    use madlib_engine::{row, Table};

    fn fit(estimator: &LogisticRegression, table: &Table) -> Result<LogisticRegressionModel> {
        estimator.fit(
            &Dataset::from_table(table),
            &Session::in_memory(table.num_segments()).unwrap(),
        )
    }

    fn fit_on(table: &Table) -> LogisticRegressionModel {
        fit(&LogisticRegression::new("y", "x"), table).unwrap()
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }

    #[test]
    fn recovers_generator_coefficients() {
        let data = logistic_regression_data(4000, 3, 4, 17).unwrap();
        let model = fit_on(&data.table);
        assert!(model.converged);
        assert!(model.num_iterations <= 50);
        assert_eq!(model.num_rows, 4000);
        for (fitted, truth) in model.coef.iter().zip(&data.true_coefficients) {
            assert!(
                (fitted - truth).abs() < 0.4,
                "fitted {fitted} vs truth {truth}"
            );
        }
        // Log-likelihood of a fitted model must beat the null model.
        let null_ll = 4000.0 * (0.5_f64).ln();
        assert!(model.log_likelihood > null_ll);
    }

    #[test]
    fn partition_invariance() {
        let data = logistic_regression_data(800, 2, 1, 5).unwrap();
        let reference = fit_on(&data.table);
        for segs in [2, 5] {
            let t = data.table.repartition(segs).unwrap();
            let model = fit_on(&t);
            for (a, b) in model.coef.iter().zip(&reference.coef) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn prediction_and_significance() {
        let data = logistic_regression_data(3000, 2, 2, 23).unwrap();
        let model = fit_on(&data.table);
        // Predictions agree with the sign of the linear score under the true
        // model for confident points.
        let strongly_positive: Vec<f64> = data
            .true_coefficients
            .iter()
            .map(|c| c.signum() * 1.0)
            .collect();
        assert!(model.predict_probability(&strongly_positive).unwrap() > 0.5);
        assert!(model.predict(&strongly_positive).unwrap());
        assert!(model.predict_probability(&[0.0]).is_err());
        // Real features should be significant on 3000 rows.
        assert!(model.p_values.iter().all(|&p| p < 0.05));
        assert!(model.std_err.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn rejects_bad_labels_and_empty_input() {
        let mut bad = Table::new(labeled_point_schema(), 2).unwrap();
        bad.insert(row![2.0, vec![1.0]]).unwrap();
        assert!(fit(&LogisticRegression::new("y", "x"), &bad).is_err());

        let empty = Table::new(labeled_point_schema(), 2).unwrap();
        assert!(fit(&LogisticRegression::new("y", "x"), &empty).is_err());
    }

    #[test]
    fn separable_data_is_stabilized_by_ridge() {
        // Perfectly separable single feature.
        let mut t = Table::new(labeled_point_schema(), 2).unwrap();
        for i in 0..40 {
            let x = i as f64 - 20.0;
            let y = if x > 0.0 { 1.0 } else { 0.0 };
            t.insert(row![y, vec![1.0, x]]).unwrap();
        }
        let session = Session::in_memory(2).unwrap();
        let model = LogisticRegression::new("y", "x")
            .with_ridge(1e-3)
            .with_max_iterations(30)
            .fit(&Dataset::from_table(&t), &session)
            .unwrap();
        assert!(model.coef[1] > 0.0);
        assert!(model.coef.iter().all(|c| c.is_finite()));
        // Temp state tables are cleaned up.
        assert!(session.database().list_tables().is_empty());
    }

    #[test]
    fn builder_options() {
        let lr = LogisticRegression::new("y", "x")
            .with_max_iterations(5)
            .with_tolerance(1e-3)
            .with_ridge(0.1);
        let data = logistic_regression_data(200, 2, 2, 3).unwrap();
        let model = fit(&lr, &data.table).unwrap();
        assert!(model.num_iterations <= 5);
    }
}
