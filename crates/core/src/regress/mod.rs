//! Regression methods: ordinary least squares and binary logistic regression.

pub mod linear;
pub mod logistic;

pub use linear::{LinRegrState, LinearRegression, LinearRegressionModel};
pub use logistic::{LogisticRegression, LogisticRegressionModel};
