//! Ordinary least squares linear regression (paper Section 4.1).
//!
//! This is the paper's canonical single-pass aggregation example: the
//! transition state accumulates `XᵀX = Σ xᵢxᵢᵀ`, `Xᵀy = Σ xᵢyᵢ`, `Σy`, `Σy²`
//! and the row count; the merge function adds states element-wise; the final
//! function pseudo-inverts `XᵀX` and produces the coefficient vector together
//! with the diagnostics shown in the paper's psql example: `r2`, `std_err`,
//! `t_stats`, `p_values`, and `condition_no`.
//!
//! The transition function supports all three inner-loop
//! [`KernelGeneration`]s so that the benchmark harness can regenerate the
//! Figure 4 version comparison.

use crate::error::{MethodError, Result};
use crate::train::{
    fit_grouped_single_pass, refresh_single_pass, train_incremental_single_pass, Estimator,
    GroupedModels, IncrementalEstimator, Session,
};
use madlib_engine::aggregate::{extract_labeled_point, transition_chunk_by_rows};
use madlib_engine::dataset::Dataset;
use madlib_engine::{Aggregate, FinalizeScratch, Row, RowChunk, Schema};
use madlib_linalg::decomposition::{symmetric_inverse_with, EigenWorkspace};
use madlib_linalg::kernels::{
    needs_symmetrize, rank1_update, rank_k_update_lower, xty_update, KernelGeneration,
};
use madlib_linalg::{DenseMatrix, DenseVector};
use madlib_stats::StudentT;
use serde::{Deserialize, Serialize};

/// Transition state of the linear-regression aggregate: the Rust analogue of
/// the paper's `LinRegrTransitionState` (Listing 1).
#[derive(Debug, Clone, PartialEq)]
pub struct LinRegrState {
    /// Number of rows folded in so far.
    pub num_rows: u64,
    /// Width of the independent-variable vector (0 until the first row).
    pub width_of_x: usize,
    /// Σ y.
    pub y_sum: f64,
    /// Σ y².
    pub y_square_sum: f64,
    /// Σ xᵢ yᵢ.
    pub x_transp_y: DenseVector,
    /// Σ xᵢ xᵢᵀ (lower triangle only when the v0.3 kernel is in use).
    pub x_transp_x: DenseMatrix,
}

impl LinRegrState {
    fn empty() -> Self {
        Self {
            num_rows: 0,
            width_of_x: 0,
            y_sum: 0.0,
            y_square_sum: 0.0,
            x_transp_y: DenseVector::zeros(0),
            x_transp_x: DenseMatrix::zeros(0, 0),
        }
    }

    fn initialize(&mut self, width: usize) {
        self.width_of_x = width;
        self.x_transp_y = DenseVector::zeros(width);
        self.x_transp_x = DenseMatrix::zeros(width, width);
    }
}

/// The fitted model, mirroring the composite record returned by MADlib's
/// `linregr` aggregate in the paper's Section 4.1 example output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegressionModel {
    /// Fitted coefficients b̂.
    pub coef: Vec<f64>,
    /// Coefficient of determination R².
    pub r2: f64,
    /// Standard error of each coefficient.
    pub std_err: Vec<f64>,
    /// t statistic of each coefficient.
    pub t_stats: Vec<f64>,
    /// Two-sided p-value of each coefficient (Student-t with n − k df).
    pub p_values: Vec<f64>,
    /// Condition number of XᵀX.
    pub condition_no: f64,
    /// Number of observations used in the fit.
    pub num_rows: u64,
}

impl LinearRegressionModel {
    /// Predicts the response for a feature vector.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] when the feature length differs
    /// from the coefficient length.
    pub fn predict(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.coef.len() {
            return Err(MethodError::invalid_input(format!(
                "feature length {} does not match coefficient length {}",
                x.len(),
                self.coef.len()
            )));
        }
        Ok(self.coef.iter().zip(x).map(|(c, v)| c * v).sum())
    }
}

/// Ordinary-least-squares linear regression as a user-defined aggregate.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    y_column: String,
    x_column: String,
    generation: KernelGeneration,
}

impl LinearRegression {
    /// Creates the aggregate reading `y_column` (double) and `x_column`
    /// (double array) using the default (v0.3) kernel.
    pub fn new(y_column: impl Into<String>, x_column: impl Into<String>) -> Self {
        Self {
            y_column: y_column.into(),
            x_column: x_column.into(),
            generation: KernelGeneration::default(),
        }
    }

    /// Selects the inner-loop kernel generation (used by the version-
    /// comparison benchmark, Figure 4).
    pub fn with_kernel(mut self, generation: KernelGeneration) -> Self {
        self.generation = generation;
        self
    }

    /// The kernel generation in use.
    pub fn kernel(&self) -> KernelGeneration {
        self.generation
    }
}

impl Estimator for LinearRegression {
    type Model = LinearRegressionModel;

    /// Fits the model in one pass over the dataset's (filtered) rows — the
    /// paper's canonical single-pass aggregation.
    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<LinearRegressionModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        dataset.aggregate(self).map_err(MethodError::from)
    }

    /// Single-pass grouped training: one segment-parallel grouped scan fits
    /// every group's regression at once (Section 4.2's `grouping_cols`).
    fn fit_grouped(
        &self,
        dataset: &Dataset<'_>,
        _session: &Session,
    ) -> Result<GroupedModels<LinearRegressionModel>> {
        fit_grouped_single_pass(self, dataset)
    }
}

impl IncrementalEstimator for LinearRegression {
    /// Registers a materialized view of the `XᵀX`/`Xᵀy` transition states;
    /// appends to the source table refresh the model at O(appended) cost.
    fn train_incremental(
        &self,
        session: &Session,
        table: &str,
        name: &str,
    ) -> Result<LinearRegressionModel> {
        train_incremental_single_pass(self, session, table, name)
    }

    /// Absorbs only appended rows and re-finalizes — bit-identical to a full
    /// retrain (the aggregate is algebraic).
    fn refresh(&self, session: &Session, table: &str, name: &str) -> Result<LinearRegressionModel> {
        refresh_single_pass(self, session, table, name)
    }
}

impl Aggregate for LinearRegression {
    type State = LinRegrState;
    type Output = LinearRegressionModel;

    fn initial_state(&self) -> LinRegrState {
        LinRegrState::empty()
    }

    fn transition(
        &self,
        state: &mut LinRegrState,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        let (y, x) = extract_labeled_point(row, schema, &self.y_column, &self.x_column)?;
        if state.num_rows == 0 {
            // "The first row determines the number of independent variables"
            // (paper Listing 1).
            state.initialize(x.len());
        } else if x.len() != state.width_of_x {
            return Err(madlib_engine::EngineError::aggregate(format!(
                "inconsistent feature width: expected {}, found {}",
                state.width_of_x,
                x.len()
            )));
        }
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return Err(madlib_engine::EngineError::aggregate(
                "non-finite value in regression input",
            ));
        }
        state.num_rows += 1;
        state.y_sum += y;
        state.y_square_sum += y * y;
        for (acc, xi) in state.x_transp_y.as_mut_slice().iter_mut().zip(x) {
            *acc += xi * y;
        }
        rank1_update(self.generation, &mut state.x_transp_x, x);
        Ok(())
    }

    /// Chunk-at-a-time transition: the whole chunk's feature vectors arrive
    /// as one contiguous row-major block, so the `XᵀX` accumulation runs
    /// through the tiled rank-k kernel (touching the accumulator once per
    /// row-block instead of once per row) and `Xᵀy` / `Σy` / `Σy²` become
    /// straight slice loops.  Bit-identical to the per-row path by kernel
    /// contract.  Inputs the vectorized path cannot represent (NULLs,
    /// non-double columns, ragged widths) and the legacy kernel generations
    /// fall back to per-row transitions, which also reproduces the per-row
    /// error behaviour exactly.
    fn transition_chunk(
        &self,
        state: &mut LinRegrState,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        if self.generation != KernelGeneration::V03 || chunk.is_empty() {
            return transition_chunk_by_rows(self, state, chunk, schema);
        }
        let y_idx = schema.index_of(&self.y_column)?;
        let x_idx = schema.index_of(&self.x_column)?;
        let (y, x) = match (chunk.doubles(y_idx), chunk.double_arrays(x_idx)) {
            (Ok(y), Ok(x)) if !y.nulls.any_null() && !x.nulls().any_null() => (y, x),
            _ => return transition_chunk_by_rows(self, state, chunk, schema),
        };
        let Some(width) = x.uniform_width() else {
            return transition_chunk_by_rows(self, state, chunk, schema);
        };
        if state.num_rows == 0 {
            state.initialize(width);
        } else if width != state.width_of_x {
            return Err(madlib_engine::EngineError::aggregate(format!(
                "inconsistent feature width: expected {}, found {}",
                state.width_of_x, width
            )));
        }
        let xs = x.flat_values();
        if y.values.iter().any(|v| !v.is_finite()) || xs.iter().any(|v| !v.is_finite()) {
            return Err(madlib_engine::EngineError::aggregate(
                "non-finite value in regression input",
            ));
        }
        state.num_rows += chunk.len() as u64;
        for yv in y.values {
            state.y_sum += yv;
            state.y_square_sum += yv * yv;
        }
        xty_update(state.x_transp_y.as_mut_slice(), xs, y.values, width);
        rank_k_update_lower(&mut state.x_transp_x, xs, width);
        Ok(())
    }

    fn merge(&self, left: LinRegrState, right: LinRegrState) -> LinRegrState {
        if left.num_rows == 0 {
            return right;
        }
        if right.num_rows == 0 {
            return left;
        }
        let mut out = left;
        out.num_rows += right.num_rows;
        out.y_sum += right.y_sum;
        out.y_square_sum += right.y_square_sum;
        out.x_transp_y
            .add_assign(&right.x_transp_y)
            .expect("merged states have equal width");
        out.x_transp_x
            .add_assign(&right.x_transp_x)
            .expect("merged states have equal width");
        out
    }

    fn finalize(&self, state: LinRegrState) -> madlib_engine::Result<LinearRegressionModel> {
        self.finalize_with(state, &mut FinalizeScratch::none())
    }

    /// Workspace-reusing finalize: the eigendecomposition of `XᵀX` scratch
    /// buffers live in the per-worker [`FinalizeScratch`], so a grouped scan
    /// finalizing thousands of groups allocates the O(k²) working set once
    /// per worker instead of once per group.  The workspace never carries
    /// state between groups, so results are bit-identical to
    /// [`Aggregate::finalize`].
    fn finalize_with(
        &self,
        mut state: LinRegrState,
        scratch: &mut FinalizeScratch,
    ) -> madlib_engine::Result<LinearRegressionModel> {
        if state.num_rows == 0 {
            return Err(madlib_engine::EngineError::aggregate(
                "linear regression over empty input",
            ));
        }
        if needs_symmetrize(self.generation) {
            state
                .x_transp_x
                .symmetrize_from_lower()
                .map_err(madlib_engine::EngineError::aggregate)?;
        }
        let workspace = scratch.get_or_insert_with(EigenWorkspace::new);
        finalize_state_with(&state, workspace).map_err(madlib_engine::EngineError::aggregate)
    }
}

/// The final-function computation (paper Listing 2) with a caller-provided
/// eigendecomposition workspace.
fn finalize_state_with(
    state: &LinRegrState,
    workspace: &mut EigenWorkspace,
) -> Result<LinearRegressionModel> {
    let k = state.width_of_x;
    let n = state.num_rows as f64;
    let (inverse_of_x_transp_x, condition_no) =
        symmetric_inverse_with(&state.x_transp_x, 1e-10, workspace)?;
    let coef_vec = inverse_of_x_transp_x.matvec(&state.x_transp_y)?;
    let coef: Vec<f64> = coef_vec.as_slice().to_vec();

    // Residual sum of squares via the accumulated sufficient statistics:
    // RSS = Σy² − 2 b̂ᵀ(Xᵀy) + b̂ᵀ(XᵀX)b̂.
    let xtx_b = state.x_transp_x.matvec(&coef_vec)?;
    let bt_xtx_b = coef_vec.dot(&xtx_b)?;
    let bt_xty = coef_vec.dot(&state.x_transp_y)?;
    let rss = (state.y_square_sum - 2.0 * bt_xty + bt_xtx_b).max(0.0);
    // Total sum of squares about the mean.
    let tss = (state.y_square_sum - state.y_sum * state.y_sum / n).max(0.0);
    let r2 = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

    let df = n - k as f64;
    let sigma2 = if df > 0.0 { rss / df } else { f64::NAN };
    let mut std_err = Vec::with_capacity(k);
    let mut t_stats = Vec::with_capacity(k);
    let mut p_values = Vec::with_capacity(k);
    let t_dist = (df > 0.0).then(|| StudentT::new(df));
    #[allow(clippy::needless_range_loop)] // i indexes the matrix diagonal and coef together
    for i in 0..k {
        let se = (sigma2 * inverse_of_x_transp_x.get(i, i)).max(0.0).sqrt();
        std_err.push(se);
        let t = if se > 0.0 {
            coef[i] / se
        } else {
            f64::INFINITY
        };
        t_stats.push(t);
        let p = match &t_dist {
            Some(dist) if t.is_finite() => dist.two_sided_p_value(t),
            _ => 0.0,
        };
        p_values.push(p);
    }

    Ok(LinearRegressionModel {
        coef,
        r2,
        std_err,
        t_stats,
        p_values,
        condition_no,
        num_rows: state.num_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{labeled_point_schema, linear_regression_data};
    use madlib_engine::{row, Table, Value};

    /// Uniform-signature fit over a borrowed table (tests only need the
    /// default executor; the session's database is unused by single-pass
    /// aggregates).
    fn fit(estimator: &LinearRegression, table: &Table) -> Result<LinearRegressionModel> {
        estimator.fit(
            &Dataset::from_table(table),
            &Session::in_memory(table.num_segments()).unwrap(),
        )
    }

    /// Builds the tiny dataset whose fit is shown in the paper's psql
    /// example: y ≈ 1.73 + 2.24·x  (we use our own ground truth instead).
    fn small_table(segments: usize) -> Table {
        let mut t = Table::new(labeled_point_schema(), segments).unwrap();
        // y = 3 + 2*x exactly (intercept via constant first feature).
        for i in 0..20 {
            let x = i as f64 * 0.5;
            t.insert(row![3.0 + 2.0 * x, vec![1.0, x]]).unwrap();
        }
        t
    }

    #[test]
    fn exact_fit_on_noiseless_data() {
        let table = small_table(4);
        let model = fit(&LinearRegression::new("y", "x"), &table).unwrap();
        assert!((model.coef[0] - 3.0).abs() < 1e-8);
        assert!((model.coef[1] - 2.0).abs() < 1e-8);
        assert!((model.r2 - 1.0).abs() < 1e-9);
        assert_eq!(model.num_rows, 20);
        assert!(model.condition_no.is_finite());
        // Perfect fit: residual variance ~0, p-values ~0.
        assert!(model.p_values.iter().all(|&p| p < 1e-6));
        assert!((model.predict(&[1.0, 4.0]).unwrap() - 11.0).abs() < 1e-6);
        assert!(model.predict(&[1.0]).is_err());
    }

    #[test]
    fn recovers_generator_coefficients() {
        let data = linear_regression_data(2000, 6, 0.05, 4, 99).unwrap();
        let model = fit(&LinearRegression::new("y", "x"), &data.table).unwrap();
        for (fitted, truth) in model.coef.iter().zip(&data.true_coefficients) {
            assert!(
                (fitted - truth).abs() < 0.05,
                "fitted {fitted} vs truth {truth}"
            );
        }
        assert!(model.r2 > 0.95);
    }

    #[test]
    fn partition_invariance() {
        let data = linear_regression_data(500, 4, 0.1, 1, 7).unwrap();
        let reference = fit(&LinearRegression::new("y", "x"), &data.table).unwrap();
        for segs in [2, 3, 8] {
            let t = data.table.repartition(segs).unwrap();
            let model = fit(&LinearRegression::new("y", "x"), &t).unwrap();
            for (a, b) in model.coef.iter().zip(&reference.coef) {
                assert!((a - b).abs() < 1e-9);
            }
            assert!((model.r2 - reference.r2).abs() < 1e-9);
        }
    }

    #[test]
    fn all_kernel_generations_agree() {
        let data = linear_regression_data(300, 5, 0.2, 3, 21).unwrap();
        let reference = fit(
            &LinearRegression::new("y", "x").with_kernel(KernelGeneration::V03),
            &data.table,
        )
        .unwrap();
        for gen in [KernelGeneration::V01Alpha, KernelGeneration::V021Beta] {
            let model = fit(
                &LinearRegression::new("y", "x").with_kernel(gen),
                &data.table,
            )
            .unwrap();
            assert_eq!(model.num_rows, reference.num_rows);
            for (a, b) in model.coef.iter().zip(&reference.coef) {
                assert!((a - b).abs() < 1e-8, "kernel {gen:?} disagrees");
            }
        }
        assert_eq!(
            LinearRegression::new("y", "x")
                .with_kernel(KernelGeneration::V01Alpha)
                .kernel(),
            KernelGeneration::V01Alpha
        );
    }

    #[test]
    fn statistical_outputs_are_sensible() {
        // Noisy data: p-value of a junk feature should be large, of a real
        // feature small.
        let mut t = Table::new(labeled_point_schema(), 2).unwrap();
        let mut rng_state = 12345u64;
        let mut next = || {
            // Tiny xorshift for deterministic pseudo-noise without rand here.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..400 {
            let x1 = (i as f64 / 400.0) - 0.5;
            let junk = next();
            let y = 4.0 * x1 + 0.3 * next();
            t.insert(row![y, vec![1.0, x1, junk]]).unwrap();
        }
        let model = fit(&LinearRegression::new("y", "x"), &t).unwrap();
        assert!(
            model.p_values[1] < 1e-6,
            "real feature should be significant"
        );
        assert!(
            model.p_values[2] > 0.01,
            "junk feature should not be strongly significant"
        );
        assert!(model.std_err.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn error_cases() {
        let empty = Table::new(labeled_point_schema(), 2).unwrap();
        assert!(fit(&LinearRegression::new("y", "x"), &empty).is_err());

        // Inconsistent widths.
        let mut bad = Table::new(labeled_point_schema(), 1).unwrap();
        bad.insert(row![1.0, vec![1.0, 2.0]]).unwrap();
        bad.insert(row![1.0, vec![1.0]]).unwrap();
        assert!(fit(&LinearRegression::new("y", "x"), &bad).is_err());

        // Non-finite input.
        let mut nan = Table::new(labeled_point_schema(), 1).unwrap();
        nan.insert(Row::new(vec![
            Value::Double(f64::NAN),
            Value::DoubleArray(vec![1.0]),
        ]))
        .unwrap();
        assert!(fit(&LinearRegression::new("y", "x"), &nan).is_err());

        // Missing column.
        let data = small_table(1);
        assert!(fit(&LinearRegression::new("nope", "x"), &data).is_err());
    }

    #[test]
    fn rank_deficient_input_uses_pseudo_inverse() {
        // Duplicate column: XᵀX is singular; the pseudo-inverse path should
        // still produce a finite fit (as the paper notes, full rank is not a
        // requirement for MADlib).
        let mut t = Table::new(labeled_point_schema(), 2).unwrap();
        for i in 0..50 {
            let x = i as f64 * 0.1;
            t.insert(row![2.0 * x, vec![x, x]]).unwrap();
        }
        let model = fit(&LinearRegression::new("y", "x"), &t).unwrap();
        assert_eq!(model.condition_no, f64::INFINITY);
        // Predictions are still exact even though individual coefficients are
        // not identifiable: c0 + c1 must equal 2.
        assert!((model.coef[0] + model.coef[1] - 2.0).abs() < 1e-6);
        assert!((model.r2 - 1.0).abs() < 1e-9);
    }
}
