//! Matrix-factorization methods.

pub mod lowrank;

pub use lowrank::{LowRankFactorization, LowRankModel};
