//! Matrix-factorization methods.
//!
//! [`LowRankFactorization`] implements [`crate::train::Estimator`], so
//! factorizations train through `Session::train` / `Session::train_grouped`
//! (per-tenant recommendation models) like every other method.

pub mod lowrank;

pub use lowrank::{LowRankFactorization, LowRankModel};
