//! Low-rank (SVD-style) matrix factorization.
//!
//! Table 1 lists "SVD Matrix Factorization" and Table 2's "Recommendation"
//! objective minimizes `Σ (Lᵢᵀ Rⱼ − Mᵢⱼ)² + µ‖L,R‖²` — the incomplete-matrix
//! low-rank factorization used for collaborative filtering.  We implement the
//! same model trained with stochastic gradient descent over a ratings table
//! `(user_id, item_id, rating)`, which is also how the MADlib `svd_mf` module
//! approaches large sparse inputs.

use crate::error::{MethodError, Result};
use crate::train::{Estimator, Session};
use madlib_engine::chunk::ColumnChunk;
use madlib_engine::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fitted low-rank factorization `M ≈ L Rᵀ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowRankModel {
    /// Left (user) factors, one row per user id `0..num_users`.
    pub user_factors: Vec<Vec<f64>>,
    /// Right (item) factors, one row per item id `0..num_items`.
    pub item_factors: Vec<Vec<f64>>,
    /// Rank of the factorization.
    pub rank: usize,
    /// Root-mean-square error over the observed entries at the end of
    /// training.
    pub train_rmse: f64,
    /// Number of observed ratings used.
    pub num_ratings: usize,
    /// Epochs run.
    pub epochs: usize,
}

impl LowRankModel {
    /// Predicted rating for a (user, item) pair.
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidInput`] for ids outside the training
    /// range.
    pub fn predict(&self, user: usize, item: usize) -> Result<f64> {
        let u = self
            .user_factors
            .get(user)
            .ok_or_else(|| MethodError::invalid_input(format!("unknown user id {user}")))?;
        let v = self
            .item_factors
            .get(item)
            .ok_or_else(|| MethodError::invalid_input(format!("unknown item id {item}")))?;
        Ok(u.iter().zip(v).map(|(a, b)| a * b).sum())
    }
}

/// SGD trainer for the low-rank factorization.
#[derive(Debug, Clone)]
pub struct LowRankFactorization {
    user_column: String,
    item_column: String,
    rating_column: String,
    rank: usize,
    learning_rate: f64,
    regularization: f64,
    epochs: usize,
    seed: u64,
}

impl LowRankFactorization {
    /// Creates a trainer with rank `rank` and sensible defaults
    /// (learning rate 0.02, regularization 0.05, 30 epochs).
    ///
    /// # Errors
    /// Returns [`MethodError::InvalidParameter`] when `rank == 0`.
    pub fn new(
        user_column: impl Into<String>,
        item_column: impl Into<String>,
        rating_column: impl Into<String>,
        rank: usize,
    ) -> Result<Self> {
        if rank == 0 {
            return Err(MethodError::invalid_parameter("rank", "must be positive"));
        }
        Ok(Self {
            user_column: user_column.into(),
            item_column: item_column.into(),
            rating_column: rating_column.into(),
            rank,
            learning_rate: 0.02,
            regularization: 0.05,
            epochs: 30,
            seed: 0,
        })
    }

    /// Sets the SGD learning rate.
    pub fn with_learning_rate(mut self, learning_rate: f64) -> Self {
        self.learning_rate = learning_rate;
        self
    }

    /// Sets the L2 regularization µ.
    pub fn with_regularization(mut self, regularization: f64) -> Self {
        self.regularization = regularization;
        self
    }

    /// Sets the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the RNG seed (initial factors + shuffling).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Extracts the `(user, item, rating)` triples of one column-major chunk.
    ///
    /// The fast path reads the three contiguous column buffers directly
    /// (`bigint`, `bigint`, `double precision`, no NULLs); anything else —
    /// NULL-bearing chunks, unexpected column types — falls back to
    /// materialized per-row access, which raises exactly the errors the
    /// legacy row loop did.
    fn chunk_triples(
        &self,
        chunk: &madlib_engine::RowChunk,
        schema: &madlib_engine::Schema,
    ) -> madlib_engine::Result<Vec<(usize, usize, f64)>> {
        let user_idx = schema.index_of(&self.user_column)?;
        let item_idx = schema.index_of(&self.item_column)?;
        let rating_idx = schema.index_of(&self.rating_column)?;
        let mut out = Vec::with_capacity(chunk.len());
        if let (
            ColumnChunk::Int {
                values: users,
                nulls: user_nulls,
            },
            ColumnChunk::Int {
                values: items,
                nulls: item_nulls,
            },
            ColumnChunk::Double {
                values: ratings,
                nulls: rating_nulls,
            },
        ) = (
            chunk.column(user_idx),
            chunk.column(item_idx),
            chunk.column(rating_idx),
        ) {
            if !user_nulls.any_null() && !item_nulls.any_null() && !rating_nulls.any_null() {
                for ((&u, &i), &r) in users.iter().zip(items).zip(ratings) {
                    if u < 0 || i < 0 {
                        return Err(madlib_engine::EngineError::aggregate(
                            "user/item ids must be non-negative",
                        ));
                    }
                    out.push((u as usize, i as usize, r));
                }
                return Ok(out);
            }
        }
        for row in 0..chunk.len() {
            let u = chunk.value(row, user_idx).as_int()?;
            let i = chunk.value(row, item_idx).as_int()?;
            let r = chunk.value(row, rating_idx).as_double()?;
            if u < 0 || i < 0 {
                return Err(madlib_engine::EngineError::aggregate(
                    "user/item ids must be non-negative",
                ));
            }
            out.push((u as usize, i as usize, r));
        }
        Ok(out)
    }
}

impl Estimator for LowRankFactorization {
    type Model = LowRankModel;

    /// Fits the factorization over the dataset's (filtered) ratings rows.
    /// The triple-loading pass rides the chunked scan pipeline; the SGD
    /// epochs run in-core, seeded, over the collected triples in scan order.
    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> Result<LowRankModel> {
        dataset
            .executor()
            .validate_input(dataset.table(), true)
            .map_err(MethodError::from)?;
        let triples: Vec<(usize, usize, f64)> = dataset
            .map_chunks(|chunk, schema| self.chunk_triples(chunk, schema))
            .map_err(MethodError::from)?;
        if triples.is_empty() {
            return Err(MethodError::invalid_input("no ratings in input table"));
        }
        let num_users = triples.iter().map(|t| t.0).max().unwrap_or(0) + 1;
        let num_items = triples.iter().map(|t| t.1).max().unwrap_or(0) + 1;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = 1.0 / (self.rank as f64).sqrt();
        let mut user_factors: Vec<Vec<f64>> = (0..num_users)
            .map(|_| {
                (0..self.rank)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect()
            })
            .collect();
        let mut item_factors: Vec<Vec<f64>> = (0..num_items)
            .map(|_| {
                (0..self.rank)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect()
            })
            .collect();

        let mut order: Vec<usize> = (0..triples.len()).collect();
        for _epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let (u, i, rating) = triples[idx];
                let prediction: f64 = user_factors[u]
                    .iter()
                    .zip(&item_factors[i])
                    .map(|(a, b)| a * b)
                    .sum();
                let err = rating - prediction;
                for f in 0..self.rank {
                    let uf = user_factors[u][f];
                    let vf = item_factors[i][f];
                    user_factors[u][f] +=
                        self.learning_rate * (err * vf - self.regularization * uf);
                    item_factors[i][f] +=
                        self.learning_rate * (err * uf - self.regularization * vf);
                }
            }
        }

        let sse: f64 = triples
            .iter()
            .map(|&(u, i, r)| {
                let p: f64 = user_factors[u]
                    .iter()
                    .zip(&item_factors[i])
                    .map(|(a, b)| a * b)
                    .sum();
                (r - p) * (r - p)
            })
            .sum();
        let train_rmse = (sse / triples.len() as f64).sqrt();

        Ok(LowRankModel {
            user_factors,
            item_factors,
            rank: self.rank,
            train_rmse,
            num_ratings: triples.len(),
            epochs: self.epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::ratings_data;
    use madlib_engine::Table;

    fn fit(estimator: &LowRankFactorization, table: &Table) -> Result<LowRankModel> {
        estimator.fit(
            &Dataset::from_table(table),
            &Session::in_memory(table.num_segments()).unwrap(),
        )
    }

    #[test]
    fn reconstructs_low_rank_matrix() {
        let table = ratings_data(30, 25, 2, 0.6, 3, 42).unwrap();
        let estimator = LowRankFactorization::new("user_id", "item_id", "rating", 4)
            .unwrap()
            .with_epochs(60)
            .with_seed(1);
        let model = fit(&estimator, &table).unwrap();
        assert_eq!(model.rank, 4);
        assert!(model.num_ratings > 100);
        assert!(
            model.train_rmse < 0.15,
            "rank-4 fit of a rank-2 matrix should be accurate, rmse={}",
            model.train_rmse
        );
        // Predictions on observed entries should be close.
        let rows = table.collect_rows();
        let row = &rows[0];
        let u = row.get(0).as_int().unwrap() as usize;
        let i = row.get(1).as_int().unwrap() as usize;
        let r = row.get(2).as_double().unwrap();
        assert!((model.predict(u, i).unwrap() - r).abs() < 0.5);
    }

    #[test]
    fn unknown_ids_are_rejected_in_predict() {
        let table = ratings_data(5, 5, 1, 0.9, 1, 3).unwrap();
        let estimator = LowRankFactorization::new("user_id", "item_id", "rating", 2)
            .unwrap()
            .with_epochs(5);
        let model = fit(&estimator, &table).unwrap();
        assert!(model.predict(0, 0).is_ok());
        assert!(model.predict(1000, 0).is_err());
        assert!(model.predict(0, 1000).is_err());
    }

    #[test]
    fn deterministic_with_seed_and_validates_parameters() {
        assert!(LowRankFactorization::new("u", "i", "r", 0).is_err());
        let table = ratings_data(8, 8, 2, 0.8, 2, 9).unwrap();
        let estimator = LowRankFactorization::new("user_id", "item_id", "rating", 3)
            .unwrap()
            .with_seed(5)
            .with_epochs(10);
        let a = fit(&estimator, &table).unwrap();
        let b = fit(&estimator, &table).unwrap();
        assert_eq!(a.user_factors, b.user_factors);
        assert_eq!(a.item_factors, b.item_factors);
    }

    #[test]
    fn negative_ids_are_rejected() {
        let schema = madlib_engine::Schema::new(vec![
            madlib_engine::Column::new("user_id", madlib_engine::ColumnType::Int),
            madlib_engine::Column::new("item_id", madlib_engine::ColumnType::Int),
            madlib_engine::Column::new("rating", madlib_engine::ColumnType::Double),
        ]);
        let mut table = Table::new(schema, 1).unwrap();
        table.insert(madlib_engine::row![-1i64, 0i64, 3.0]).unwrap();
        let estimator = LowRankFactorization::new("user_id", "item_id", "rating", 2).unwrap();
        assert!(fit(&estimator, &table).is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        let empty = madlib_engine::Table::new(
            madlib_engine::Schema::new(vec![
                madlib_engine::Column::new("user_id", madlib_engine::ColumnType::Int),
                madlib_engine::Column::new("item_id", madlib_engine::ColumnType::Int),
                madlib_engine::Column::new("rating", madlib_engine::ColumnType::Double),
            ]),
            2,
        )
        .unwrap();
        let estimator = LowRankFactorization::new("user_id", "item_id", "rating", 2).unwrap();
        assert!(fit(&estimator, &empty).is_err());
    }
}
