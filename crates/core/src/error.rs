//! Error type shared by all methods.

use madlib_engine::EngineError;
use madlib_linalg::LinalgError;
use std::fmt;

/// Convenience alias for method results.
pub type Result<T> = std::result::Result<T, MethodError>;

/// Errors produced by the method library.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodError {
    /// The underlying engine reported an error (missing table/column, type
    /// mismatch, non-convergent driver, ...).
    Engine(EngineError),
    /// A linear-algebra routine failed (singular matrix, shape mismatch, ...).
    Linalg(LinalgError),
    /// The input data is unusable for this method (empty, degenerate,
    /// inconsistent dimensions across rows, ...).
    InvalidInput {
        /// Description of the problem.
        message: String,
    },
    /// A hyper-parameter is out of range.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// An iterative method failed to converge and was configured to treat
    /// that as an error.
    DidNotConverge {
        /// Iterations completed.
        iterations: usize,
        /// Last observed convergence measure.
        last_change: f64,
    },
}

impl MethodError {
    /// Constructs an [`MethodError::InvalidInput`].
    pub fn invalid_input(message: impl Into<String>) -> Self {
        MethodError::InvalidInput {
            message: message.into(),
        }
    }

    /// Constructs an [`MethodError::InvalidParameter`].
    pub fn invalid_parameter(parameter: &'static str, message: impl Into<String>) -> Self {
        MethodError::InvalidParameter {
            parameter,
            message: message.into(),
        }
    }
}

impl fmt::Display for MethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodError::Engine(e) => write!(f, "engine error: {e}"),
            MethodError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            MethodError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            MethodError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter {parameter}: {message}")
            }
            MethodError::DidNotConverge {
                iterations,
                last_change,
            } => write!(
                f,
                "did not converge after {iterations} iterations (last change {last_change:e})"
            ),
        }
    }
}

impl std::error::Error for MethodError {}

impl From<EngineError> for MethodError {
    fn from(e: EngineError) -> Self {
        MethodError::Engine(e)
    }
}

impl From<LinalgError> for MethodError {
    fn from(e: LinalgError) -> Self {
        MethodError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MethodError = EngineError::TableNotFound { name: "t".into() }.into();
        assert!(e.to_string().contains("engine error"));
        let e: MethodError = LinalgError::EmptyInput { operation: "x" }.into();
        assert!(e.to_string().contains("linear algebra"));
        assert!(MethodError::invalid_input("no rows")
            .to_string()
            .contains("no rows"));
        assert!(MethodError::invalid_parameter("k", "must be positive")
            .to_string()
            .contains("k"));
        assert!(MethodError::DidNotConverge {
            iterations: 7,
            last_change: 0.5
        }
        .to_string()
        .contains('7'));
    }
}
