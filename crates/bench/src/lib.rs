//! # madlib-bench
//!
//! Workload generators and measurement helpers shared by the Criterion
//! benches and the `repro` binary, which together regenerate every table and
//! figure in the MADlib paper's evaluation:
//!
//! * **Figure 4 / Figure 5** — linear-regression execution times swept over
//!   the number of segments, the number of independent variables, and the
//!   three inner-loop generations (v0.1alpha / v0.2.1beta / v0.3).
//! * **Table 1** — the method inventory, exercised end-to-end.
//! * **Table 2** — the models implemented on the SGD framework.
//! * **Table 3** — the statistical text-analysis methods.
//!
//! The paper ran on a 24-core Greenplum cluster with 10 M-row tables; the
//! default sizes here are scaled down so the full reproduction runs on a
//! laptop in minutes, and the `repro` binary accepts `--full` to sweep the
//! paper's original parameter grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use madlib_core::datasets::linear_regression_data;
use madlib_core::regress::linear::LinRegrState;
use madlib_core::regress::{LinearRegression, LinearRegressionModel};
use madlib_core::train::{Estimator, Session};
use madlib_core::{FeatureScorer, Predictor};
use madlib_engine::{Aggregate, Dataset, ExecutionMode, Executor, Row, RowChunk, Schema, Table};
use madlib_linalg::kernels::KernelGeneration;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured cell of the Figure 4 table.
#[derive(Debug, Clone, PartialEq)]
pub struct LinregrMeasurement {
    /// Number of segments (parallel workers).
    pub segments: usize,
    /// Number of independent variables.
    pub variables: usize,
    /// Number of rows.
    pub rows: usize,
    /// Inner-loop generation measured.
    pub generation: KernelGeneration,
    /// Wall-clock execution time of the aggregate.
    pub elapsed: Duration,
}

/// Generates the dense regression table used by the Figure 4/5 experiments.
///
/// # Panics
/// Panics if generation fails (invalid sizes), which the callers never pass.
pub fn figure4_table(rows: usize, variables: usize, segments: usize, seed: u64) -> Table {
    linear_regression_data(rows, variables, 0.1, segments, seed)
        .expect("workload generation cannot fail for positive sizes")
        .table
}

/// Runs the linear-regression aggregate once on the default (chunk-at-a-time)
/// executor and reports the wall-clock time.
///
/// # Panics
/// Panics if the fit fails, which cannot happen for the generated workloads.
pub fn measure_linregr(table: &Table, generation: KernelGeneration) -> Duration {
    measure_linregr_mode(table, generation, ExecutionMode::Chunked)
}

/// Runs the linear-regression aggregate once under an explicit execution
/// mode — the row-path vs. chunk-path axis of the vectorization comparison.
///
/// # Panics
/// Panics if the fit fails, which cannot happen for the generated workloads.
pub fn measure_linregr_mode(
    table: &Table,
    generation: KernelGeneration,
    mode: ExecutionMode,
) -> Duration {
    let executor = Executor::new().with_mode(mode);
    let session = Session::in_memory(1).expect("positive segment count");
    let regression = LinearRegression::new("y", "x").with_kernel(generation);
    let start = Instant::now();
    let model = regression
        .fit(
            &Dataset::from_table(table).with_executor(executor),
            &session,
        )
        .expect("linear regression over generated data cannot fail");
    let elapsed = start.elapsed();
    // Keep the optimizer honest.
    assert!(model.coef.iter().all(|c| c.is_finite()));
    elapsed
}

/// Scan-only view of the linear-regression aggregate: same transition state,
/// same per-row and per-chunk inner loops, but a trivial final function (the
/// per-fit eigendecomposition of `XᵀX` is O(width³) and mode-independent, so
/// it would drown the transition comparison at large widths — the quantity
/// the paper's Figure 4 isolates is precisely the inner loop).
struct LinregrScan(LinearRegression);

impl Aggregate for LinregrScan {
    type State = LinRegrState;
    type Output = u64;

    fn initial_state(&self) -> LinRegrState {
        self.0.initial_state()
    }

    fn transition(
        &self,
        state: &mut LinRegrState,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        self.0.transition(state, row, schema)
    }

    fn transition_chunk(
        &self,
        state: &mut LinRegrState,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        self.0.transition_chunk(state, chunk, schema)
    }

    fn merge(&self, left: LinRegrState, right: LinRegrState) -> LinRegrState {
        self.0.merge(left, right)
    }

    fn finalize(&self, state: LinRegrState) -> madlib_engine::Result<u64> {
        Ok(state.num_rows)
    }
}

/// Times one scan (transition + merge, trivial finalize) of the
/// linear-regression aggregate under the given execution mode.
///
/// # Panics
/// Panics if the scan fails, which cannot happen for generated workloads.
pub fn measure_linregr_scan(table: &Table, mode: ExecutionMode) -> Duration {
    let executor = Executor::new().with_mode(mode);
    let scan = LinregrScan(LinearRegression::new("y", "x"));
    let start = Instant::now();
    let rows = executor
        .aggregate(table, &scan)
        .expect("linregr scan over generated data cannot fail");
    let elapsed = start.elapsed();
    assert_eq!(rows as usize, table.row_count());
    elapsed
}

/// One cell of the row-path vs. chunk-path comparison: median-of-`samples`
/// scan time per mode for the v0.3 kernel at the given table shape.
///
/// Caveat on interpreting the ratio: since storage is now column-major, the
/// row-at-a-time baseline materializes each row from chunks (one `Vec<Value>`
/// plus a feature-array clone per row) — overhead the original row-storage
/// engine did not pay.  At the 1 000-wide acceptance shape that
/// materialization is noise (an 8 KB copy against a 500 k-FLOP walk over a
/// multi-megabyte accumulator, so the gap there is genuinely the tiled
/// kernel), but at small widths it is a visible part of the measured ratio.
///
/// # Panics
/// Panics when `samples == 0` or workload generation fails.
pub fn measure_row_vs_chunk(
    rows: usize,
    variables: usize,
    segments: usize,
    samples: usize,
) -> (Duration, Duration) {
    assert!(samples > 0, "need at least one sample");
    let table = figure4_table(rows, variables, segments, 42 + variables as u64);
    let median = |mode: ExecutionMode| -> Duration {
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| measure_linregr_scan(&table, mode))
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    (
        median(ExecutionMode::RowAtATime),
        median(ExecutionMode::Chunked),
    )
}

/// One measured cell of the grouped row-path vs. chunk-path comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedMeasurement {
    /// Number of rows.
    pub rows: usize,
    /// Number of independent variables.
    pub variables: usize,
    /// Number of distinct groups.
    pub groups: usize,
    /// Number of segments.
    pub segments: usize,
    /// Median wall-clock time of the PR-1-style row loop (single-threaded,
    /// per-row transitions).
    pub row_path: Duration,
    /// Median wall-clock time of the segment-parallel chunked grouped scan.
    pub chunk_path: Duration,
}

impl GroupedMeasurement {
    /// Chunk-path speedup over the row-loop baseline.
    pub fn speedup(&self) -> f64 {
        self.row_path.as_secs_f64() / self.chunk_path.as_secs_f64()
    }
}

/// Generates the grouped regression table used by the grouped sweep: the
/// Figure 4 workload plus a leading `grp` bigint column cycling over
/// `groups` distinct keys, so each group is its own (smaller) regression
/// problem — the paper's Section 4.2 "one model per group in a single pass"
/// shape.  The table is hash-distributed on `grp` (Greenplum's
/// `DISTRIBUTED BY` for a grouped workload), which co-locates each group's
/// rows in one segment.
///
/// # Panics
/// Panics if generation fails (invalid sizes), which the callers never pass.
pub fn grouped_regression_table(
    rows: usize,
    variables: usize,
    groups: usize,
    segments: usize,
    seed: u64,
) -> Table {
    use madlib_engine::table::Distribution;
    use madlib_engine::{Column, ColumnType, Value};
    assert!(groups > 0, "need at least one group");
    let base = figure4_table(rows, variables, 1, seed);
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table =
        Table::with_distribution(schema, segments, Distribution::HashColumn("grp".into()))
            .expect("positive segment count");
    for (i, row) in base.iter().enumerate() {
        let mut values = Vec::with_capacity(3);
        values.push(Value::Int((i % groups) as i64));
        values.extend(row.into_values());
        table
            .insert(Row::new(values))
            .expect("generated rows match the schema");
    }
    table
}

/// Times one grouped scan (transition + merge per group, trivial finalize)
/// of the linear-regression aggregate under the given executor.
///
/// # Panics
/// Panics if the scan fails or loses rows, which cannot happen for the
/// generated workloads.
pub fn measure_grouped_linregr_scan(table: &Table, executor: &Executor, groups: usize) -> Duration {
    let scan = LinregrScan(LinearRegression::new("y", "x"));
    let start = Instant::now();
    let result = Dataset::from_table(table)
        .with_executor(*executor)
        .group_by(["grp"])
        .aggregate_per_group(&scan)
        .expect("grouped linregr scan over generated data cannot fail");
    let elapsed = start.elapsed();
    assert_eq!(result.len(), groups.min(table.row_count()));
    let total: u64 = result.iter().map(|(_, rows)| rows).sum();
    assert_eq!(total as usize, table.row_count());
    elapsed
}

/// Times the PR-1 grouped row loop verbatim: a single coordinator thread
/// walks every segment row by row, keys the state map by the group value's
/// *display string* (the old `Value::to_string()` scheme, with its
/// allocation per row), and feeds per-row transitions.  This is the
/// baseline the chunked grouped path is measured against.
///
/// # Panics
/// Panics if a transition fails, which cannot happen for generated
/// workloads.
pub fn measure_grouped_legacy_row_loop(table: &Table, groups: usize) -> Duration {
    use madlib_engine::Value;
    use std::collections::HashMap;
    let scan = LinregrScan(LinearRegression::new("y", "x"));
    let schema = table.schema();
    let group_idx = schema.index_of("grp").expect("grp column exists");
    let start = Instant::now();
    let mut states: HashMap<String, (Value, LinRegrState)> = HashMap::new();
    for seg in 0..table.num_segments() {
        for row in table.segment(seg).iter() {
            let key_value = row.get(group_idx).clone();
            let key = key_value.to_string();
            let entry = states
                .entry(key)
                .or_insert_with(|| (key_value.clone(), scan.initial_state()));
            scan.transition(&mut entry.1, &row, schema)
                .expect("transition over generated data cannot fail");
        }
    }
    let total: u64 = states.values().map(|(_, s)| s.num_rows).sum();
    let elapsed = start.elapsed();
    assert_eq!(total as usize, table.row_count());
    assert_eq!(states.len(), groups.min(table.row_count()));
    elapsed
}

/// Generates the composite-key variant of the grouped workload: the
/// [`grouped_regression_table`] shape plus a second `sub` bigint grouping
/// column, so `group_by(["grp", "sub"])` yields `groups × subgroups`
/// distinct composite keys.  Hash-distributed on `grp`, as before.
///
/// # Panics
/// Panics if generation fails (invalid sizes), which the callers never pass.
pub fn grouped_composite_regression_table(
    rows: usize,
    variables: usize,
    groups: usize,
    subgroups: usize,
    segments: usize,
    seed: u64,
) -> Table {
    use madlib_engine::table::Distribution;
    use madlib_engine::{Column, ColumnType, Value};
    assert!(groups > 0 && subgroups > 0, "need at least one group");
    let base = figure4_table(rows, variables, 1, seed);
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("sub", ColumnType::Int),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table =
        Table::with_distribution(schema, segments, Distribution::HashColumn("grp".into()))
            .expect("positive segment count");
    for (i, row) in base.iter().enumerate() {
        let mut values = Vec::with_capacity(4);
        values.push(Value::Int((i % groups) as i64));
        values.push(Value::Int(((i / groups) % subgroups) as i64));
        values.extend(row.into_values());
        table
            .insert(Row::new(values))
            .expect("generated rows match the schema");
    }
    table
}

/// Times one *composite-key* grouped scan — `group_by(["grp", "sub"])` with
/// the linear-regression transition — under the given executor, and checks
/// that no rows were lost across the composite groups.
///
/// # Panics
/// Panics if the scan fails or loses rows, which cannot happen for the
/// generated workloads.
pub fn measure_grouped_composite_scan(
    table: &Table,
    executor: &Executor,
    expected_groups: usize,
) -> Duration {
    let scan = LinregrScan(LinearRegression::new("y", "x"));
    let start = Instant::now();
    let result = Dataset::from_table(table)
        .with_executor(*executor)
        .group_by(["grp", "sub"])
        .aggregate_per_group(&scan)
        .expect("composite grouped scan over generated data cannot fail");
    let elapsed = start.elapsed();
    assert_eq!(result.len(), expected_groups.min(table.row_count()));
    assert!(result.iter().all(|(key, _)| key.arity() == 2));
    let total: u64 = result.iter().map(|(_, rows)| rows).sum();
    assert_eq!(total as usize, table.row_count());
    elapsed
}

/// One cell of the composite-key grouped comparison: median-of-`samples`
/// row-at-a-time vs. chunked times for a `group_by(["grp", "sub"])` scan
/// over `groups × subgroups` composite keys.  (The PR-1 legacy loop cannot
/// express composite keys, so the baseline here is the engine's
/// `ExecutionMode::RowAtATime` grouped scan.)
///
/// # Panics
/// Panics when `samples == 0` or workload generation fails.
pub fn measure_grouped_composite_row_vs_chunk(
    rows: usize,
    variables: usize,
    groups: usize,
    subgroups: usize,
    segments: usize,
    samples: usize,
) -> GroupedMeasurement {
    assert!(samples > 0, "need at least one sample");
    let table = grouped_composite_regression_table(
        rows,
        variables,
        groups,
        subgroups,
        segments,
        42 + (groups * subgroups) as u64,
    );
    let expected = groups * subgroups;
    let median = |mut times: Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };
    let row_executor = Executor::row_at_a_time();
    let row_path = median(
        (0..samples)
            .map(|_| measure_grouped_composite_scan(&table, &row_executor, expected))
            .collect(),
    );
    let chunked_executor = Executor::new();
    let chunk_path = median(
        (0..samples)
            .map(|_| measure_grouped_composite_scan(&table, &chunked_executor, expected))
            .collect(),
    );
    GroupedMeasurement {
        rows,
        variables,
        groups: expected,
        segments,
        row_path,
        chunk_path,
    }
}

/// One cell of the grouped comparison: median-of-`samples` times for the
/// legacy row loop vs. the segment-parallel chunked grouped scan on the same
/// table.
///
/// # Panics
/// Panics when `samples == 0` or workload generation fails.
pub fn measure_grouped_row_vs_chunk(
    rows: usize,
    variables: usize,
    groups: usize,
    segments: usize,
    samples: usize,
) -> GroupedMeasurement {
    assert!(samples > 0, "need at least one sample");
    let table = grouped_regression_table(rows, variables, groups, segments, 42 + groups as u64);
    let median = |mut times: Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };
    let row_path = median(
        (0..samples)
            .map(|_| measure_grouped_legacy_row_loop(&table, groups))
            .collect(),
    );
    let chunked_executor = Executor::new();
    let chunk_path = median(
        (0..samples)
            .map(|_| measure_grouped_linregr_scan(&table, &chunked_executor, groups))
            .collect(),
    );
    GroupedMeasurement {
        rows,
        variables,
        groups,
        segments,
        row_path,
        chunk_path,
    }
}

/// One measured cell of the grouped-*training* comparison: full per-group
/// linear-regression fits (transition + merge + per-group finalize) through
/// `Session::train_grouped`, chunked vs row-at-a-time execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedTrainingMeasurement {
    /// Number of rows.
    pub rows: usize,
    /// Number of independent variables.
    pub variables: usize,
    /// Number of distinct groups (= models trained per call).
    pub groups: usize,
    /// Number of segments.
    pub segments: usize,
    /// Median wall-clock time of the row-at-a-time grouped training pass.
    pub row_path: Duration,
    /// Median wall-clock time of the chunked grouped training pass.
    pub chunk_path: Duration,
}

impl GroupedTrainingMeasurement {
    /// Chunk-path speedup over the row-at-a-time baseline.
    pub fn speedup(&self) -> f64 {
        self.row_path.as_secs_f64() / self.chunk_path.as_secs_f64()
    }
}

/// Times one grouped training call — `Session::train_grouped` with linear
/// regression over a `group_by("grp")` dataset, i.e. one fitted model per
/// group in a single grouped scan — under the given executor.
///
/// # Panics
/// Panics if training fails or produces the wrong number of models, which
/// cannot happen for the generated workloads.
pub fn measure_grouped_training_pass(table: &Table, executor: Executor, groups: usize) -> Duration {
    let session = Session::in_memory(table.num_segments())
        .expect("positive segment count")
        .with_executor(executor);
    let dataset = Dataset::from_table(table).group_by(["grp"]);
    let estimator = LinearRegression::new("y", "x");
    let start = Instant::now();
    let models = session
        .train_grouped(&estimator, &dataset)
        .expect("grouped training over generated data cannot fail");
    let elapsed = start.elapsed();
    assert_eq!(models.len(), groups.min(table.row_count()));
    let total: u64 = models.iter().map(|(_, m)| m.num_rows).sum();
    assert_eq!(total as usize, table.row_count());
    elapsed
}

/// One cell of the grouped-training comparison: median-of-`samples` times
/// for `Session::train_grouped` per-group linregr under row vs chunk mode.
///
/// # Panics
/// Panics when `samples == 0` or workload generation fails.
pub fn measure_grouped_training(
    rows: usize,
    variables: usize,
    groups: usize,
    segments: usize,
    samples: usize,
) -> GroupedTrainingMeasurement {
    assert!(samples > 0, "need at least one sample");
    let table = grouped_regression_table(rows, variables, groups, segments, 77 + groups as u64);
    let median = |mut times: Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };
    let row_path = median(
        (0..samples)
            .map(|_| measure_grouped_training_pass(&table, Executor::row_at_a_time(), groups))
            .collect(),
    );
    let chunk_path = median(
        (0..samples)
            .map(|_| measure_grouped_training_pass(&table, Executor::new(), groups))
            .collect(),
    );
    GroupedTrainingMeasurement {
        rows,
        variables,
        groups,
        segments,
        row_path,
        chunk_path,
    }
}

/// Generates the Zipf-skewed multi-tenant variant of the grouped workload:
/// group `g` (0-based rank) holds a share of the rows proportional to
/// `1/(g+1)`, so the top tenant owns a large fraction of the table while the
/// tail groups hold a handful of rows each — and hash distribution on `grp`
/// piles the hot tenant's rows onto one segment.  Every group gets at least
/// one row (`rows >= groups` required), so model/group counts stay exact.
///
/// # Panics
/// Panics when `rows < groups` or generation fails.
pub fn zipf_grouped_regression_table(
    rows: usize,
    variables: usize,
    groups: usize,
    segments: usize,
    seed: u64,
) -> Table {
    use madlib_engine::table::Distribution;
    use madlib_engine::{Column, ColumnType, Value};
    assert!(groups > 0, "need at least one group");
    assert!(rows >= groups, "need at least one row per group");
    let counts = zipf_group_sizes(rows, groups);
    let base = figure4_table(rows, variables, 1, seed);
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table =
        Table::with_distribution(schema, segments, Distribution::HashColumn("grp".into()))
            .expect("positive segment count");
    let mut group = 0usize;
    let mut remaining_in_group = counts[0];
    for row in base.iter() {
        while remaining_in_group == 0 {
            group += 1;
            remaining_in_group = counts[group];
        }
        remaining_in_group -= 1;
        let mut values = Vec::with_capacity(3);
        values.push(Value::Int(group as i64));
        values.extend(row.into_values());
        table
            .insert(Row::new(values))
            .expect("generated rows match the schema");
    }
    table
}

/// Zipf(1) apportionment of `rows` over `groups` ranks: one guaranteed row
/// per group, the rest split by largest remainder on weights `1/(g+1)`.
fn zipf_group_sizes(rows: usize, groups: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..groups).map(|g| 1.0 / (g as f64 + 1.0)).collect();
    let total_weight: f64 = weights.iter().sum();
    let spare = rows - groups;
    let mut counts = Vec::with_capacity(groups);
    let mut fractions: Vec<(f64, usize)> = Vec::with_capacity(groups);
    let mut assigned = 0usize;
    for (g, w) in weights.iter().enumerate() {
        let quota = spare as f64 * w / total_weight;
        let floor = quota.floor() as usize;
        counts.push(1 + floor);
        assigned += floor;
        fractions.push((quota - floor as f64, g));
    }
    // Largest-remainder: hand the leftover rows to the biggest fractions.
    fractions.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for (_, g) in fractions.iter().take(spare - assigned) {
        counts[*g] += 1;
    }
    counts
}

/// One measured cell of the scheduler comparison on the Zipf-skewed
/// multi-tenant shape: the engine's work-stealing
/// [`run_per_segment`](madlib_engine::scan::run_per_segment) against the pre-stealing static striping policy,
/// both running the same per-segment linregr accumulation with the same
/// worker count.
///
/// Wall-clock times tell the story only when the host has at least `workers`
/// cores (time-slicing hides scheduling quality on fewer); the simulated
/// makespans — busiest worker's row share under each policy, computed from
/// the actual per-segment row counts — capture the scheduling difference
/// deterministically on any host.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfScheduleMeasurement {
    /// Number of rows.
    pub rows: usize,
    /// Number of independent variables.
    pub variables: usize,
    /// Number of Zipf-ranked groups.
    pub groups: usize,
    /// Number of segments.
    pub segments: usize,
    /// Worker count both policies ran with.
    pub workers: usize,
    /// Median wall-clock time under the work-stealing scheduler.
    pub stealing: Duration,
    /// Median wall-clock time under static striping.
    pub striped: Duration,
    /// Simulated makespan (busiest worker's rows) under work stealing.
    pub stealing_makespan_rows: usize,
    /// Simulated makespan (busiest worker's rows) under static striping.
    pub striped_makespan_rows: usize,
}

impl ZipfScheduleMeasurement {
    /// Wall-clock advantage of stealing over striping (>1 = stealing faster).
    pub fn wall_clock_ratio(&self) -> f64 {
        self.striped.as_secs_f64() / self.stealing.as_secs_f64()
    }

    /// Makespan advantage of stealing over striping (>1 = stealing better
    /// balanced); this is the wall-clock ratio a `workers`-core host would
    /// approach.
    pub fn makespan_ratio(&self) -> f64 {
        self.striped_makespan_rows as f64 / self.stealing_makespan_rows.max(1) as f64
    }
}

/// Static-striping reference scheduler — the pre-work-stealing
/// `run_per_segment` policy (worker `w` owns segments `w, w+W, ...`), kept
/// here so the benchmark can compare scheduling policies head-to-head.
fn run_per_segment_striped<T, F>(table: &Table, workers: usize, work: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize, &madlib_engine::chunk::Segment) -> T + Sync,
{
    let num_segments = table.num_segments();
    let workers = workers.clamp(1, num_segments.max(1));
    let mut results: Vec<Option<T>> = (0..num_segments).map(|_| None).collect();
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    (w..num_segments)
                        .step_by(workers)
                        .map(|seg| (seg, work(seg, table.segment(seg))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (seg, result) in handle.join().expect("bench worker does not panic") {
                results[seg] = Some(result);
            }
        }
    });
    results
}

/// Busiest worker's row count when segments are striped statically.
fn striped_makespan(segment_rows: &[usize], workers: usize) -> usize {
    (0..workers.max(1))
        .map(|w| segment_rows.iter().skip(w).step_by(workers.max(1)).sum())
        .max()
        .unwrap_or(0)
}

/// Busiest worker's row count under cursor-order work stealing: the worker
/// that frees up first claims the next segment (greedy list scheduling).
fn stealing_makespan(segment_rows: &[usize], workers: usize) -> usize {
    let mut loads = vec![0usize; workers.max(1)];
    for &rows in segment_rows {
        *loads.iter_mut().min().expect("at least one worker") += rows;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Measures the work-stealing scheduler against static striping on the
/// Zipf-skewed grouped table: both policies run the same per-segment linregr
/// state accumulation (the grouped scan's per-segment work) with `workers`
/// threads, and must produce identical per-segment states.
///
/// # Panics
/// Panics when `samples == 0`, generation fails, or the two schedulers
/// disagree on any per-segment result.
pub fn measure_zipf_schedulers(
    rows: usize,
    variables: usize,
    groups: usize,
    segments: usize,
    samples: usize,
    workers: usize,
) -> ZipfScheduleMeasurement {
    use madlib_engine::scan;
    assert!(samples > 0, "need at least one sample");
    let table =
        zipf_grouped_regression_table(rows, variables, groups, segments, 99 + groups as u64);
    let agg = LinregrScan(LinearRegression::new("y", "x"));
    let schema = table.schema();
    let accumulate = |segment: &madlib_engine::chunk::Segment| -> u64 {
        let mut state = agg.initial_state();
        scan::scan_segment_chunks(segment, schema, None, |batch| {
            agg.transition_chunk(&mut state, batch.chunk(), schema)
        })
        .expect("scan over generated data cannot fail");
        state.num_rows
    };
    let median = |mut times: Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };

    // Pin both policies to the same worker count via the env override the
    // engine's worker_count() honours.
    let saved = std::env::var("MADLIB_THREADS").ok();
    std::env::set_var("MADLIB_THREADS", workers.to_string());
    let mut stealing_times = Vec::with_capacity(samples);
    let mut stealing_rows: Vec<u64> = Vec::new();
    for _ in 0..samples {
        let start = Instant::now();
        let per_segment = scan::run_per_segment(&table, true, |_, segment| Ok(accumulate(segment)));
        stealing_times.push(start.elapsed());
        stealing_rows = per_segment
            .into_iter()
            .map(|r| r.expect("bench worker does not panic"))
            .collect();
    }
    match saved {
        Some(value) => std::env::set_var("MADLIB_THREADS", value),
        None => std::env::remove_var("MADLIB_THREADS"),
    }

    let mut striped_times = Vec::with_capacity(samples);
    let mut striped_rows: Vec<u64> = Vec::new();
    for _ in 0..samples {
        let start = Instant::now();
        let per_segment = run_per_segment_striped(&table, workers, |_, s| accumulate(s));
        striped_times.push(start.elapsed());
        striped_rows = per_segment
            .into_iter()
            .map(|slot| slot.expect("every segment ran"))
            .collect();
    }
    assert_eq!(
        stealing_rows, striped_rows,
        "schedulers disagreed on per-segment results"
    );
    let total: u64 = stealing_rows.iter().sum();
    assert_eq!(total as usize, table.row_count());

    let segment_rows: Vec<usize> = stealing_rows.iter().map(|&r| r as usize).collect();
    ZipfScheduleMeasurement {
        rows,
        variables,
        groups,
        segments,
        workers,
        stealing: median(stealing_times),
        striped: median(striped_times),
        stealing_makespan_rows: stealing_makespan(&segment_rows, workers),
        striped_makespan_rows: striped_makespan(&segment_rows, workers),
    }
}

/// One cell of the grouped-training comparison on the Zipf-skewed table:
/// median-of-`samples` `Session::train_grouped` per-group linregr times,
/// row vs chunk mode, over [`zipf_grouped_regression_table`].
///
/// # Panics
/// Panics when `samples == 0` or workload generation fails.
pub fn measure_grouped_training_zipf(
    rows: usize,
    variables: usize,
    groups: usize,
    segments: usize,
    samples: usize,
) -> GroupedTrainingMeasurement {
    assert!(samples > 0, "need at least one sample");
    let table =
        zipf_grouped_regression_table(rows, variables, groups, segments, 55 + groups as u64);
    let median = |mut times: Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };
    let row_path = median(
        (0..samples)
            .map(|_| measure_grouped_training_pass(&table, Executor::row_at_a_time(), groups))
            .collect(),
    );
    let chunk_path = median(
        (0..samples)
            .map(|_| measure_grouped_training_pass(&table, Executor::new(), groups))
            .collect(),
    );
    GroupedTrainingMeasurement {
        rows,
        variables,
        groups,
        segments,
        row_path,
        chunk_path,
    }
}

/// One measured cell of the kernel-tier sweep: a single batched linalg
/// kernel at one width, timed per dispatch tier.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMeasurement {
    /// Kernel under measurement (e.g. `"rank_k_update_lower"`).
    pub kernel: &'static str,
    /// Dispatch tier measured: `"scalar"`, `"unrolled"` or `"simd"`.
    pub tier: &'static str,
    /// Feature-vector width (matrix dimension for the rank-k/gemm shapes).
    pub width: usize,
    /// Rows per kernel call.
    pub rows: usize,
    /// Median wall-clock time of one timed region (`reps` kernel calls).
    pub elapsed: Duration,
    /// Throughput in GFLOP/s over the region.
    pub gflops: f64,
}

/// Deterministic finite bench values in [-2, 2) (xorshift; no specials —
/// NaN/∞ would poison throughput numbers via subnormal/NaN slow paths).
fn kernel_bench_data(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 250.0 - 2.0
        })
        .collect()
}

/// Sweeps every rewritten batched kernel across the dispatch tiers —
/// `scalar` (reference), `unrolled` (portable 4-way) and `simd` (AVX2, when
/// the host supports it) — addressing the tier modules directly so the
/// `MADLIB_SIMD` dispatch cache cannot skew the comparison.  Each cell loops
/// the kernel enough times to retire ~`target_flops` floating-point
/// operations and reports the median-of-`samples` throughput.
///
/// # Panics
/// Panics when `samples == 0` or an internal shape is invalid (it cannot be
/// for the fixed sweep shapes).
pub fn measure_kernel_tiers(
    widths: &[usize],
    target_flops: f64,
    samples: usize,
) -> Vec<KernelMeasurement> {
    use madlib_linalg::kernels::{scalar, simd, unrolled};
    assert!(samples > 0, "need at least one sample");
    const TIERS: [&str; 3] = ["scalar", "unrolled", "simd"];
    const CLOSEST_COLUMNS: usize = 8;
    let mut measurements = Vec::new();
    for &width in widths {
        assert!(width > 0, "kernel sweep widths must be positive");
        // Buffers stay bounded (~25 MB of rows at width 40); throughput
        // comes from repeating calls, not from giant single calls.
        let rows = (4_000_000 / width).clamp(64, 16_384);
        let xs = kernel_bench_data(rows * width, 11 + width as u64);
        let ys = kernel_bench_data(rows, 13);
        let weights = kernel_bench_data(rows, 17);
        let wvec = kernel_bench_data(width, 19);
        let center = kernel_bench_data(width, 23);
        let columns: Vec<Vec<f64>> = (0..CLOSEST_COLUMNS)
            .map(|c| kernel_bench_data(width, 29 + c as u64))
            .collect();
        let dense = |r: usize, c: usize, seed: u64| {
            madlib_linalg::DenseMatrix::from_row_major(r, c, kernel_bench_data(r * c, seed))
                .expect("bench shapes are consistent")
        };
        let a_mat = madlib_linalg::DenseMatrix::from_row_major(rows, width, xs.clone())
            .expect("bench shapes are consistent");
        let gemm_m = 64usize;
        let gemm_a = dense(gemm_m, width, 31);
        let gemm_b = dense(width, width, 37);

        let mut run = |kernel: &'static str, flops_per_call: f64, f: &mut dyn FnMut(usize)| {
            let reps = ((target_flops / flops_per_call).ceil() as usize).clamp(1, 1_000_000);
            for (tier_idx, &tier) in TIERS.iter().enumerate() {
                if tier == "simd" && !simd::available() {
                    continue;
                }
                f(tier_idx); // warm up (page in buffers, resolve branches)
                let mut times: Vec<Duration> = (0..samples)
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..reps {
                            f(tier_idx);
                        }
                        start.elapsed()
                    })
                    .collect();
                times.sort_unstable();
                let elapsed = times[times.len() / 2];
                measurements.push(KernelMeasurement {
                    kernel,
                    tier,
                    width,
                    rows,
                    elapsed,
                    gflops: flops_per_call * reps as f64 / elapsed.as_secs_f64() / 1e9,
                });
            }
        };

        // Lower-triangle rank-k: one mul + one add per (i, j ≤ i) pair per row.
        let tri_flops = (rows * width * (width + 1)) as f64;
        let mut m = madlib_linalg::DenseMatrix::zeros(width, width);
        run("rank_k_update_lower", tri_flops, &mut |tier| {
            match tier {
                0 => scalar::rank_k_update_lower(&mut m, &xs, width),
                1 => unrolled::rank_k_update_lower(&mut m, &xs, width),
                _ => simd::rank_k_update_lower(&mut m, &xs, width),
            }
            black_box(m.as_slice().first());
        });
        let mut m = madlib_linalg::DenseMatrix::zeros(width, width);
        run(
            "weighted_rank_k_update_lower",
            tri_flops + (rows * width) as f64,
            &mut |tier| {
                match tier {
                    0 => scalar::weighted_rank_k_update_lower(&mut m, &xs, &weights, width),
                    1 => unrolled::weighted_rank_k_update_lower(&mut m, &xs, &weights, width),
                    _ => simd::weighted_rank_k_update_lower(&mut m, &xs, &weights, width),
                }
                black_box(m.as_slice().first());
            },
        );
        let mut acc = vec![0.0f64; width];
        run("xty_update", (2 * rows * width) as f64, &mut |tier| {
            match tier {
                0 => scalar::xty_update(&mut acc, &xs, &ys, width),
                1 => unrolled::xty_update(&mut acc, &xs, &ys, width),
                _ => simd::xty_update(&mut acc, &xs, &ys, width),
            }
            black_box(acc.first());
        });
        let mut out = vec![0.0f64; rows];
        run("batch_dot", (2 * rows * width) as f64, &mut |tier| {
            match tier {
                0 => scalar::batch_dot(&xs, &wvec, &mut out),
                1 => unrolled::batch_dot(&xs, &wvec, &mut out),
                _ => simd::batch_dot(&xs, &wvec, &mut out),
            }
            black_box(out.first());
        });
        let mut out = vec![0.0f64; rows];
        run(
            "batch_squared_distances",
            (3 * rows * width) as f64,
            &mut |tier| {
                match tier {
                    0 => scalar::batch_squared_distances(&xs, &center, &mut out),
                    1 => unrolled::batch_squared_distances(&xs, &center, &mut out),
                    _ => simd::batch_squared_distances(&xs, &center, &mut out),
                }
                black_box(out.first());
            },
        );
        let mut best = vec![0usize; rows];
        run(
            "batch_closest_column",
            (3 * rows * width * CLOSEST_COLUMNS) as f64,
            &mut |tier| {
                match tier {
                    0 => scalar::batch_closest_column(&columns, &xs, width, &mut best),
                    1 => unrolled::batch_closest_column(&columns, &xs, width, &mut best),
                    _ => simd::batch_closest_column(&columns, &xs, width, &mut best),
                }
                black_box(best.first());
            },
        );
        let mut y = vec![0.0f64; rows];
        run("gemv_acc", (2 * rows * width) as f64, &mut |tier| {
            match tier {
                0 => scalar::gemv_acc(1.0, &a_mat, &wvec, &mut y),
                1 => unrolled::gemv_acc(1.0, &a_mat, &wvec, &mut y),
                _ => simd::gemv_acc(1.0, &a_mat, &wvec, &mut y),
            }
            black_box(y.first());
        });
        let mut out = madlib_linalg::DenseMatrix::zeros(gemm_m, width);
        run(
            "gemm_acc",
            (2 * gemm_m * width * width) as f64,
            &mut |tier| {
                match tier {
                    0 => scalar::gemm_acc(&mut out, &gemm_a, &gemm_b),
                    1 => unrolled::gemm_acc(&mut out, &gemm_a, &gemm_b),
                    _ => simd::gemm_acc(&mut out, &gemm_a, &gemm_b),
                }
                black_box(out.as_slice().first());
            },
        );
    }
    measurements
}

/// The sweep's acceptance cell: scalar vs best-available throughput for one
/// kernel at one width.  Returns `(scalar_gflops, best_gflops, ratio)`; the
/// "best" tier is `simd` when measured, otherwise `unrolled`.
pub fn kernel_speedup_cell(
    measurements: &[KernelMeasurement],
    kernel: &str,
    width: usize,
) -> Option<(f64, f64, f64)> {
    let of = |tier: &str| {
        measurements
            .iter()
            .find(|m| m.kernel == kernel && m.width == width && m.tier == tier)
            .map(|m| m.gflops)
    };
    let scalar = of("scalar")?;
    let best = of("simd").or_else(|| of("unrolled"))?;
    Some((scalar, best, best / scalar))
}

/// One measured cell of the stealing-granularity comparison on the
/// Zipf-skewed multi-tenant shape: segment-granular stealing (a whole
/// segment per work unit) against chunk-range stealing
/// ([`madlib_engine::StealGranularity::ChunkRange`]), both running the
/// grouped linregr scan.
///
/// As with [`ZipfScheduleMeasurement`], wall clock only tells the story on a
/// host with at least `workers` cores; the simulated makespans — greedy list
/// scheduling of the *actual* work-unit row counts each granularity
/// produces — capture the scheduling difference deterministically anywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRangeScheduleMeasurement {
    /// Number of rows.
    pub rows: usize,
    /// Number of independent variables.
    pub variables: usize,
    /// Number of Zipf-ranked groups.
    pub groups: usize,
    /// Number of segments.
    pub segments: usize,
    /// Worker count both granularities ran (and were simulated) with.
    pub workers: usize,
    /// Work units at segment granularity (= number of segments).
    pub segment_units: usize,
    /// Work units at chunk-range granularity.
    pub chunk_range_units: usize,
    /// Simulated makespan (busiest worker's rows), segment granularity.
    pub segment_makespan_rows: usize,
    /// Simulated makespan (busiest worker's rows), chunk-range granularity.
    pub chunk_range_makespan_rows: usize,
    /// Median wall-clock time of the grouped scan, segment granularity.
    pub segment_granular: Duration,
    /// Median wall-clock time of the grouped scan, chunk-range granularity.
    pub chunk_range: Duration,
}

impl ChunkRangeScheduleMeasurement {
    /// Makespan advantage of chunk-range over segment granularity (>1 =
    /// chunk-range better balanced; the wall-clock ratio a `workers`-core
    /// host would approach).
    pub fn makespan_ratio(&self) -> f64 {
        self.segment_makespan_rows as f64 / self.chunk_range_makespan_rows.max(1) as f64
    }

    /// Wall-clock advantage of chunk-range over segment granularity.
    pub fn wall_clock_ratio(&self) -> f64 {
        self.segment_granular.as_secs_f64() / self.chunk_range.as_secs_f64()
    }
}

/// Rows in each work unit the scan would schedule at `granularity`.
fn granularity_unit_rows(
    table: &Table,
    granularity: madlib_engine::StealGranularity,
) -> Vec<usize> {
    madlib_engine::scan::chunk_range_units(table, granularity)
        .iter()
        .map(|unit| {
            unit.chunks(table.segment(unit.segment))
                .iter()
                .map(|chunk| chunk.len())
                .sum()
        })
        .collect()
}

/// Measures segment-granular vs chunk-range stealing on the Zipf-skewed
/// grouped table: simulated `workers`-way makespans from each granularity's
/// actual unit decomposition, wall-clock medians for the grouped linregr
/// scan under each granularity, and a bit-identity check of the parallel
/// chunk-range output against a serial run at the same granularity (per-group
/// row counts and per-group `sum(y)` bits).
///
/// # Panics
/// Panics when `samples == 0`, generation fails, or the parallel chunk-range
/// scan diverges from the serial one.
pub fn measure_zipf_chunk_range(
    rows: usize,
    variables: usize,
    groups: usize,
    segments: usize,
    samples: usize,
    workers: usize,
) -> ChunkRangeScheduleMeasurement {
    use madlib_engine::aggregate::SumAggregate;
    use madlib_engine::StealGranularity;
    assert!(samples > 0, "need at least one sample");
    let table =
        zipf_grouped_regression_table(rows, variables, groups, segments, 99 + groups as u64);

    let segment_unit_rows = granularity_unit_rows(&table, StealGranularity::Segment);
    let chunk_range_unit_rows = granularity_unit_rows(&table, StealGranularity::ChunkRange);

    let median = |mut times: Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };
    // Pin the worker count so wall clock compares like with like.
    let saved = std::env::var("MADLIB_THREADS").ok();
    std::env::set_var("MADLIB_THREADS", workers.to_string());
    let timed = |granularity: StealGranularity| -> Vec<Duration> {
        let executor = Executor::new().with_steal_granularity(granularity);
        (0..samples)
            .map(|_| measure_grouped_linregr_scan(&table, &executor, groups))
            .collect()
    };
    let segment_times = timed(StealGranularity::Segment);
    let chunk_range_times = timed(StealGranularity::ChunkRange);

    // Output fidelity: the parallel chunk-range scan must match a serial run
    // at the same granularity bit for bit (per-group counts and sum bits).
    let grouped = |executor: Executor| {
        let counts = Dataset::from_table(&table)
            .with_executor(executor)
            .group_by(["grp"])
            .aggregate_per_group(&madlib_engine::aggregate::CountAggregate)
            .expect("grouped count over generated data cannot fail");
        let sums = Dataset::from_table(&table)
            .with_executor(executor)
            .group_by(["grp"])
            .aggregate_per_group(&SumAggregate::new("y"))
            .expect("grouped sum over generated data cannot fail");
        let sum_bits: Vec<(madlib_engine::GroupKey, u64)> = sums
            .into_iter()
            .map(|(key, sum)| (key, sum.to_bits()))
            .collect();
        (counts, sum_bits)
    };
    let parallel = grouped(Executor::new().with_steal_granularity(StealGranularity::ChunkRange));
    let serial = grouped(Executor::serial().with_steal_granularity(StealGranularity::ChunkRange));
    assert_eq!(
        parallel, serial,
        "parallel chunk-range scan diverged from the serial run"
    );
    match saved {
        Some(value) => std::env::set_var("MADLIB_THREADS", value),
        None => std::env::remove_var("MADLIB_THREADS"),
    }

    ChunkRangeScheduleMeasurement {
        rows,
        variables,
        groups,
        segments,
        workers,
        segment_units: segment_unit_rows.len(),
        chunk_range_units: chunk_range_unit_rows.len(),
        segment_makespan_rows: stealing_makespan(&segment_unit_rows, workers),
        chunk_range_makespan_rows: stealing_makespan(&chunk_range_unit_rows, workers),
        segment_granular: median(segment_times),
        chunk_range: median(chunk_range_times),
    }
}

/// One measured cell of the serving sweep: `Dataset::score` with the
/// linear-regression dot-product scorer, chunked vs row-at-a-time execution,
/// against the naive per-row predict loop a client would write without the
/// serving subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictMeasurement {
    /// Number of rows scored.
    pub rows: usize,
    /// Feature-vector width.
    pub width: usize,
    /// Number of segments.
    pub segments: usize,
    /// Median wall-clock time of the single-threaded per-row predict loop
    /// (materialize each row, call `Predictor::predict_value`).
    pub per_row_loop: Duration,
    /// Median wall-clock time of `Dataset::score` under
    /// [`ExecutionMode::RowAtATime`].
    pub row_mode: Duration,
    /// Median wall-clock time of `Dataset::score` under
    /// [`ExecutionMode::Chunked`] (the `batch_dot` override).
    pub chunk_mode: Duration,
}

impl PredictMeasurement {
    /// Chunked `Dataset::score` speedup over the per-row predict loop — the
    /// serving acceptance ratio.
    pub fn speedup_vs_loop(&self) -> f64 {
        self.per_row_loop.as_secs_f64() / self.chunk_mode.as_secs_f64()
    }

    /// Rows scored per second for one of the measured durations.
    pub fn rows_per_sec(&self, elapsed: Duration) -> f64 {
        self.rows as f64 / elapsed.as_secs_f64()
    }
}

/// Constructs a servable linear-regression model of the given width without
/// paying for a fit (deterministic non-trivial coefficients).
fn predict_bench_model(width: usize) -> LinearRegressionModel {
    LinearRegressionModel {
        coef: kernel_bench_data(width, 41 + width as u64),
        r2: 0.0,
        std_err: Vec::new(),
        t_stats: Vec::new(),
        p_values: Vec::new(),
        condition_no: 0.0,
        num_rows: 0,
    }
}

/// Times the naive client-side serving loop: walk every segment row by row,
/// materialize the row, pull the feature array out and call the model's
/// per-row `predict_value` — no chunks, no batched kernels, no parallelism.
///
/// # Panics
/// Panics if a prediction fails, which cannot happen for generated
/// workloads.
pub fn measure_predict_row_loop(table: &Table, model: &LinearRegressionModel) -> Duration {
    let schema = table.schema();
    let x_idx = schema.index_of("x").expect("x column exists");
    let start = Instant::now();
    let mut scored = 0usize;
    let mut acc = 0.0f64;
    for seg in 0..table.num_segments() {
        for row in table.segment(seg).iter() {
            let x = row
                .get(x_idx)
                .as_double_array()
                .expect("generated features are double arrays");
            let prediction = model
                .predict_value(x)
                .expect("predict over generated data cannot fail");
            if let madlib_engine::Value::Double(d) = prediction {
                acc += d;
            }
            scored += 1;
        }
    }
    let elapsed = start.elapsed();
    black_box(acc);
    assert_eq!(scored, table.row_count());
    elapsed
}

/// Times one `Dataset::score` pass over the table under the given execution
/// mode, with the linear-regression scorer.
///
/// # Panics
/// Panics if scoring fails or loses rows, which cannot happen for the
/// generated workloads.
pub fn measure_predict_scan(
    table: &Table,
    model: &LinearRegressionModel,
    mode: ExecutionMode,
) -> Duration {
    let executor = Executor::new().with_mode(mode);
    let scorer = FeatureScorer::new(model, "x");
    let start = Instant::now();
    let predictions = Dataset::from_table(table)
        .with_executor(executor)
        .score(&scorer)
        .expect("scoring generated data cannot fail");
    let elapsed = start.elapsed();
    black_box(predictions.first());
    assert_eq!(predictions.len(), table.row_count());
    elapsed
}

/// One cell of the serving sweep: median-of-`samples` times for the per-row
/// predict loop, row-at-a-time `Dataset::score` and chunked `Dataset::score`
/// on the same generated table — after checking the three plans agree on the
/// predictions bit for bit.
///
/// # Panics
/// Panics when `samples == 0`, generation fails, or the three serving plans
/// disagree on any prediction.
pub fn measure_predict(
    rows: usize,
    width: usize,
    segments: usize,
    samples: usize,
) -> PredictMeasurement {
    assert!(samples > 0, "need at least one sample");
    let table = figure4_table(rows, width, segments, 61 + width as u64);
    let model = predict_bench_model(width);

    // Fidelity first: the vectorized pass must not buy speed with drift.
    let scorer = FeatureScorer::new(&model, "x");
    let chunked = Dataset::from_table(&table)
        .score(&scorer)
        .expect("scoring generated data cannot fail");
    let by_rows = Dataset::from_table(&table)
        .with_executor(Executor::row_at_a_time())
        .score(&scorer)
        .expect("scoring generated data cannot fail");
    assert_eq!(chunked, by_rows, "chunked scoring diverged from row mode");

    let median = |mut times: Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };
    let per_row_loop = median(
        (0..samples)
            .map(|_| measure_predict_row_loop(&table, &model))
            .collect(),
    );
    let row_mode = median(
        (0..samples)
            .map(|_| measure_predict_scan(&table, &model, ExecutionMode::RowAtATime))
            .collect(),
    );
    let chunk_mode = median(
        (0..samples)
            .map(|_| measure_predict_scan(&table, &model, ExecutionMode::Chunked))
            .collect(),
    );
    PredictMeasurement {
        rows,
        width,
        segments,
        per_row_loop,
        row_mode,
        chunk_mode,
    }
}

/// One measured cell of the raw dot-product scoring kernel per dispatch
/// tier: `batch_dot` over a flat feature buffer, reported in millions of
/// rows scored per second.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictKernelMeasurement {
    /// Dispatch tier measured: `"scalar"`, `"unrolled"` or `"simd"`.
    pub tier: &'static str,
    /// Feature-vector width.
    pub width: usize,
    /// Rows per kernel call.
    pub rows: usize,
    /// Median wall-clock time of one timed region.
    pub elapsed: Duration,
    /// Throughput in millions of rows scored per second.
    pub mrows_per_sec: f64,
}

/// Sweeps the dot-product scoring kernel (`batch_dot` — the inner loop of
/// linregr/logregr/SVM serving) across the dispatch tiers, addressing the
/// tier modules directly so the `MADLIB_SIMD` dispatch cache cannot skew the
/// comparison.  Reports millions of rows scored per second per tier.
///
/// # Panics
/// Panics when `samples == 0` or `width == 0`.
pub fn measure_predict_kernel_tiers(width: usize, samples: usize) -> Vec<PredictKernelMeasurement> {
    use madlib_linalg::kernels::{scalar, simd, unrolled};
    assert!(samples > 0, "need at least one sample");
    assert!(width > 0, "need a positive width");
    let rows = (4_000_000 / width).clamp(1_024, 65_536);
    let xs = kernel_bench_data(rows * width, 43 + width as u64);
    let coef = kernel_bench_data(width, 47);
    let mut out = vec![0.0f64; rows];
    // Enough repetitions per timed region to outlast timer resolution.
    let reps = (2_000_000 / rows).max(4);
    let mut measurements = Vec::new();
    for tier in ["scalar", "unrolled", "simd"] {
        if tier == "simd" && !simd::available() {
            continue;
        }
        let call = |out: &mut [f64]| match tier {
            "scalar" => scalar::batch_dot(&xs, &coef, out),
            "unrolled" => unrolled::batch_dot(&xs, &coef, out),
            _ => simd::batch_dot(&xs, &coef, out),
        };
        call(&mut out); // warm up
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..reps {
                    call(&mut out);
                    black_box(out.first());
                }
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let elapsed = times[times.len() / 2];
        measurements.push(PredictKernelMeasurement {
            tier,
            width,
            rows,
            elapsed,
            mrows_per_sec: (rows * reps) as f64 / elapsed.as_secs_f64() / 1e6,
        });
    }
    measurements
}

/// Runs the full Figure 4 sweep and returns one measurement per cell.
pub fn figure4_sweep(
    segment_counts: &[usize],
    variable_counts: &[usize],
    rows: usize,
    generations: &[KernelGeneration],
) -> Vec<LinregrMeasurement> {
    let mut measurements = Vec::new();
    for &variables in variable_counts {
        // One logical dataset per variable count, re-partitioned per segment
        // count so every cell sees identical data (as in the paper, where the
        // same 10 M-row table is scanned by different cluster sizes).
        let base = figure4_table(rows, variables, 1, 42 + variables as u64);
        for &segments in segment_counts {
            let table = base
                .repartition(segments)
                .expect("repartition of generated data cannot fail");
            for &generation in generations {
                let elapsed = measure_linregr(&table, generation);
                measurements.push(LinregrMeasurement {
                    segments,
                    variables,
                    rows,
                    generation,
                    elapsed,
                });
            }
        }
    }
    measurements
}

/// Renders measurements in the layout of the paper's Figure 4 table
/// (`# segments`, `# variables`, `# rows`, one column per generation).
pub fn render_figure4(measurements: &[LinregrMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(
        "# segments  # variables    # rows      v0.3 (s)  v0.2.1beta (s)  v0.1alpha (s)\n",
    );
    let mut cells: Vec<(usize, usize, usize)> = measurements
        .iter()
        .map(|m| (m.segments, m.variables, m.rows))
        .collect();
    cells.sort_unstable();
    cells.dedup();
    for (segments, variables, rows) in cells {
        let time_of = |generation: KernelGeneration| -> String {
            measurements
                .iter()
                .find(|m| {
                    m.segments == segments
                        && m.variables == variables
                        && m.rows == rows
                        && m.generation == generation
                })
                .map(|m| format!("{:.4}", m.elapsed.as_secs_f64()))
                .unwrap_or_else(|| "-".to_owned())
        };
        out.push_str(&format!(
            "{:>10}  {:>11}  {:>8}  {:>12}  {:>14}  {:>13}\n",
            segments,
            variables,
            rows,
            time_of(KernelGeneration::V03),
            time_of(KernelGeneration::V021Beta),
            time_of(KernelGeneration::V01Alpha),
        ));
    }
    out
}

/// Renders the Figure 5 view of the same measurements: execution time versus
/// the number of independent variables, one series per segment count
/// (v0.3 kernel only), plus the parallel-speedup factors relative to the
/// smallest segment count.
pub fn render_figure5(measurements: &[LinregrMeasurement]) -> String {
    let mut out = String::new();
    let mut segment_counts: Vec<usize> = measurements.iter().map(|m| m.segments).collect();
    segment_counts.sort_unstable();
    segment_counts.dedup();
    let mut variable_counts: Vec<usize> = measurements.iter().map(|m| m.variables).collect();
    variable_counts.sort_unstable();
    variable_counts.dedup();

    out.push_str("# variables");
    for &s in &segment_counts {
        out.push_str(&format!("  {s:>2} seg (s)"));
    }
    out.push('\n');
    for &variables in &variable_counts {
        out.push_str(&format!("{variables:>11}"));
        for &segments in &segment_counts {
            let t = measurements
                .iter()
                .find(|m| {
                    m.variables == variables
                        && m.segments == segments
                        && m.generation == KernelGeneration::V03
                })
                .map(|m| m.elapsed.as_secs_f64());
            match t {
                Some(t) => out.push_str(&format!("  {t:>10.4}")),
                None => out.push_str("           -"),
            }
        }
        out.push('\n');
    }

    // Speedup summary on the largest variable count (the regime where the
    // paper reports near-perfect linear speedup).
    if let (Some(&max_vars), Some(&base_segments)) =
        (variable_counts.last(), segment_counts.first())
    {
        let base_time = measurements
            .iter()
            .find(|m| {
                m.variables == max_vars
                    && m.segments == base_segments
                    && m.generation == KernelGeneration::V03
            })
            .map(|m| m.elapsed.as_secs_f64());
        if let Some(base_time) = base_time {
            out.push_str(&format!(
                "\nspeedup at {max_vars} variables (relative to {base_segments} segment(s)):\n"
            ));
            for &segments in &segment_counts {
                if let Some(t) = measurements
                    .iter()
                    .find(|m| {
                        m.variables == max_vars
                            && m.segments == segments
                            && m.generation == KernelGeneration::V03
                    })
                    .map(|m| m.elapsed.as_secs_f64())
                {
                    out.push_str(&format!(
                        "  {segments:>2} segments: {:.2}x (ideal {:.2}x)\n",
                        base_time / t,
                        segments as f64 / base_segments as f64
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_measurement_per_cell() {
        let measurements = figure4_sweep(
            &[1, 2],
            &[4, 8],
            500,
            &[KernelGeneration::V03, KernelGeneration::V01Alpha],
        );
        assert_eq!(measurements.len(), 2 * 2 * 2);
        assert!(measurements.iter().all(|m| m.elapsed.as_nanos() > 0));
        assert!(measurements.iter().all(|m| m.rows == 500));
    }

    #[test]
    fn rendering_contains_every_cell() {
        let measurements = figure4_sweep(&[1, 2], &[4], 200, &KernelGeneration::ALL);
        let table = render_figure4(&measurements);
        assert!(table.contains("v0.3"));
        assert!(table.contains("v0.1alpha"));
        // Two (segments × variables) cells → header plus two rows.
        assert_eq!(table.lines().count(), 3);

        let fig5 = render_figure5(&measurements);
        assert!(fig5.contains("# variables"));
        assert!(fig5.contains("speedup"));
    }

    #[test]
    fn row_vs_chunk_measurement_produces_positive_times() {
        let (row, chunk) = measure_row_vs_chunk(400, 8, 2, 1);
        assert!(row.as_nanos() > 0);
        assert!(chunk.as_nanos() > 0);
        // Modes must agree on the fitted model (spot check).
        let table = figure4_table(300, 6, 2, 9);
        let session = Session::in_memory(1).unwrap();
        let chunked = LinearRegression::new("y", "x")
            .fit(&Dataset::from_table(&table), &session)
            .unwrap();
        let row_based = LinearRegression::new("y", "x")
            .fit(
                &Dataset::from_table(&table).with_executor(Executor::row_at_a_time()),
                &session,
            )
            .unwrap();
        for (a, b) in chunked.coef.iter().zip(&row_based.coef) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn grouped_measurement_agrees_across_paths() {
        let m = measure_grouped_row_vs_chunk(600, 6, 16, 2, 1);
        assert!(m.row_path.as_nanos() > 0);
        assert!(m.chunk_path.as_nanos() > 0);
        assert!(m.speedup() > 0.0);

        // The chunked grouped path and the legacy-style row loop fit the
        // same per-group models (single segment → identical merge order).
        let table = grouped_regression_table(300, 4, 8, 1, 3);
        let chunked = Dataset::from_table(&table)
            .group_by(["grp"])
            .aggregate_per_group(&LinearRegression::new("y", "x"))
            .unwrap();
        let by_rows = Dataset::from_table(&table)
            .with_executor(Executor::row_at_a_time())
            .group_by(["grp"])
            .aggregate_per_group(&LinearRegression::new("y", "x"))
            .unwrap();
        assert_eq!(chunked.len(), 8);
        for ((ka, ma), (kb, mb)) in chunked.iter().zip(&by_rows) {
            assert_eq!(ka, kb);
            for (a, b) in ma.coef.iter().zip(&mb.coef) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn composite_grouped_measurement_agrees_across_paths() {
        let m = measure_grouped_composite_row_vs_chunk(500, 5, 6, 4, 2, 1);
        assert_eq!(m.groups, 24);
        assert!(m.row_path.as_nanos() > 0);
        assert!(m.chunk_path.as_nanos() > 0);

        // Composite keys fit the same per-group models in both modes.
        let table = grouped_composite_regression_table(300, 4, 5, 3, 2, 9);
        let chunked = Dataset::from_table(&table)
            .group_by(["grp", "sub"])
            .aggregate_per_group(&LinearRegression::new("y", "x"))
            .unwrap();
        let by_rows = Dataset::from_table(&table)
            .with_executor(Executor::row_at_a_time())
            .group_by(["grp", "sub"])
            .aggregate_per_group(&LinearRegression::new("y", "x"))
            .unwrap();
        assert_eq!(chunked.len(), 15);
        for ((ka, ma), (kb, mb)) in chunked.iter().zip(&by_rows) {
            assert_eq!(ka, kb);
            for (a, b) in ma.coef.iter().zip(&mb.coef) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn grouped_training_measurement_is_consistent() {
        let m = measure_grouped_training(400, 5, 8, 2, 1);
        assert!(m.row_path.as_nanos() > 0);
        assert!(m.chunk_path.as_nanos() > 0);
        assert!(m.speedup() > 0.0);
        assert_eq!((m.rows, m.variables, m.groups, m.segments), (400, 5, 8, 2));
    }

    #[test]
    fn kernel_sweep_measures_every_tier() {
        let measurements = measure_kernel_tiers(&[8], 1e6, 1);
        let tiers = if madlib_linalg::kernels::simd::available() {
            3
        } else {
            2
        };
        assert_eq!(measurements.len(), 8 * tiers);
        assert!(measurements.iter().all(|m| m.gflops > 0.0));
        assert!(measurements.iter().all(|m| m.elapsed.as_nanos() > 0));
        let (scalar, best, ratio) =
            kernel_speedup_cell(&measurements, "rank_k_update_lower", 8).unwrap();
        assert!(scalar > 0.0 && best > 0.0 && ratio > 0.0);
        assert!(kernel_speedup_cell(&measurements, "no_such_kernel", 8).is_none());
    }

    #[test]
    fn zipf_chunk_range_measurement_is_consistent() {
        let m = measure_zipf_chunk_range(4_000, 8, 32, 4, 1, 4);
        // Chunk ranges can only refine the segment decomposition, and the
        // greedy simulation can only improve (or tie) with finer units on
        // this skewed shape.
        assert!(m.chunk_range_units >= m.segment_units);
        assert_eq!(m.segment_units, 4);
        assert!(m.chunk_range_makespan_rows <= m.segment_makespan_rows);
        assert!(m.makespan_ratio() >= 1.0);
        assert!(m.segment_granular.as_nanos() > 0);
        assert!(m.chunk_range.as_nanos() > 0);
    }

    #[test]
    fn predict_measurement_is_consistent() {
        let m = measure_predict(2_000, 8, 2, 1);
        assert_eq!((m.rows, m.width, m.segments), (2_000, 8, 2));
        assert!(m.per_row_loop.as_nanos() > 0);
        assert!(m.row_mode.as_nanos() > 0);
        assert!(m.chunk_mode.as_nanos() > 0);
        assert!(m.speedup_vs_loop() > 0.0);
        assert!(m.rows_per_sec(m.chunk_mode) > 0.0);

        let tiers = measure_predict_kernel_tiers(8, 1);
        let expected = if madlib_linalg::kernels::simd::available() {
            3
        } else {
            2
        };
        assert_eq!(tiers.len(), expected);
        assert!(tiers.iter().all(|t| t.mrows_per_sec > 0.0));
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let a = figure4_table(100, 3, 2, 7);
        let b = figure4_table(100, 3, 2, 7);
        assert_eq!(a.collect_rows(), b.collect_rows());
        let elapsed = measure_linregr(&a, KernelGeneration::V03);
        assert!(elapsed.as_nanos() > 0);
    }
}
