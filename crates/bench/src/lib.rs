//! # madlib-bench
//!
//! Workload generators and measurement helpers shared by the Criterion
//! benches and the `repro` binary, which together regenerate every table and
//! figure in the MADlib paper's evaluation:
//!
//! * **Figure 4 / Figure 5** — linear-regression execution times swept over
//!   the number of segments, the number of independent variables, and the
//!   three inner-loop generations (v0.1alpha / v0.2.1beta / v0.3).
//! * **Table 1** — the method inventory, exercised end-to-end.
//! * **Table 2** — the models implemented on the SGD framework.
//! * **Table 3** — the statistical text-analysis methods.
//!
//! The paper ran on a 24-core Greenplum cluster with 10 M-row tables; the
//! default sizes here are scaled down so the full reproduction runs on a
//! laptop in minutes, and the `repro` binary accepts `--full` to sweep the
//! paper's original parameter grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use madlib_core::datasets::linear_regression_data;
use madlib_core::regress::linear::LinRegrState;
use madlib_core::regress::LinearRegression;
use madlib_engine::{Aggregate, ExecutionMode, Executor, Row, RowChunk, Schema, Table};
use madlib_linalg::kernels::KernelGeneration;
use std::time::{Duration, Instant};

/// One measured cell of the Figure 4 table.
#[derive(Debug, Clone, PartialEq)]
pub struct LinregrMeasurement {
    /// Number of segments (parallel workers).
    pub segments: usize,
    /// Number of independent variables.
    pub variables: usize,
    /// Number of rows.
    pub rows: usize,
    /// Inner-loop generation measured.
    pub generation: KernelGeneration,
    /// Wall-clock execution time of the aggregate.
    pub elapsed: Duration,
}

/// Generates the dense regression table used by the Figure 4/5 experiments.
///
/// # Panics
/// Panics if generation fails (invalid sizes), which the callers never pass.
pub fn figure4_table(rows: usize, variables: usize, segments: usize, seed: u64) -> Table {
    linear_regression_data(rows, variables, 0.1, segments, seed)
        .expect("workload generation cannot fail for positive sizes")
        .table
}

/// Runs the linear-regression aggregate once on the default (chunk-at-a-time)
/// executor and reports the wall-clock time.
///
/// # Panics
/// Panics if the fit fails, which cannot happen for the generated workloads.
pub fn measure_linregr(table: &Table, generation: KernelGeneration) -> Duration {
    measure_linregr_mode(table, generation, ExecutionMode::Chunked)
}

/// Runs the linear-regression aggregate once under an explicit execution
/// mode — the row-path vs. chunk-path axis of the vectorization comparison.
///
/// # Panics
/// Panics if the fit fails, which cannot happen for the generated workloads.
pub fn measure_linregr_mode(
    table: &Table,
    generation: KernelGeneration,
    mode: ExecutionMode,
) -> Duration {
    let executor = Executor::new().with_mode(mode);
    let regression = LinearRegression::new("y", "x").with_kernel(generation);
    let start = Instant::now();
    let model = regression
        .fit(&executor, table)
        .expect("linear regression over generated data cannot fail");
    let elapsed = start.elapsed();
    // Keep the optimizer honest.
    assert!(model.coef.iter().all(|c| c.is_finite()));
    elapsed
}

/// Scan-only view of the linear-regression aggregate: same transition state,
/// same per-row and per-chunk inner loops, but a trivial final function (the
/// per-fit eigendecomposition of `XᵀX` is O(width³) and mode-independent, so
/// it would drown the transition comparison at large widths — the quantity
/// the paper's Figure 4 isolates is precisely the inner loop).
struct LinregrScan(LinearRegression);

impl Aggregate for LinregrScan {
    type State = LinRegrState;
    type Output = u64;

    fn initial_state(&self) -> LinRegrState {
        self.0.initial_state()
    }

    fn transition(
        &self,
        state: &mut LinRegrState,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        self.0.transition(state, row, schema)
    }

    fn transition_chunk(
        &self,
        state: &mut LinRegrState,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        self.0.transition_chunk(state, chunk, schema)
    }

    fn merge(&self, left: LinRegrState, right: LinRegrState) -> LinRegrState {
        self.0.merge(left, right)
    }

    fn finalize(&self, state: LinRegrState) -> madlib_engine::Result<u64> {
        Ok(state.num_rows)
    }
}

/// Times one scan (transition + merge, trivial finalize) of the
/// linear-regression aggregate under the given execution mode.
///
/// # Panics
/// Panics if the scan fails, which cannot happen for generated workloads.
pub fn measure_linregr_scan(table: &Table, mode: ExecutionMode) -> Duration {
    let executor = Executor::new().with_mode(mode);
    let scan = LinregrScan(LinearRegression::new("y", "x"));
    let start = Instant::now();
    let rows = executor
        .aggregate(table, &scan)
        .expect("linregr scan over generated data cannot fail");
    let elapsed = start.elapsed();
    assert_eq!(rows as usize, table.row_count());
    elapsed
}

/// One cell of the row-path vs. chunk-path comparison: median-of-`samples`
/// scan time per mode for the v0.3 kernel at the given table shape.
///
/// Caveat on interpreting the ratio: since storage is now column-major, the
/// row-at-a-time baseline materializes each row from chunks (one `Vec<Value>`
/// plus a feature-array clone per row) — overhead the original row-storage
/// engine did not pay.  At the 1 000-wide acceptance shape that
/// materialization is noise (an 8 KB copy against a 500 k-FLOP walk over a
/// multi-megabyte accumulator, so the gap there is genuinely the tiled
/// kernel), but at small widths it is a visible part of the measured ratio.
///
/// # Panics
/// Panics when `samples == 0` or workload generation fails.
pub fn measure_row_vs_chunk(
    rows: usize,
    variables: usize,
    segments: usize,
    samples: usize,
) -> (Duration, Duration) {
    assert!(samples > 0, "need at least one sample");
    let table = figure4_table(rows, variables, segments, 42 + variables as u64);
    let median = |mode: ExecutionMode| -> Duration {
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| measure_linregr_scan(&table, mode))
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    (
        median(ExecutionMode::RowAtATime),
        median(ExecutionMode::Chunked),
    )
}

/// Runs the full Figure 4 sweep and returns one measurement per cell.
pub fn figure4_sweep(
    segment_counts: &[usize],
    variable_counts: &[usize],
    rows: usize,
    generations: &[KernelGeneration],
) -> Vec<LinregrMeasurement> {
    let mut measurements = Vec::new();
    for &variables in variable_counts {
        // One logical dataset per variable count, re-partitioned per segment
        // count so every cell sees identical data (as in the paper, where the
        // same 10 M-row table is scanned by different cluster sizes).
        let base = figure4_table(rows, variables, 1, 42 + variables as u64);
        for &segments in segment_counts {
            let table = base
                .repartition(segments)
                .expect("repartition of generated data cannot fail");
            for &generation in generations {
                let elapsed = measure_linregr(&table, generation);
                measurements.push(LinregrMeasurement {
                    segments,
                    variables,
                    rows,
                    generation,
                    elapsed,
                });
            }
        }
    }
    measurements
}

/// Renders measurements in the layout of the paper's Figure 4 table
/// (`# segments`, `# variables`, `# rows`, one column per generation).
pub fn render_figure4(measurements: &[LinregrMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(
        "# segments  # variables    # rows      v0.3 (s)  v0.2.1beta (s)  v0.1alpha (s)\n",
    );
    let mut cells: Vec<(usize, usize, usize)> = measurements
        .iter()
        .map(|m| (m.segments, m.variables, m.rows))
        .collect();
    cells.sort_unstable();
    cells.dedup();
    for (segments, variables, rows) in cells {
        let time_of = |generation: KernelGeneration| -> String {
            measurements
                .iter()
                .find(|m| {
                    m.segments == segments
                        && m.variables == variables
                        && m.rows == rows
                        && m.generation == generation
                })
                .map(|m| format!("{:.4}", m.elapsed.as_secs_f64()))
                .unwrap_or_else(|| "-".to_owned())
        };
        out.push_str(&format!(
            "{:>10}  {:>11}  {:>8}  {:>12}  {:>14}  {:>13}\n",
            segments,
            variables,
            rows,
            time_of(KernelGeneration::V03),
            time_of(KernelGeneration::V021Beta),
            time_of(KernelGeneration::V01Alpha),
        ));
    }
    out
}

/// Renders the Figure 5 view of the same measurements: execution time versus
/// the number of independent variables, one series per segment count
/// (v0.3 kernel only), plus the parallel-speedup factors relative to the
/// smallest segment count.
pub fn render_figure5(measurements: &[LinregrMeasurement]) -> String {
    let mut out = String::new();
    let mut segment_counts: Vec<usize> = measurements.iter().map(|m| m.segments).collect();
    segment_counts.sort_unstable();
    segment_counts.dedup();
    let mut variable_counts: Vec<usize> = measurements.iter().map(|m| m.variables).collect();
    variable_counts.sort_unstable();
    variable_counts.dedup();

    out.push_str("# variables");
    for &s in &segment_counts {
        out.push_str(&format!("  {s:>2} seg (s)"));
    }
    out.push('\n');
    for &variables in &variable_counts {
        out.push_str(&format!("{variables:>11}"));
        for &segments in &segment_counts {
            let t = measurements
                .iter()
                .find(|m| {
                    m.variables == variables
                        && m.segments == segments
                        && m.generation == KernelGeneration::V03
                })
                .map(|m| m.elapsed.as_secs_f64());
            match t {
                Some(t) => out.push_str(&format!("  {t:>10.4}")),
                None => out.push_str("           -"),
            }
        }
        out.push('\n');
    }

    // Speedup summary on the largest variable count (the regime where the
    // paper reports near-perfect linear speedup).
    if let (Some(&max_vars), Some(&base_segments)) =
        (variable_counts.last(), segment_counts.first())
    {
        let base_time = measurements
            .iter()
            .find(|m| {
                m.variables == max_vars
                    && m.segments == base_segments
                    && m.generation == KernelGeneration::V03
            })
            .map(|m| m.elapsed.as_secs_f64());
        if let Some(base_time) = base_time {
            out.push_str(&format!(
                "\nspeedup at {max_vars} variables (relative to {base_segments} segment(s)):\n"
            ));
            for &segments in &segment_counts {
                if let Some(t) = measurements
                    .iter()
                    .find(|m| {
                        m.variables == max_vars
                            && m.segments == segments
                            && m.generation == KernelGeneration::V03
                    })
                    .map(|m| m.elapsed.as_secs_f64())
                {
                    out.push_str(&format!(
                        "  {segments:>2} segments: {:.2}x (ideal {:.2}x)\n",
                        base_time / t,
                        segments as f64 / base_segments as f64
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_measurement_per_cell() {
        let measurements = figure4_sweep(
            &[1, 2],
            &[4, 8],
            500,
            &[KernelGeneration::V03, KernelGeneration::V01Alpha],
        );
        assert_eq!(measurements.len(), 2 * 2 * 2);
        assert!(measurements.iter().all(|m| m.elapsed.as_nanos() > 0));
        assert!(measurements.iter().all(|m| m.rows == 500));
    }

    #[test]
    fn rendering_contains_every_cell() {
        let measurements = figure4_sweep(&[1, 2], &[4], 200, &KernelGeneration::ALL);
        let table = render_figure4(&measurements);
        assert!(table.contains("v0.3"));
        assert!(table.contains("v0.1alpha"));
        // Two (segments × variables) cells → header plus two rows.
        assert_eq!(table.lines().count(), 3);

        let fig5 = render_figure5(&measurements);
        assert!(fig5.contains("# variables"));
        assert!(fig5.contains("speedup"));
    }

    #[test]
    fn row_vs_chunk_measurement_produces_positive_times() {
        let (row, chunk) = measure_row_vs_chunk(400, 8, 2, 1);
        assert!(row.as_nanos() > 0);
        assert!(chunk.as_nanos() > 0);
        // Modes must agree on the fitted model (spot check).
        let table = figure4_table(300, 6, 2, 9);
        let chunked = LinearRegression::new("y", "x")
            .fit(&Executor::new(), &table)
            .unwrap();
        let row_based = LinearRegression::new("y", "x")
            .fit(
                &Executor::new().with_mode(ExecutionMode::RowAtATime),
                &table,
            )
            .unwrap();
        for (a, b) in chunked.coef.iter().zip(&row_based.coef) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let a = figure4_table(100, 3, 2, 7);
        let b = figure4_table(100, 3, 2, 7);
        assert_eq!(a.collect_rows(), b.collect_rows());
        let elapsed = measure_linregr(&a, KernelGeneration::V03);
        assert!(elapsed.as_nanos() > 0);
    }
}
