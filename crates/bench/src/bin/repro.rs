//! `repro` — regenerates every table and figure of the MADlib paper's
//! evaluation on the Rust reproduction.
//!
//! ```text
//! cargo run -p madlib-bench --bin repro --release -- all
//! cargo run -p madlib-bench --bin repro --release -- figure4 [--full]
//! cargo run -p madlib-bench --bin repro --release -- figure5 [--full]
//! cargo run -p madlib-bench --bin repro --release -- table1 | table2 | table3
//! cargo run -p madlib-bench --bin repro --release -- logistic | kmeans | overhead
//! cargo run -p madlib-bench --bin repro --release -- rowchunk | grouped [--full]
//! cargo run -p madlib-bench --bin repro --release -- grouped --smoke   # CI-scale
//! cargo run -p madlib-bench --bin repro --release -- kernels [--full|--smoke]
//! cargo run -p madlib-bench --bin repro --release -- predict [--full|--smoke]
//! cargo run -p madlib-bench --bin repro --release -- ingest [--full|--smoke]
//! cargo run -p madlib-bench --bin repro --release -- durability [--full|--smoke]
//! ```
//!
//! With `--full` the Figure 4/5 sweeps use the paper's variable counts
//! (10…320) and a larger row count; the default is a laptop-sized scaledown
//! that preserves the shape of the results.

use madlib_bench::{figure4_sweep, render_figure4, render_figure5};
use madlib_convex::objectives::{
    CrfObjective, LassoObjective, LeastSquaresObjective, LogisticObjective,
    MatrixFactorizationObjective, SvmHingeObjective,
};
use madlib_convex::{ConvexObjective, IgdConfig, IgdRunner, StepSchedule};
use madlib_core::assoc::Apriori;
use madlib_core::classify::{DecisionTree, LinearSvm, NaiveBayes};
use madlib_core::cluster::KMeans;
use madlib_core::datasets;
use madlib_core::factor::LowRankFactorization;
use madlib_core::optim::conjugate_gradient_solve;
use madlib_core::regress::{LinearRegression, LogisticRegression};
use madlib_core::topic::Lda;
use madlib_core::train::Session;
use madlib_engine::{
    row, Column, ColumnType, Database, Dataset, Executor, Row, Schema, Table, Value,
};
use madlib_linalg::kernels::KernelGeneration;
use madlib_linalg::{DenseMatrix, DenseVector, SparseVector};
use madlib_sketch::{profile_table, CountMinSketch, FlajoletMartin, QuantileSummary};
use madlib_text::mcmc::{gibbs_sample, metropolis_hastings_sample, McmcConfig};
use madlib_text::viterbi::viterbi_decode;
use madlib_text::{CrfEstimator, FeatureExtractor, TrigramIndex};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    match command {
        "figure4" => figure4(full),
        "figure5" => figure5(full),
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "logistic" => logistic(),
        "kmeans" => kmeans(),
        "overhead" => overhead(),
        "rowchunk" => rowchunk(full),
        "grouped" => grouped(full, smoke),
        "kernels" => kernels(full, smoke),
        "predict" => predict(full, smoke),
        "ingest" => ingest(full, smoke),
        "durability" => durability(full, smoke),
        "all" => {
            figure4(full);
            figure5(full);
            table1();
            table2();
            table3();
            logistic();
            kmeans();
            overhead();
            rowchunk(full);
            grouped(full, smoke);
            kernels(full, smoke);
            predict(full, smoke);
            ingest(full, smoke);
            durability(full, smoke);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("expected one of: figure4 figure5 table1 table2 table3 logistic kmeans overhead rowchunk grouped kernels predict ingest durability all");
            std::process::exit(2);
        }
    }
}

/// JSON fragment recording the measurement host: core count, detected CPU
/// features and the kernel dispatch path that was active — so a baseline
/// number can always be traced back to the tier that produced it.
fn host_metadata_json() -> String {
    let features = madlib_linalg::kernels::cpu_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "  \"host_cores\": {},\n  \"cpu_features\": [{}],\n  \"kernel_path\": \"{}\",\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        features,
        madlib_linalg::kernels::active_path().label(),
    )
}

/// Kernel-tier sweep: per-kernel GFLOP/s for the scalar reference, the
/// portable unrolled tier and the AVX2 SIMD tier, across the Figure 4/5
/// feature widths.  Records `BENCH_kernels.json` (never on `--smoke`) with
/// the ≥1.3× rank-k acceptance cell and the host's CPU-feature metadata.
fn kernels(full: bool, smoke: bool) {
    println!("== Batched linalg kernels: dispatch-tier throughput (GFLOP/s) ==\n");
    let (widths, target_flops, samples): (&[usize], f64, usize) = if smoke {
        (&[40, 400], 2e7, 1)
    } else if full {
        (&[40, 100, 400, 1000], 4e8, 5)
    } else {
        (&[40, 100, 400, 1000], 1e8, 3)
    };
    println!(
        "active dispatch path: {} (MADLIB_SIMD={}), detected cpu features: {:?}\n",
        madlib_linalg::kernels::active_path().label(),
        std::env::var("MADLIB_SIMD").unwrap_or_else(|_| "unset".to_owned()),
        madlib_linalg::kernels::cpu_features(),
    );
    let measurements = madlib_bench::measure_kernel_tiers(widths, target_flops, samples);
    let gflops_of = |kernel: &str, width: usize, tier: &str| {
        measurements
            .iter()
            .find(|m| m.kernel == kernel && m.width == width && m.tier == tier)
            .map(|m| format!("{:>10.2}", m.gflops))
            .unwrap_or_else(|| format!("{:>10}", "-"))
    };
    println!(
        "{:<30}  {:>6}  {:>6}  {:>10}  {:>10}  {:>10}  {:>8}",
        "kernel", "width", "rows", "scalar", "unrolled", "simd", "speedup"
    );
    let mut kernel_names: Vec<&'static str> = Vec::new();
    for m in &measurements {
        if !kernel_names.contains(&m.kernel) {
            kernel_names.push(m.kernel);
        }
    }
    for kernel in kernel_names {
        for &width in widths {
            let rows = measurements
                .iter()
                .find(|m| m.kernel == kernel && m.width == width)
                .map(|m| m.rows)
                .unwrap_or(0);
            let speedup = madlib_bench::kernel_speedup_cell(&measurements, kernel, width)
                .map(|(_, _, ratio)| format!("{ratio:>7.2}x"))
                .unwrap_or_else(|| format!("{:>8}", "-"));
            println!(
                "{:<30}  {:>6}  {:>6}  {}  {}  {}  {}",
                kernel,
                width,
                rows,
                gflops_of(kernel, width, "scalar"),
                gflops_of(kernel, width, "unrolled"),
                gflops_of(kernel, width, "simd"),
                speedup,
            );
        }
    }

    // The PR's acceptance cell: rank-k at the widest measured shape must
    // beat the scalar tier by ≥1.3×.
    let accept_width = *widths.last().expect("sweep has at least one width");
    if let Some((scalar, best, ratio)) =
        madlib_bench::kernel_speedup_cell(&measurements, "rank_k_update_lower", accept_width)
    {
        println!(
            "\nrank_k_update_lower @ width {accept_width}: scalar {scalar:.2} GFLOP/s -> best {best:.2} GFLOP/s = {ratio:.2}x (acceptance floor 1.3x)",
        );
    }

    if smoke {
        println!("\nsmoke run: baseline JSON left untouched\n");
        return;
    }
    let mut json = String::from("{\n  \"experiment\": \"kernel_dispatch_tiers\",\n");
    json.push_str(&host_metadata_json());
    json.push_str("  \"cells\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"tier\": \"{}\", \"width\": {}, \"rows\": {}, \"seconds\": {:.6}, \"gflops\": {:.4}}}{}\n",
            m.kernel,
            m.tier,
            m.width,
            m.rows,
            m.elapsed.as_secs_f64(),
            m.gflops,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]");
    if let Some((scalar, best, ratio)) =
        madlib_bench::kernel_speedup_cell(&measurements, "rank_k_update_lower", accept_width)
    {
        json.push_str(&format!(
            ",\n  \"acceptance\": {{\"kernel\": \"rank_k_update_lower\", \"width\": {accept_width}, \"scalar_gflops\": {scalar:.4}, \"best_gflops\": {best:.4}, \"speedup\": {ratio:.4}}}"
        ));
    }
    json.push_str("\n}\n");
    match std::fs::write("BENCH_kernels.json", &json) {
        Ok(()) => println!("\nbaseline recorded to BENCH_kernels.json\n"),
        Err(err) => println!("\ncould not write BENCH_kernels.json: {err}\n"),
    }
}

/// Serving sweep: `Dataset::score` with the linregr dot-product scorer —
/// chunked vs row-at-a-time execution vs the naive per-row predict loop —
/// plus the raw `batch_dot` scoring kernel per dispatch tier in millions of
/// rows scored per second.  Records `BENCH_predict.json` (never on
/// `--smoke`) with the ≥2× width-100 acceptance cell and the host's
/// CPU-feature metadata.
fn predict(full: bool, smoke: bool) {
    println!("== In-engine serving: Dataset::score vs the per-row predict loop (linregr) ==\n");
    // Shapes keep the working set cache-resident (≤~16 MB) so the
    // comparison measures the serving inner loop, not DRAM bandwidth —
    // `--full` adds the paper-scale memory-bound shapes on top.
    let (shapes, samples): (&[(usize, usize)], usize) = if smoke {
        (&[(20_000, 10), (10_000, 100)], 1)
    } else if full {
        (
            &[
                (200_000, 10),
                (20_000, 100),
                (2_000, 1000),
                (1_000_000, 10),
                (400_000, 100),
            ],
            5,
        )
    } else {
        (&[(200_000, 10), (20_000, 100), (2_000, 1000)], 5)
    };
    let segments = 4usize;
    println!(
        "active dispatch path: {} (MADLIB_SIMD={}), detected cpu features: {:?}\n",
        madlib_linalg::kernels::active_path().label(),
        std::env::var("MADLIB_SIMD").unwrap_or_else(|_| "unset".to_owned()),
        madlib_linalg::kernels::cpu_features(),
    );
    println!(
        "{:>9}  {:>6}  {:>12}  {:>12}  {:>12}  {:>8}  {:>10}",
        "# rows", "width", "loop (s)", "row (s)", "chunk (s)", "speedup", "Mrows/s"
    );
    let mut measurements = Vec::new();
    for &(rows, width) in shapes {
        let m = madlib_bench::measure_predict(rows, width, segments, samples);
        println!(
            "{:>9}  {:>6}  {:>12.4}  {:>12.4}  {:>12.4}  {:>7.2}x  {:>10.2}",
            m.rows,
            m.width,
            m.per_row_loop.as_secs_f64(),
            m.row_mode.as_secs_f64(),
            m.chunk_mode.as_secs_f64(),
            m.speedup_vs_loop(),
            m.rows_per_sec(m.chunk_mode) / 1e6,
        );
        measurements.push(m);
    }

    println!("\n-- Raw dot-product scoring kernel (batch_dot) per dispatch tier --\n");
    println!(
        "{:>6}  {:>10}  {:>6}  {:>12}",
        "width", "tier", "rows", "Mrows/s"
    );
    let kernel_width = 100usize;
    let kernel_cells = madlib_bench::measure_predict_kernel_tiers(kernel_width, samples);
    for cell in &kernel_cells {
        println!(
            "{:>6}  {:>10}  {:>6}  {:>12.2}",
            cell.width, cell.tier, cell.rows, cell.mrows_per_sec
        );
    }

    // The PR's acceptance cell: chunked Dataset::score at width 100 must
    // beat the per-row predict loop by ≥2×.
    let acceptance = measurements.iter().find(|m| m.width == 100);
    if let Some(m) = acceptance {
        println!(
            "\nDataset::score @ width 100: per-row loop {:.4}s -> chunked {:.4}s = {:.2}x (acceptance floor 2.0x); {:.2}M rows/s chunked",
            m.per_row_loop.as_secs_f64(),
            m.chunk_mode.as_secs_f64(),
            m.speedup_vs_loop(),
            m.rows_per_sec(m.chunk_mode) / 1e6,
        );
    }
    if let Some(best) = kernel_cells
        .iter()
        .max_by(|a, b| a.mrows_per_sec.total_cmp(&b.mrows_per_sec))
    {
        println!(
            "dot-product path @ width {kernel_width}: {:.2}M rows scored/s ({} tier)",
            best.mrows_per_sec, best.tier
        );
    }

    if smoke {
        println!("\nsmoke run: baseline JSON left untouched\n");
        return;
    }
    let mut json = String::from("{\n  \"experiment\": \"predict_serving_sweep\",\n");
    json.push_str(&host_metadata_json());
    json.push_str("  \"cells\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"width\": {}, \"segments\": {}, \"per_row_loop_s\": {:.6}, \"row_mode_s\": {:.6}, \"chunk_mode_s\": {:.6}, \"speedup_vs_loop\": {:.4}, \"chunk_rows_per_sec\": {:.1}}}{}\n",
            m.rows,
            m.width,
            m.segments,
            m.per_row_loop.as_secs_f64(),
            m.row_mode.as_secs_f64(),
            m.chunk_mode.as_secs_f64(),
            m.speedup_vs_loop(),
            m.rows_per_sec(m.chunk_mode),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"dot_kernel_cells\": [\n");
    for (i, cell) in kernel_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tier\": \"{}\", \"width\": {}, \"rows\": {}, \"seconds\": {:.6}, \"mrows_per_sec\": {:.4}}}{}\n",
            cell.tier,
            cell.width,
            cell.rows,
            cell.elapsed.as_secs_f64(),
            cell.mrows_per_sec,
            if i + 1 < kernel_cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]");
    if let Some(m) = acceptance {
        json.push_str(&format!(
            ",\n  \"acceptance\": {{\"width\": 100, \"rows\": {}, \"per_row_loop_s\": {:.6}, \"chunk_mode_s\": {:.6}, \"speedup_vs_loop\": {:.4}, \"chunk_rows_per_sec\": {:.1}}}",
            m.rows,
            m.per_row_loop.as_secs_f64(),
            m.chunk_mode.as_secs_f64(),
            m.speedup_vs_loop(),
            m.rows_per_sec(m.chunk_mode),
        ));
    }
    json.push_str("\n}\n");
    match std::fs::write("BENCH_predict.json", &json) {
        Ok(()) => println!("\nbaseline recorded to BENCH_predict.json\n"),
        Err(err) => println!("\ncould not write BENCH_predict.json: {err}\n"),
    }
}

/// Streaming ingest: `Session::refresh` after a 1% append vs. a full
/// retrain (linregr).  The refresh absorbs only the appended rows into the
/// materialized transition states and re-finalizes, so its cost is
/// O(appended) + finalize while the retrain rescans everything; the two
/// models must be bit-identical (the aggregate is algebraic and the view
/// replays the executor's merge structure exactly).  Records
/// `BENCH_ingest.json` (never on `--smoke`) with the ≥5× width-100
/// acceptance cell and the host's CPU-feature metadata.
fn ingest(full: bool, smoke: bool) {
    println!("== Streaming ingest: refresh-after-append vs. full retrain (linregr) ==\n");
    let (shapes, samples): (&[(usize, usize)], usize) = if smoke {
        (&[(8_000, 20), (4_000, 100)], 1)
    } else if full {
        (&[(40_000, 10), (40_000, 100), (200_000, 100)], 5)
    } else {
        (&[(40_000, 10), (40_000, 100)], 3)
    };
    let segments = 4usize;
    println!(
        "active dispatch path: {} (MADLIB_SIMD={}), detected cpu features: {:?}\n",
        madlib_linalg::kernels::active_path().label(),
        std::env::var("MADLIB_SIMD").unwrap_or_else(|_| "unset".to_owned()),
        madlib_linalg::kernels::cpu_features(),
    );
    println!(
        "{:>8}  {:>6}  {:>8}  {:>12}  {:>12}  {:>8}  {:>9}",
        "# rows", "width", "append", "retrain (s)", "refresh (s)", "speedup", "identical"
    );

    struct IngestCell {
        rows: usize,
        width: usize,
        appended: usize,
        retrain_s: f64,
        refresh_s: f64,
        bit_identical: bool,
    }
    let mut cells: Vec<IngestCell> = Vec::new();

    for &(rows, width) in shapes {
        let data = datasets::linear_regression_data(rows, width, 0.1, segments, 42).unwrap();
        let session = Session::new(Database::new(segments).unwrap());
        session
            .database()
            .register_table("events", data.table)
            .unwrap();
        let estimator = LinearRegression::new("y", "x");
        session
            .train_incremental(&estimator, "events", "ingest_linregr")
            .unwrap();

        let appended = (rows / 100).max(1);
        let mut best_refresh = f64::INFINITY;
        let mut best_retrain = f64::INFINITY;
        let mut bit_identical = true;
        let mut total_rows = rows;
        for sample in 0..samples {
            // Fresh rows from the same generator; inserted through the raw
            // table mutator (not `append_rows`) so the refresh itself pays
            // for the absorb.
            let batch =
                datasets::linear_regression_data(appended, width, 0.1, 1, 1_000 + sample as u64)
                    .unwrap()
                    .table
                    .collect_rows();
            session
                .database()
                .with_table_mut("events", |t| {
                    for r in batch {
                        t.insert(r)?;
                    }
                    Ok(())
                })
                .unwrap();
            total_rows += appended;

            let started = Instant::now();
            let refreshed = session
                .refresh(&estimator, "events", "ingest_linregr")
                .unwrap();
            best_refresh = best_refresh.min(started.elapsed().as_secs_f64());

            let started = Instant::now();
            let retrained = session
                .train(&estimator, &session.dataset("events").unwrap())
                .unwrap();
            best_retrain = best_retrain.min(started.elapsed().as_secs_f64());

            bit_identical &= refreshed.num_rows == total_rows as u64
                && retrained.num_rows == total_rows as u64
                && refreshed.r2.to_bits() == retrained.r2.to_bits()
                && refreshed.coef.len() == retrained.coef.len()
                && refreshed
                    .coef
                    .iter()
                    .zip(&retrained.coef)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
        }
        println!(
            "{:>8}  {:>6}  {:>8}  {:>12.4}  {:>12.4}  {:>7.1}x  {:>9}",
            rows,
            width,
            appended,
            best_retrain,
            best_refresh,
            best_retrain / best_refresh,
            bit_identical,
        );
        cells.push(IngestCell {
            rows,
            width,
            appended,
            retrain_s: best_retrain,
            refresh_s: best_refresh,
            bit_identical,
        });
    }

    // The PR's acceptance cell: refresh after a 1% append at width 100 must
    // beat the full retrain by ≥5×, with bit-identical output.  Smoke runs
    // are CI-scale (finalize dominates at a few thousand rows), so the
    // acceptance cell is only meaningful — and only printed — at full scale.
    let acceptance = cells.iter().rfind(|c| c.width == 100);
    if smoke {
        println!("\nsmoke scale: acceptance cell evaluated only on full-scale runs");
    } else if let Some(c) = acceptance {
        println!(
            "\nrefresh @ width 100 after 1% append: retrain {:.4}s -> refresh {:.4}s = {:.1}x (acceptance floor 5.0x); bit-identical: {}",
            c.retrain_s,
            c.refresh_s,
            c.retrain_s / c.refresh_s,
            c.bit_identical,
        );
    }
    for c in &cells {
        assert!(
            c.bit_identical,
            "refresh diverged from full retrain at rows={} width={}",
            c.rows, c.width
        );
    }

    if smoke {
        println!("\nsmoke run: baseline JSON left untouched\n");
        return;
    }
    let mut json = String::from("{\n  \"experiment\": \"ingest_refresh_vs_retrain\",\n");
    json.push_str(&host_metadata_json());
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"width\": {}, \"segments\": {}, \"appended_rows\": {}, \"retrain_s\": {:.6}, \"refresh_s\": {:.6}, \"speedup\": {:.4}, \"bit_identical\": {}}}{}\n",
            c.rows,
            c.width,
            segments,
            c.appended,
            c.retrain_s,
            c.refresh_s,
            c.retrain_s / c.refresh_s,
            c.bit_identical,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]");
    if let Some(c) = acceptance {
        json.push_str(&format!(
            ",\n  \"acceptance\": {{\"width\": 100, \"rows\": {}, \"appended_rows\": {}, \"retrain_s\": {:.6}, \"refresh_s\": {:.6}, \"speedup\": {:.4}, \"bit_identical\": {}}}",
            c.rows,
            c.appended,
            c.retrain_s,
            c.refresh_s,
            c.retrain_s / c.refresh_s,
            c.bit_identical,
        ));
    }
    json.push_str("\n}\n");
    match std::fs::write("BENCH_ingest.json", &json) {
        Ok(()) => println!("\nbaseline recorded to BENCH_ingest.json\n"),
        Err(err) => println!("\ncould not write BENCH_ingest.json: {err}\n"),
    }
}

/// Durability: group-commit WAL throughput vs. one fsync per append, and
/// recovery time as a function of WAL length.  Concurrent appenders hammer
/// one table; with group commit the leader batches every queued record into
/// a single `write` + `fsync`, so the fsync cost amortizes across the
/// group, while the per-append mode pays one fsync per record (the paper's
/// host DBMS default).  Records `BENCH_durability.json` (never on
/// `--smoke`) with the ≥3× 64-appender acceptance cell.  The scratch
/// directory lives under `target/` — real filesystem, not tmpfs, so the
/// fsyncs being amortized are real ones.
fn durability(full: bool, smoke: bool) {
    println!("== Durability: group-commit WAL vs. per-append fsync, recovery replay ==\n");
    let (appenders, batches, recovery_rows): (usize, usize, &[usize]) = if smoke {
        (8, 10, &[2_000])
    } else if full {
        (64, 50, &[10_000, 40_000, 160_000])
    } else {
        (64, 25, &[10_000, 40_000])
    };
    let rows_per_batch = 4usize;
    let segments = 4usize;
    let schema = Schema::new(vec![
        Column::new("id", ColumnType::Int),
        Column::new("v", ColumnType::Double),
    ]);
    let bench_root = std::path::PathBuf::from("target/durability_bench");

    // -- Group commit vs. per-append fsync at `appenders` concurrent writers.
    let run_commit = |group: bool| -> f64 {
        let dir = bench_root.join(if group { "group" } else { "per_append" });
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let db = Database::open(&dir, segments).unwrap();
        db.set_group_commit(group);
        db.create_table("events", schema.clone()).unwrap();
        let started = Instant::now();
        std::thread::scope(|scope| {
            for tid in 0..appenders {
                let db = &db;
                scope.spawn(move || {
                    for b in 0..batches {
                        let base = (tid * batches + b) * rows_per_batch;
                        db.append_rows(
                            "events",
                            (0..rows_per_batch).map(|i| row![(base + i) as i64, (base + i) as f64]),
                        )
                        .unwrap();
                    }
                });
            }
        });
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(
            db.table("events").unwrap().row_count(),
            appenders * batches * rows_per_batch,
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
        elapsed
    };
    let per_fsync_s = run_commit(false);
    let group_s = run_commit(true);
    let total_appends = (appenders * batches) as f64;
    let speedup = per_fsync_s / group_s;
    println!(
        "{:>10}  {:>8}  {:>16}  {:>16}  {:>8}",
        "appenders", "appends", "per-fsync (a/s)", "group (a/s)", "speedup"
    );
    println!(
        "{:>10}  {:>8}  {:>16.0}  {:>16.0}  {:>7.1}x",
        appenders,
        appenders * batches,
        total_appends / per_fsync_s,
        total_appends / group_s,
        speedup,
    );

    // -- Recovery time vs. WAL length (appends only, no checkpoint: the
    // whole state is replayed from the log).
    struct RecoveryCell {
        rows: usize,
        wal_bytes: u64,
        recover_s: f64,
    }
    let mut recovery: Vec<RecoveryCell> = Vec::new();
    println!(
        "\n{:>10}  {:>12}  {:>12}  {:>14}",
        "# rows", "wal bytes", "recover (s)", "rows/s"
    );
    for &rows in recovery_rows {
        let dir = bench_root.join(format!("recovery_{rows}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_bytes;
        {
            let db = Database::open(&dir, segments).unwrap();
            db.create_table("events", schema.clone()).unwrap();
            for start in (0..rows).step_by(500) {
                let end = (start + 500).min(rows);
                db.append_rows("events", (start..end).map(|i| row![i as i64, i as f64]))
                    .unwrap();
            }
            wal_bytes = db.wal_durable_len().unwrap();
        }
        let started = Instant::now();
        let recovered = Database::recover(&dir).unwrap();
        let recover_s = started.elapsed().as_secs_f64();
        assert_eq!(recovered.table("events").unwrap().row_count(), rows);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "{:>10}  {:>12}  {:>12.4}  {:>14.0}",
            rows,
            wal_bytes,
            recover_s,
            rows as f64 / recover_s,
        );
        recovery.push(RecoveryCell {
            rows,
            wal_bytes,
            recover_s,
        });
    }
    let _ = std::fs::remove_dir_all(&bench_root);

    if smoke {
        println!("\nsmoke scale: acceptance cell evaluated only on full-scale runs");
        println!("\nsmoke run: baseline JSON left untouched\n");
        return;
    }
    println!(
        "\ngroup commit @ {appenders} appenders: per-fsync {per_fsync_s:.4}s -> group {group_s:.4}s = {speedup:.1}x (acceptance floor 3.0x)"
    );

    let mut json = String::from("{\n  \"experiment\": \"durability_wal\",\n");
    json.push_str(&host_metadata_json());
    json.push_str(&format!(
        "  \"commit\": {{\"appenders\": {}, \"batches_per_appender\": {}, \"rows_per_batch\": {}, \"per_fsync_s\": {:.6}, \"group_s\": {:.6}, \"per_fsync_appends_per_s\": {:.1}, \"group_appends_per_s\": {:.1}, \"speedup\": {:.4}}},\n",
        appenders,
        batches,
        rows_per_batch,
        per_fsync_s,
        group_s,
        total_appends / per_fsync_s,
        total_appends / group_s,
        speedup,
    ));
    json.push_str("  \"recovery\": [\n");
    for (i, c) in recovery.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"wal_bytes\": {}, \"recover_s\": {:.6}, \"rows_per_s\": {:.0}}}{}\n",
            c.rows,
            c.wal_bytes,
            c.recover_s,
            c.rows as f64 / c.recover_s,
            if i + 1 < recovery.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"appenders\": {}, \"per_fsync_s\": {:.6}, \"group_s\": {:.6}, \"speedup\": {:.4}, \"floor\": 3.0}}\n",
        appenders, per_fsync_s, group_s, speedup,
    ));
    json.push_str("}\n");
    match std::fs::write("BENCH_durability.json", &json) {
        Ok(()) => println!("\nbaseline recorded to BENCH_durability.json\n"),
        Err(err) => println!("\ncould not write BENCH_durability.json: {err}\n"),
    }
}

/// Row-path vs. chunk-path baseline: the engine's own Figure 4-style
/// inner-loop comparison.  Sweeps feature widths up to the 1 000-wide
/// acceptance shape and prints the measured chunk-path speedup per cell.
fn rowchunk(full: bool) {
    println!("== Row-at-a-time vs. chunk-at-a-time execution (linregr, v0.3 kernel) ==\n");
    let sweep: &[(usize, usize, usize, usize)] = if full {
        &[
            (100_000, 40, 4, 5),
            (40_000, 100, 4, 5),
            (10_000, 400, 4, 3),
            (10_000, 1000, 4, 3),
        ]
    } else {
        &[
            (20_000, 40, 4, 5),
            (8_000, 100, 4, 5),
            (2_000, 400, 4, 3),
            (2_000, 1000, 4, 3),
        ]
    };
    println!(
        "{:>8}  {:>11}  {:>12}  {:>12}  {:>8}",
        "# rows", "# variables", "row (s)", "chunk (s)", "speedup"
    );
    for &(rows, variables, segments, samples) in sweep {
        let (row, chunk) = madlib_bench::measure_row_vs_chunk(rows, variables, segments, samples);
        println!(
            "{rows:>8}  {variables:>11}  {:>12.4}  {:>12.4}  {:>7.2}x",
            row.as_secs_f64(),
            chunk.as_secs_f64(),
            row.as_secs_f64() / chunk.as_secs_f64(),
        );
    }
    println!();
}

/// Grouped row-path vs. chunk-path baseline: the PR-1 single-threaded
/// grouped row loop (display-string keys, per-row transitions) against the
/// segment-parallel chunked grouped scan, swept over the number of groups —
/// including the high-cardinality regime served by the radix partition pass
/// — plus a composite-key (`group_by(["grp", "sub"])`) cell.  Records the
/// measurements to `BENCH_grouped.json` next to the working directory so
/// future sessions can compare against this baseline.
///
/// With `--smoke` the sweep shrinks to a seconds-scale CI check that still
/// exercises the direct-gather, radix and composite paths in both execution
/// modes; smoke runs never overwrite the recorded baseline.
fn grouped(full: bool, smoke: bool) {
    println!(
        "== Grouped aggregation: PR-1 row loop vs. segment-parallel chunked scan (linregr) ==\n"
    );
    let (rows, variables, segments, samples) = if smoke {
        (4_000, 16, 2, 1)
    } else if full {
        (100_000, 100, 4, 5)
    } else {
        (40_000, 100, 4, 3)
    };
    // The smoke sweep keeps one low-cardinality cell (direct gather path)
    // and one ≥1-group-per-chunk-row cell (radix partition path).
    let group_counts: &[usize] = if smoke { &[8, 2048] } else { &[16, 256, 4096] };
    println!(
        "{:>8}  {:>11}  {:>8}  {:>12}  {:>12}  {:>8}",
        "# rows", "# variables", "# groups", "row (s)", "chunk (s)", "speedup"
    );
    let mut measurements = Vec::new();
    for &groups in group_counts {
        let m =
            madlib_bench::measure_grouped_row_vs_chunk(rows, variables, groups, segments, samples);
        println!(
            "{:>8}  {:>11}  {:>8}  {:>12.4}  {:>12.4}  {:>7.2}x",
            m.rows,
            m.variables,
            m.groups,
            m.row_path.as_secs_f64(),
            m.chunk_path.as_secs_f64(),
            m.speedup(),
        );
        measurements.push(m);
    }

    println!(
        "\n== Composite grouping: group_by([\"grp\", \"sub\"]), row-at-a-time vs chunked ==\n"
    );
    let composite_shapes: &[(usize, usize)] = if smoke { &[(8, 8)] } else { &[(64, 64)] };
    println!(
        "{:>8}  {:>11}  {:>8}  {:>12}  {:>12}  {:>8}",
        "# rows", "# variables", "# keys", "row (s)", "chunk (s)", "speedup"
    );
    let mut composite = Vec::new();
    for &(groups, subgroups) in composite_shapes {
        let m = madlib_bench::measure_grouped_composite_row_vs_chunk(
            rows, variables, groups, subgroups, segments, samples,
        );
        println!(
            "{:>8}  {:>11}  {:>8}  {:>12.4}  {:>12.4}  {:>7.2}x",
            m.rows,
            m.variables,
            m.groups,
            m.row_path.as_secs_f64(),
            m.chunk_path.as_secs_f64(),
            m.speedup(),
        );
        composite.push(m);
    }

    println!("\n== Zipf-skewed multi-tenant scan: work-stealing vs static segment striping ==\n");
    let (zipf_groups, zipf_segments, zipf_workers) = if smoke { (64, 8, 4) } else { (512, 16, 4) };
    println!(
        "{:>8}  {:>8}  {:>8}  {:>8}  {:>12}  {:>12}  {:>10}  {:>13}",
        "# rows",
        "# groups",
        "# segs",
        "workers",
        "striped (s)",
        "stealing (s)",
        "wall ratio",
        "makespan gain"
    );
    let zipf = madlib_bench::measure_zipf_schedulers(
        rows,
        variables,
        zipf_groups,
        zipf_segments,
        samples,
        zipf_workers,
    );
    println!(
        "{:>8}  {:>8}  {:>8}  {:>8}  {:>12.4}  {:>12.4}  {:>9.2}x  {:>12.2}x",
        zipf.rows,
        zipf.groups,
        zipf.segments,
        zipf.workers,
        zipf.striped.as_secs_f64(),
        zipf.stealing.as_secs_f64(),
        zipf.wall_clock_ratio(),
        zipf.makespan_ratio(),
    );
    println!(
        "(makespan gain = busiest worker's row share, striped / stealing: the wall-clock\n ratio a {}-core host approaches; wall ratio on this host reflects {} available core(s))",
        zipf.workers,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    );

    println!(
        "\n== Stealing granularity on the hot segment: whole-segment vs chunk-range units ==\n"
    );
    // Few Zipf tenants, so the top group alone (~37% of the rows under
    // Zipf(1) with 8 ranks) outweighs a worker's ideal 1/4 share: whole-
    // segment stealing is then bounded by the hot segment no matter how the
    // other segments are packed, while chunk-range units split it.
    let (cr_groups, cr_segments, cr_workers) = if smoke { (8, 4, 2) } else { (8, 8, 4) };
    let chunk_range = madlib_bench::measure_zipf_chunk_range(
        rows,
        variables,
        cr_groups,
        cr_segments,
        samples,
        cr_workers,
    );
    println!(
        "{:>8}  {:>8}  {:>10}  {:>10}  {:>14}  {:>14}  {:>13}",
        "# segs",
        "workers",
        "seg units",
        "cr units",
        "seg makespan",
        "cr makespan",
        "makespan gain"
    );
    println!(
        "{:>8}  {:>8}  {:>10}  {:>10}  {:>14}  {:>14}  {:>12.2}x",
        chunk_range.segments,
        chunk_range.workers,
        chunk_range.segment_units,
        chunk_range.chunk_range_units,
        chunk_range.segment_makespan_rows,
        chunk_range.chunk_range_makespan_rows,
        chunk_range.makespan_ratio(),
    );
    println!(
        "(grouped linregr scan wall clock: segment-granular {:.4}s, chunk-range {:.4}s;\n parallel chunk-range output verified bit-identical to the serial run)",
        chunk_range.segment_granular.as_secs_f64(),
        chunk_range.chunk_range.as_secs_f64(),
    );

    if smoke {
        let zt = madlib_bench::measure_grouped_training_zipf(
            rows,
            variables,
            zipf_groups,
            segments,
            samples,
        );
        println!(
            "\nzipf grouped training ({} groups): row {:.4}s  chunk {:.4}s  {:.2}x",
            zt.groups,
            zt.row_path.as_secs_f64(),
            zt.chunk_path.as_secs_f64(),
            zt.speedup(),
        );
        println!("\nsmoke run: baseline JSON left untouched\n");
        return;
    }
    let cell_json = |m: &madlib_bench::GroupedMeasurement, last: bool| {
        format!(
            "    {{\"rows\": {}, \"variables\": {}, \"groups\": {}, \"segments\": {}, \"row_s\": {:.6}, \"chunk_s\": {:.6}, \"speedup\": {:.4}}}{}\n",
            m.rows,
            m.variables,
            m.groups,
            m.segments,
            m.row_path.as_secs_f64(),
            m.chunk_path.as_secs_f64(),
            m.speedup(),
            if last { "" } else { "," },
        )
    };
    let mut json = String::from("{\n  \"experiment\": \"grouped_linregr_row_vs_chunk\",\n");
    json.push_str(&host_metadata_json());
    json.push_str("  \"cells\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&cell_json(m, i + 1 == measurements.len()));
    }
    json.push_str("  ],\n  \"composite_cells\": [\n");
    for (i, m) in composite.iter().enumerate() {
        json.push_str(&cell_json(m, i + 1 == composite.len()));
    }
    json.push_str("  ],\n  \"zipf_scheduler_cells\": [\n");
    json.push_str(&format!(
        "    {{\"rows\": {}, \"variables\": {}, \"groups\": {}, \"segments\": {}, \"workers\": {}, \"host_cores\": {}, \"striped_s\": {:.6}, \"stealing_s\": {:.6}, \"wall_clock_ratio\": {:.4}, \"striped_makespan_rows\": {}, \"stealing_makespan_rows\": {}, \"makespan_ratio\": {:.4}}}\n",
        zipf.rows,
        zipf.variables,
        zipf.groups,
        zipf.segments,
        zipf.workers,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        zipf.striped.as_secs_f64(),
        zipf.stealing.as_secs_f64(),
        zipf.wall_clock_ratio(),
        zipf.striped_makespan_rows,
        zipf.stealing_makespan_rows,
        zipf.makespan_ratio(),
    ));
    json.push_str("  ],\n  \"steal_granularity_cells\": [\n");
    json.push_str(&format!(
        "    {{\"rows\": {}, \"variables\": {}, \"groups\": {}, \"segments\": {}, \"workers\": {}, \"segment_units\": {}, \"chunk_range_units\": {}, \"segment_makespan_rows\": {}, \"chunk_range_makespan_rows\": {}, \"makespan_ratio\": {:.4}, \"segment_granular_s\": {:.6}, \"chunk_range_s\": {:.6}, \"parallel_matches_serial\": true}}\n",
        chunk_range.rows,
        chunk_range.variables,
        chunk_range.groups,
        chunk_range.segments,
        chunk_range.workers,
        chunk_range.segment_units,
        chunk_range.chunk_range_units,
        chunk_range.segment_makespan_rows,
        chunk_range.chunk_range_makespan_rows,
        chunk_range.makespan_ratio(),
        chunk_range.segment_granular.as_secs_f64(),
        chunk_range.chunk_range.as_secs_f64(),
    ));
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_grouped.json", &json) {
        Ok(()) => println!("\nbaseline recorded to BENCH_grouped.json\n"),
        Err(err) => println!("\ncould not write BENCH_grouped.json: {err}\n"),
    }

    grouped_training(full);
}

/// Grouped-*training* sweep: full per-group linear-regression fits through
/// `Session::train_grouped` (one model per group in a single grouped scan),
/// chunked vs row-at-a-time execution.  Records the measurements to
/// `BENCH_grouped_train.json`.
fn grouped_training(full: bool) {
    println!(
        "== Grouped training: Session::train_grouped per-group linregr, row vs chunk mode ==\n"
    );
    let (rows, variables, segments, samples) = if full {
        (100_000, 100, 4, 5)
    } else {
        (40_000, 100, 4, 3)
    };
    println!(
        "{:>8}  {:>11}  {:>8}  {:>12}  {:>12}  {:>8}",
        "# rows", "# variables", "# groups", "row (s)", "chunk (s)", "speedup"
    );
    let mut measurements = Vec::new();
    for &groups in &[16usize, 256] {
        let m = madlib_bench::measure_grouped_training(rows, variables, groups, segments, samples);
        println!(
            "{:>8}  {:>11}  {:>8}  {:>12.4}  {:>12.4}  {:>7.2}x",
            m.rows,
            m.variables,
            m.groups,
            m.row_path.as_secs_f64(),
            m.chunk_path.as_secs_f64(),
            m.speedup(),
        );
        measurements.push(m);
    }

    println!("\n-- Zipf-skewed group sizes (group g holds ~1/(g+1) of the rows) --\n");
    let mut zipf_cells = Vec::new();
    let zipf_group_counts: &[usize] = &[256];
    for &groups in zipf_group_counts {
        let m =
            madlib_bench::measure_grouped_training_zipf(rows, variables, groups, segments, samples);
        println!(
            "{:>8}  {:>11}  {:>8}  {:>12.4}  {:>12.4}  {:>7.2}x",
            m.rows,
            m.variables,
            m.groups,
            m.row_path.as_secs_f64(),
            m.chunk_path.as_secs_f64(),
            m.speedup(),
        );
        zipf_cells.push(m);
    }

    let mut json = String::from(
        "{\n  \"experiment\": \"grouped_linregr_training_row_vs_chunk\",\n  \"cells\": [\n",
    );
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"variables\": {}, \"groups\": {}, \"segments\": {}, \"row_s\": {:.6}, \"chunk_s\": {:.6}, \"speedup\": {:.4}}}{}\n",
            m.rows,
            m.variables,
            m.groups,
            m.segments,
            m.row_path.as_secs_f64(),
            m.chunk_path.as_secs_f64(),
            m.speedup(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"zipf_cells\": [\n");
    for (i, m) in zipf_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"variables\": {}, \"groups\": {}, \"segments\": {}, \"row_s\": {:.6}, \"chunk_s\": {:.6}, \"speedup\": {:.4}}}{}\n",
            m.rows,
            m.variables,
            m.groups,
            m.segments,
            m.row_path.as_secs_f64(),
            m.chunk_path.as_secs_f64(),
            m.speedup(),
            if i + 1 < zipf_cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_grouped_train.json", &json) {
        Ok(()) => println!("\nbaseline recorded to BENCH_grouped_train.json\n"),
        Err(err) => println!("\ncould not write BENCH_grouped_train.json: {err}\n"),
    }
}

fn sweep_parameters(full: bool) -> (Vec<usize>, Vec<usize>, usize) {
    if full {
        // The paper's grid (segments scaled to the worker count the engine
        // will actually use — MADLIB_THREADS override included).
        let cores = madlib_engine::scan::worker_count();
        let segments: Vec<usize> = [6, 12, 18, 24]
            .iter()
            .map(|&s| s.min(cores))
            .collect::<Vec<_>>();
        (segments, vec![10, 20, 40, 80, 160, 320], 1_000_000)
    } else {
        (vec![1, 2, 4, 8], vec![10, 20, 40, 80], 50_000)
    }
}

fn figure4(full: bool) {
    let (segments, variables, rows) = sweep_parameters(full);
    println!("== Figure 4: linear-regression execution times ==");
    println!(
        "(rows = {rows}, segments = {segments:?}, variables = {variables:?}; paper: 10M rows on a 24-core Greenplum cluster)\n"
    );
    let measurements = figure4_sweep(&segments, &variables, rows, &KernelGeneration::ALL);
    println!("{}", render_figure4(&measurements));
}

fn figure5(full: bool) {
    let (segments, variables, rows) = sweep_parameters(full);
    println!("== Figure 5: execution time vs. #variables per segment count (v0.3) ==\n");
    let measurements = figure4_sweep(&segments, &variables, rows, &[KernelGeneration::V03]);
    println!("{}", render_figure5(&measurements));
}

fn check(name: &str, passed: bool, detail: String) {
    println!(
        "  [{}] {:<28} {}",
        if passed { "ok" } else { "FAIL" },
        name,
        detail
    );
}

#[allow(clippy::too_many_lines)]
fn table1() {
    println!("== Table 1: methods provided in MADlib v0.3 (reproduction status) ==");
    let executor = Executor::new();
    let session = Session::new(Database::new(4).unwrap());

    // Supervised learning.
    let lin = datasets::linear_regression_data(2_000, 5, 0.1, 4, 1).unwrap();
    let lin_model = session
        .train(
            &LinearRegression::new("y", "x"),
            &Dataset::from_table(&lin.table),
        )
        .unwrap();
    check(
        "Linear Regression",
        lin_model.r2 > 0.9,
        format!("r2 = {:.4}", lin_model.r2),
    );

    let logit = datasets::logistic_regression_data(2_000, 3, 4, 2).unwrap();
    let logit_model = session
        .train(
            &LogisticRegression::new("y", "x"),
            &Dataset::from_table(&logit.table),
        )
        .unwrap();
    check(
        "Logistic Regression",
        logit_model.converged,
        format!("{} IRLS iterations", logit_model.num_iterations),
    );

    let nb_schema = Schema::new(vec![
        Column::new("label", ColumnType::Text),
        Column::new("features", ColumnType::DoubleArray),
    ]);
    let mut nb_table = Table::new(nb_schema.clone(), 4).unwrap();
    for i in 0..200 {
        let (label, center) = if i % 2 == 0 { ("a", 0.0) } else { ("b", 5.0) };
        nb_table
            .insert(row![label, vec![center + (i % 7) as f64 * 0.1]])
            .unwrap();
    }
    let nb = session
        .train(
            &NaiveBayes::new("label", "features"),
            &Dataset::from_table(&nb_table),
        )
        .unwrap();
    check(
        "Naive Bayes Classification",
        nb.predict(&[0.1]).unwrap() == "a" && nb.predict(&[5.1]).unwrap() == "b",
        format!("{} classes", nb.classes.len()),
    );

    let mut dt_table = Table::new(nb_schema, 4).unwrap();
    for i in 0..200 {
        let x = i as f64 / 20.0;
        let label = if x > 5.0 { "high" } else { "low" };
        dt_table.insert(row![label, vec![x]]).unwrap();
    }
    let dt = session
        .train(
            &DecisionTree::new("label", "features"),
            &Dataset::from_table(&dt_table),
        )
        .unwrap();
    check(
        "Decision Trees (C4.5)",
        dt.predict(&[9.0]).unwrap() == "high" && dt.predict(&[1.0]).unwrap() == "low",
        format!("{} leaves", dt.leaf_count()),
    );

    let svm_data = datasets::logistic_regression_data(1_000, 3, 4, 5).unwrap();
    let svm = session
        .train(
            &LinearSvm::new("y", "x").with_epochs(15),
            &Dataset::from_table(&svm_data.table),
        )
        .unwrap();
    check(
        "Support Vector Machines",
        svm.final_objective.is_finite(),
        format!("objective = {:.4}", svm.final_objective),
    );

    // Unsupervised learning.
    let blobs = datasets::gaussian_blobs(600, 3, 2, 0.5, 4, 7).unwrap();
    let km = session
        .train(
            &KMeans::new("coords", 3).unwrap(),
            &Dataset::from_table(&blobs.table),
        )
        .unwrap();
    check(
        "k-Means Clustering",
        km.converged,
        format!("{} iterations, inertia = {:.1}", km.iterations, km.inertia),
    );

    let ratings = datasets::ratings_data(30, 25, 2, 0.5, 4, 9).unwrap();
    let mf = session
        .train(
            &LowRankFactorization::new("user_id", "item_id", "rating", 4)
                .unwrap()
                .with_epochs(40),
            &Dataset::from_table(&ratings),
        )
        .unwrap();
    check(
        "SVD Matrix Factorization",
        mf.train_rmse < 0.3,
        format!("train RMSE = {:.4}", mf.train_rmse),
    );

    let corpus = datasets::document_corpus(30, 3, 15, 40, 4, 11).unwrap();
    let lda = session
        .train(
            &Lda::new("tokens", 3)
                .unwrap()
                .with_alpha(0.1)
                .with_iterations(80),
            &Dataset::from_table(&corpus),
        )
        .unwrap();
    check(
        "Latent Dirichlet Allocation",
        lda.top_words(0, 5).unwrap().len() == 5,
        format!(
            "{} topics over {} words",
            lda.num_topics,
            lda.vocabulary.len()
        ),
    );

    let baskets = datasets::market_basket_data(800, 25, 4, 13).unwrap();
    let basket_model = session
        .train(
            &Apriori::new("items", 0.2, 0.6).unwrap(),
            &Dataset::from_table(&baskets),
        )
        .unwrap();
    check(
        "Association Rules",
        !basket_model.rules.is_empty(),
        format!("{} rules found", basket_model.rules.len()),
    );

    // Descriptive statistics.
    let mut cm = CountMinSketch::with_error_bounds(0.01, 0.01);
    for i in 0..10_000u64 {
        cm.update(&format!("key{}", i % 97), 1);
    }
    check(
        "Count-Min Sketch",
        cm.estimate("key0") >= 10_000 / 97,
        format!("estimate(key0) = {}", cm.estimate("key0")),
    );

    let mut fm = FlajoletMartin::new(64);
    for i in 0..5_000 {
        fm.update(&format!("user{i}"));
    }
    check(
        "Flajolet-Martin Sketch",
        (fm.estimate() - 5_000.0).abs() / 5_000.0 < 0.35,
        format!("estimate = {:.0} (true 5000)", fm.estimate()),
    );

    let profile = profile_table(&executor, &lin.table).unwrap();
    check(
        "Data Profiling",
        profile.columns.len() == 2,
        format!("{} columns profiled", profile.columns.len()),
    );

    let mut quantiles = QuantileSummary::new(0.01);
    for i in 0..10_000 {
        quantiles.insert(i as f64);
    }
    check(
        "Quantiles",
        (quantiles.median().unwrap() - 5_000.0).abs() < 300.0,
        format!("median ≈ {:.0}", quantiles.median().unwrap()),
    );

    // Support modules.
    let sparse = SparseVector::from_dense(&[0.0, 0.0, 3.0, 3.0, 0.0, 0.0, 0.0, 1.0]);
    check(
        "Sparse Vectors",
        sparse.run_count() < sparse.len(),
        format!("{} runs for {} elements", sparse.run_count(), sparse.len()),
    );
    check(
        "Array Operations",
        madlib_linalg::array_ops::array_dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap() == 11.0,
        "dot([1,2],[3,4]) = 11".to_owned(),
    );
    let spd = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
    let cg =
        conjugate_gradient_solve(&spd, &DenseVector::from_vec(vec![1.0, 2.0]), 1e-10, 50).unwrap();
    check(
        "Conjugate Gradient",
        cg.converged,
        format!("{} iterations", cg.iterations),
    );
    println!();
}

fn table2() {
    println!("== Table 2: models implemented via the convex (SGD) framework ==");
    let executor = Executor::new();
    let run = |name: &str,
               objective: &dyn DynObjective,
               table: &Table,
               initial: Vec<f64>,
               epochs: usize| {
        let runner = IgdRunner::new(IgdConfig {
            max_epochs: epochs,
            tolerance: 1e-8,
            schedule: StepSchedule::Constant(0.05),
        });
        let db = Database::new(table.num_segments()).unwrap();
        let summary = objective.run(&runner, &executor, &db, table, initial);
        let reduction = 100.0 * (1.0 - summary.1 / summary.0.max(1e-12));
        println!(
            "  {:<22} initial objective {:>12.4}  final {:>12.4}  reduction {:>5.1}%  epochs {}",
            name, summary.0, summary.1, reduction, summary.2
        );
    };

    let reg = datasets::linear_regression_data(3_000, 6, 0.1, 4, 21).unwrap();
    let cls = datasets::logistic_regression_data(3_000, 6, 4, 22).unwrap();

    let ls = LeastSquaresObjective::new("y", "x", 6);
    run("Least Squares", &ls, &reg.table, vec![0.0; 6], 40);
    let lasso = LassoObjective::new("y", "x", 6, 0.01);
    run("Lasso", &lasso, &reg.table, vec![0.0; 6], 40);
    let logistic = LogisticObjective::new("y", "x", 6);
    run(
        "Logistic Regression",
        &logistic,
        &cls.table,
        vec![0.0; 6],
        40,
    );
    let svm = SvmHingeObjective::new("y", "x", 6, 1e-3);
    run("Classification (SVM)", &svm, &cls.table, vec![0.0; 6], 40);

    let ratings = datasets::ratings_data(40, 30, 2, 0.4, 4, 23).unwrap();
    let mf = MatrixFactorizationObjective::new("user_id", "item_id", "rating", 40, 30, 4, 1e-4);
    let initial = mf.initial_model();
    run("Recommendation", &mf, &ratings, initial, 80);

    let crf_table = crf_corpus(60, 4);
    let crf = CrfObjective::new("observations", "labels", 2, 4);
    let crf_dim = crf.dimension();
    run("Labeling (CRF)", &crf, &crf_table, vec![0.0; crf_dim], 40);
    println!();
}

/// Object-safe adapter so `table2` can iterate heterogeneous objectives.
trait DynObjective {
    fn run(
        &self,
        runner: &IgdRunner,
        executor: &Executor,
        db: &Database,
        table: &Table,
        initial: Vec<f64>,
    ) -> (f64, f64, usize);
}

impl<O: ConvexObjective> DynObjective for O {
    fn run(
        &self,
        runner: &IgdRunner,
        executor: &Executor,
        db: &Database,
        table: &Table,
        initial: Vec<f64>,
    ) -> (f64, f64, usize) {
        let summary = runner
            .run(executor, db, table, self, initial)
            .expect("IGD training failed");
        (
            summary.initial_objective_value,
            summary.objective_value,
            summary.epochs,
        )
    }
}

/// Small synthetic CRF training corpus shared by table2/table3.
fn crf_corpus(sequences: usize, segments: usize) -> Table {
    let schema = Schema::new(vec![
        Column::new("observations", ColumnType::IntArray),
        Column::new("labels", ColumnType::IntArray),
    ]);
    let mut t = Table::new(schema, segments).unwrap();
    for s in 0..sequences {
        let length = 6 + s % 4;
        let mut observations = Vec::new();
        let mut labels = Vec::new();
        for idx in 0..length {
            let label = (idx + s) % 2;
            observations.push((label * 2 + s % 2) as i64);
            labels.push(label as i64);
        }
        t.insert(Row::new(vec![
            Value::IntArray(observations),
            Value::IntArray(labels),
        ]))
        .unwrap();
    }
    t
}

fn table3() {
    println!("== Table 3: statistical text-analysis methods (POS / NER / ER) ==");
    let db = Database::new(4).unwrap();

    // Text feature extraction.
    let extractor = FeatureExtractor::new().with_dictionary("person", ["tim", "alice", "bob"]);
    let tokens = madlib_text::tokenize("Tim Tebow visited Denver in 2011");
    let features = extractor.extract(&tokens);
    check(
        "Text Feature Extraction",
        features[0].active.iter().any(|f| f == "dict:person"),
        format!(
            "{} tokens, {} features on token 0",
            tokens.len(),
            features[0].active.len()
        ),
    );

    // CRF training + Viterbi inference.
    let corpus = crf_corpus(60, 4);
    let crf = Session::new(db.clone())
        .train(
            &CrfEstimator::new("observations", "labels", 2, 4).with_epochs(40),
            &Dataset::from_table(&corpus),
        )
        .unwrap();
    let observations = [0usize, 3, 0, 3, 0];
    let (labels, score) = viterbi_decode(&crf, &observations).unwrap();
    check(
        "Viterbi Inference",
        labels == vec![0, 1, 0, 1, 0],
        format!("decoded {labels:?} with score {score:.2}"),
    );

    // MCMC inference.
    let config = McmcConfig {
        samples: 400,
        burn_in: 100,
        seed: 5,
    };
    let gibbs = gibbs_sample(&crf, &observations, &config).unwrap();
    let mh = metropolis_hastings_sample(&crf, &observations, &config).unwrap();
    check(
        "MCMC Inference (Gibbs/MH)",
        gibbs.map_labels == labels && mh.map_labels == labels,
        format!(
            "Gibbs confidence {:.2}, MH acceptance {:.2}",
            gibbs.marginals[0][labels[0]], mh.acceptance_rate
        ),
    );

    // Approximate string matching (entity resolution).
    let mut index = TrigramIndex::new();
    index.insert("Tim Tebow threw for 300 yards");
    index.insert("Peyton Manning led the drive");
    index.insert("tim tebo signs autographs");
    let matches = index.search("Tim Tebow", 0.5);
    check(
        "Approximate String Matching",
        matches.len() == 2,
        format!("{} approximate mentions of 'Tim Tebow'", matches.len()),
    );
    println!();
}

fn logistic() {
    println!("== Section 4.2: logistic regression via the IRLS driver (Figure 3 control flow) ==");
    let session = Session::new(Database::new(4).unwrap());
    let data = datasets::logistic_regression_data(20_000, 10, 4, 31).unwrap();
    let start = Instant::now();
    let model = session
        .train(
            &LogisticRegression::new("y", "x"),
            &Dataset::from_table(&data.table),
        )
        .unwrap();
    println!(
        "  20k rows × 10 variables: {} iterations, converged = {}, {:.3}s total, log-likelihood {:.1}\n",
        model.num_iterations,
        model.converged,
        start.elapsed().as_secs_f64(),
        model.log_likelihood
    );
}

fn kmeans() {
    println!("== Section 4.3: k-means large-state iteration ==");
    let session = Session::new(Database::new(4).unwrap());
    let data = datasets::gaussian_blobs(20_000, 5, 8, 1.0, 4, 37).unwrap();
    let start = Instant::now();
    let model = session
        .train(
            &KMeans::new("coords", 5).unwrap(),
            &Dataset::from_table(&data.table),
        )
        .unwrap();
    println!(
        "  20k points × 8 dims, k=5: {} iterations, converged = {}, inertia {:.0}, {:.3}s total\n",
        model.iterations,
        model.converged,
        model.inertia,
        start.elapsed().as_secs_f64()
    );
}

fn overhead() {
    println!("== Section 4.4: per-query overhead of the aggregate machinery ==");
    let table = madlib_bench::figure4_table(10, 2, 4, 3);
    let start = Instant::now();
    let iterations = 100;
    for _ in 0..iterations {
        let _ = madlib_bench::measure_linregr(&table, KernelGeneration::V03);
    }
    let per_query = start.elapsed().as_secs_f64() / iterations as f64;
    println!(
        "  tiny (10-row) linregr query: {:.6}s per query ({} samples) — the paper reports a fraction of a second\n",
        per_query, iterations
    );
}
