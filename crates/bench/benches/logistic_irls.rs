//! Section 4.2: one IRLS fit of binary logistic regression (driver loop +
//! per-iteration parallel aggregate).

use criterion::{criterion_group, criterion_main, Criterion};
use madlib_core::datasets::logistic_regression_data;
use madlib_core::regress::LogisticRegression;
use madlib_core::train::Session;
use madlib_engine::{Database, Dataset};

fn bench_irls(c: &mut Criterion) {
    let mut group = c.benchmark_group("logistic_irls");
    group.sample_size(10);
    let data = logistic_regression_data(5_000, 8, 4, 3).unwrap();
    group.bench_function("fit_5000x8", |b| {
        b.iter(|| {
            let session = Session::new(Database::new(4).unwrap());
            session
                .train(
                    &LogisticRegression::new("y", "x").with_max_iterations(10),
                    &Dataset::from_table(&data.table),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_irls);
criterion_main!(benches);
