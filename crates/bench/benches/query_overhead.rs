//! Section 4.4: "the overhead for a single query is very low and only a
//! fraction of a second" — the fixed cost of one aggregate execution on a
//! tiny table.

use criterion::{criterion_group, criterion_main, Criterion};
use madlib_bench::{figure4_table, measure_linregr};
use madlib_engine::aggregate::CountAggregate;
use madlib_engine::Executor;
use madlib_linalg::kernels::KernelGeneration;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_overhead");
    let tiny = figure4_table(10, 2, 4, 1);
    group.bench_function("linregr_10_rows", |b| {
        b.iter(|| measure_linregr(&tiny, KernelGeneration::V03))
    });
    group.bench_function("count_star_10_rows", |b| {
        let executor = Executor::new();
        b.iter(|| executor.aggregate(&tiny, &CountAggregate).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
