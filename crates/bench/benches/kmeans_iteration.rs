//! Section 4.3: k-means Lloyd iterations over the engine (large-state
//! iteration pattern).

use criterion::{criterion_group, criterion_main, Criterion};
use madlib_core::cluster::KMeans;
use madlib_core::datasets::gaussian_blobs;
use madlib_engine::{Database, Executor};

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    let data = gaussian_blobs(5_000, 4, 4, 1.0, 4, 5).unwrap();
    group.bench_function("fit_5000x4_k4", |b| {
        b.iter(|| {
            let db = Database::new(4).unwrap();
            KMeans::new("coords", 4)
                .unwrap()
                .with_max_iterations(10)
                .fit(&Executor::new(), &db, &data.table)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
