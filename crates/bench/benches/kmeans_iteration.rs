//! Section 4.3: k-means Lloyd iterations over the engine (large-state
//! iteration pattern), swept over row-at-a-time vs. chunk-at-a-time
//! execution of the assignment aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madlib_core::cluster::KMeans;
use madlib_core::datasets::gaussian_blobs;
use madlib_core::train::Session;
use madlib_engine::{Database, Dataset, ExecutionMode, Executor};

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    let data = gaussian_blobs(5_000, 4, 4, 1.0, 4, 5).unwrap();
    for (label, mode) in [
        ("chunk", ExecutionMode::Chunked),
        ("row", ExecutionMode::RowAtATime),
    ] {
        group.bench_with_input(
            BenchmarkId::new("fit_5000x4_k4", label),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let session = Session::new(Database::new(4).unwrap())
                        .with_executor(Executor::new().with_mode(mode));
                    session
                        .train(
                            &KMeans::new("coords", 4).unwrap().with_max_iterations(10),
                            &Dataset::from_table(&data.table),
                        )
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
