//! Table 2: one SGD (IGD) epoch sweep for representative objectives of the
//! convex-optimization framework.

use criterion::{criterion_group, criterion_main, Criterion};
use madlib_convex::objectives::{LeastSquaresObjective, LogisticObjective, SvmHingeObjective};
use madlib_convex::{ConvexObjective, IgdConfig, IgdRunner, StepSchedule};
use madlib_core::datasets::{linear_regression_data, logistic_regression_data};
use madlib_engine::{Database, Executor, Table};

fn train<O: ConvexObjective>(objective: &O, table: &Table, epochs: usize) {
    let runner = IgdRunner::new(IgdConfig {
        max_epochs: epochs,
        tolerance: 1e-9,
        schedule: StepSchedule::Constant(0.05),
    });
    let db = Database::new(table.num_segments()).unwrap();
    runner
        .run(
            &Executor::new(),
            &db,
            table,
            objective,
            vec![0.0; objective.dimension()],
        )
        .unwrap();
}

fn bench_sgd(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_sgd");
    group.sample_size(10);
    let reg = linear_regression_data(5_000, 8, 0.1, 4, 1).unwrap();
    let cls = logistic_regression_data(5_000, 8, 4, 2).unwrap();
    group.bench_function("least_squares_10_epochs", |b| {
        let objective = LeastSquaresObjective::new("y", "x", 8);
        b.iter(|| train(&objective, &reg.table, 10))
    });
    group.bench_function("logistic_10_epochs", |b| {
        let objective = LogisticObjective::new("y", "x", 8);
        b.iter(|| train(&objective, &cls.table, 10))
    });
    group.bench_function("svm_10_epochs", |b| {
        let objective = SvmHingeObjective::new("y", "x", 8, 1e-3);
        b.iter(|| train(&objective, &cls.table, 10))
    });
    group.finish();
}

criterion_group!(benches, bench_sgd);
criterion_main!(benches);
