//! Figure 4/5 (segments × variables axes): linear-regression aggregate time
//! as the number of segments and independent variables grows (v0.3 kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madlib_bench::{figure4_table, measure_linregr};
use madlib_linalg::kernels::KernelGeneration;

fn bench_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_segments");
    group.sample_size(10);
    let base = figure4_table(20_000, 40, 1, 7);
    for segments in [1usize, 2, 4, 8] {
        let table = base.repartition(segments).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(segments), &table, |b, t| {
            b.iter(|| measure_linregr(t, KernelGeneration::V03))
        });
    }
    group.finish();
}

fn bench_variables(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_variables");
    group.sample_size(10);
    for variables in [10usize, 20, 40, 80] {
        let table = figure4_table(10_000, variables, 4, 11);
        group.bench_with_input(BenchmarkId::from_parameter(variables), &table, |b, t| {
            b.iter(|| measure_linregr(t, KernelGeneration::V03))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segments, bench_variables);
criterion_main!(benches);
