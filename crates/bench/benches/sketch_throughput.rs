//! Table 1 descriptive-statistics modules: sketch update/query throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use madlib_sketch::{CountMinSketch, FlajoletMartin, QuantileSummary};

fn bench_sketches(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketches");
    group.sample_size(20);
    let keys: Vec<String> = (0..10_000).map(|i| format!("key_{}", i % 997)).collect();
    group.bench_function("countmin_10k_updates", |b| {
        b.iter(|| {
            let mut sketch = CountMinSketch::new(5, 512);
            for key in &keys {
                sketch.update(key, 1);
            }
            sketch.estimate("key_0")
        })
    });
    group.bench_function("fm_10k_updates", |b| {
        b.iter(|| {
            let mut sketch = FlajoletMartin::new(64);
            for key in &keys {
                sketch.update(key);
            }
            sketch.estimate()
        })
    });
    group.bench_function("gk_quantile_10k_inserts", |b| {
        b.iter(|| {
            let mut summary = QuantileSummary::new(0.01);
            for i in 0..10_000 {
                summary.insert(((i * 7919) % 10_000) as f64);
            }
            summary.median()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sketches);
criterion_main!(benches);
