//! Table 3: Viterbi and MCMC inference throughput over a trained CRF.

use criterion::{criterion_group, criterion_main, Criterion};
use madlib_text::mcmc::{gibbs_sample, McmcConfig};
use madlib_text::viterbi::{viterbi_decode, viterbi_top_k};
use madlib_text::ChainCrf;

fn toy_crf() -> ChainCrf {
    let num_labels = 4;
    let num_observations = 16;
    let mut weights = vec![0.0; num_labels * num_observations + num_labels * num_labels];
    for obs in 0..num_observations {
        weights[(obs % num_labels) * num_observations + obs] = 2.0;
    }
    ChainCrf::from_weights(num_labels, num_observations, weights).unwrap()
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_inference");
    group.sample_size(20);
    let crf = toy_crf();
    let observations: Vec<usize> = (0..60).map(|i| i % 16).collect();
    group.bench_function("viterbi_top1_len60", |b| {
        b.iter(|| viterbi_decode(&crf, &observations).unwrap())
    });
    group.bench_function("viterbi_top5_len60", |b| {
        b.iter(|| viterbi_top_k(&crf, &observations, 5).unwrap())
    });
    group.bench_function("gibbs_200_samples_len60", |b| {
        let config = McmcConfig {
            samples: 200,
            burn_in: 50,
            seed: 1,
        };
        b.iter(|| gibbs_sample(&crf, &observations, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
