//! Figure 4 (version axis): linear-regression aggregate time for the three
//! inner-loop generations (v0.1alpha, v0.2.1beta, v0.3) at a fixed size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madlib_bench::{figure4_table, measure_linregr};
use madlib_linalg::kernels::KernelGeneration;

fn bench_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_versions");
    group.sample_size(10);
    let table = figure4_table(20_000, 40, 4, 42);
    for generation in KernelGeneration::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(generation.label()),
            &generation,
            |b, &generation| b.iter(|| measure_linregr(&table, generation)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_versions);
criterion_main!(benches);
