//! Figure 4 (version axis): linear-regression aggregate time for the three
//! inner-loop generations (v0.1alpha, v0.2.1beta, v0.3), plus the engine's
//! own "generation" axis — row-at-a-time vs. chunk-at-a-time execution of
//! the same v0.3 kernel — swept over feature widths up to 1 000.
//!
//! The final summary prints the chunk-path speedup per width so the Figure
//! 4-style comparison ("rewrite the inner loop, keep the algorithm") is
//! reproducible from one `cargo bench` invocation.

use criterion::{BenchmarkId, Criterion};
use madlib_bench::{figure4_table, measure_linregr, measure_linregr_scan};
use madlib_engine::ExecutionMode;
use madlib_linalg::kernels::KernelGeneration;

fn bench_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_versions");
    group.sample_size(10);
    let table = figure4_table(20_000, 40, 4, 42);
    for generation in KernelGeneration::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(generation.label()),
            &generation,
            |b, &generation| b.iter(|| measure_linregr(&table, generation)),
        );
    }
    group.finish();
}

/// Table shapes for the row-vs-chunk sweep: (rows, variables, segments,
/// samples).  Row count shrinks as width grows so each cell stays at a
/// comparable flop budget; the 1 000-wide cell is the acceptance shape.
const ROW_CHUNK_SWEEP: &[(usize, usize, usize, usize)] = &[
    (20_000, 40, 4, 10),
    (8_000, 100, 4, 10),
    (2_000, 400, 4, 5),
    (2_000, 1000, 4, 5),
];

fn bench_row_vs_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_vs_chunk");
    for &(rows, variables, segments, samples) in ROW_CHUNK_SWEEP {
        let table = figure4_table(rows, variables, segments, 42 + variables as u64);
        group.sample_size(samples);
        for (label, mode) in [
            ("row", ExecutionMode::RowAtATime),
            ("chunk", ExecutionMode::Chunked),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{rows}x{variables}")),
                &mode,
                |b, &mode| b.iter(|| measure_linregr_scan(&table, mode)),
            );
        }
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_versions(&mut criterion);
    bench_row_vs_chunk(&mut criterion);

    // Figure 4-style summary: chunk-path speedup per sweep cell.
    println!("\nrow-path vs chunk-path (v0.3 kernel, mean per-fit time):");
    let means = criterion.mean_times();
    for &(rows, variables, _, _) in ROW_CHUNK_SWEEP {
        let cell = format!("{rows}x{variables}");
        let find = |label: &str| {
            means
                .iter()
                .find(|(name, _)| name == &format!("row_vs_chunk/{label}/{cell}"))
                .map(|(_, d)| d.as_secs_f64())
        };
        if let (Some(row), Some(chunk)) = (find("row"), find("chunk")) {
            println!(
                "  {cell:>12}: row {row:>9.4}s  chunk {chunk:>9.4}s  speedup {:.2}x",
                row / chunk
            );
        }
    }
}
