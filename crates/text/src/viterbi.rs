//! Viterbi inference over a linear-chain CRF.
//!
//! "The Viterbi dynamic programming algorithm is a popular algorithm to find
//! the top-k most likely labelings of a document for (linear chain) CRF
//! models" (paper Section 5.2).  Both the top-1 decode and a top-k variant
//! (via k-best list propagation) are provided.  The paper implemented this
//! first with recursive SQL + window functions and then with a driver UDF;
//! here the dynamic program is an ordinary in-core routine invoked per
//! document, which is how the per-document parallelization over Greenplum
//! segments behaves.

use crate::crf::ChainCrf;

/// The k best `(score, path)` candidates ending in one label at one step.
type Beam = Vec<(f64, Vec<usize>)>;
use madlib_engine::{EngineError, Result};

/// Most likely label sequence and its unnormalized log-score.
///
/// # Errors
/// Returns an engine error for empty input or out-of-range observations.
pub fn viterbi_decode(crf: &ChainCrf, observations: &[usize]) -> Result<(Vec<usize>, f64)> {
    let mut paths = viterbi_top_k(crf, observations, 1)?;
    Ok(paths.remove(0))
}

/// The `k` most likely label sequences (best first) with their scores.
///
/// # Errors
/// Returns an engine error for empty input, `k == 0`, or out-of-range
/// observations.
pub fn viterbi_top_k(
    crf: &ChainCrf,
    observations: &[usize],
    k: usize,
) -> Result<Vec<(Vec<usize>, f64)>> {
    if observations.is_empty() {
        return Err(EngineError::invalid("cannot decode an empty sequence"));
    }
    if k == 0 {
        return Err(EngineError::invalid("k must be positive"));
    }
    if observations.iter().any(|&o| o >= crf.num_observations()) {
        return Err(EngineError::invalid("observation symbol out of range"));
    }
    let num_labels = crf.num_labels();
    let n = observations.len();

    // Each cell keeps the k best (score, path) candidates ending in `label`.
    let mut beams: Vec<Vec<Beam>> = vec![vec![Vec::new(); num_labels]; n];
    #[allow(clippy::needless_range_loop)] // label doubles as path content and index
    for label in 0..num_labels {
        beams[0][label].push((crf.emission(label, observations[0]), vec![label]));
    }
    for t in 1..n {
        for label in 0..num_labels {
            let mut candidates: Vec<(f64, Vec<usize>)> = Vec::new();
            #[allow(clippy::needless_range_loop)] // previous doubles as label id and index
            for previous in 0..num_labels {
                for (prev_score, prev_path) in &beams[t - 1][previous] {
                    let score = prev_score
                        + crf.transition(previous, label)
                        + crf.emission(label, observations[t]);
                    let mut path = prev_path.clone();
                    path.push(label);
                    candidates.push((score, path));
                }
            }
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            candidates.truncate(k);
            beams[t][label] = candidates;
        }
    }
    let mut finals: Vec<(Vec<usize>, f64)> = beams[n - 1]
        .iter()
        .flatten()
        .map(|(score, path)| (path.clone(), *score))
        .collect();
    finals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    finals.truncate(k);
    Ok(finals)
}

/// Exhaustive maximum-likelihood decode, used by the tests to certify Viterbi
/// optimality on small chains (exponential cost — keep sequences short).
///
/// # Errors
/// Propagates scoring errors.
pub fn brute_force_decode(crf: &ChainCrf, observations: &[usize]) -> Result<(Vec<usize>, f64)> {
    let num_labels = crf.num_labels();
    let n = observations.len();
    let mut best: Option<(Vec<usize>, f64)> = None;
    let total = (num_labels as u64).pow(n as u32);
    for code in 0..total {
        let mut labels = Vec::with_capacity(n);
        let mut c = code;
        for _ in 0..n {
            labels.push((c % num_labels as u64) as usize);
            c /= num_labels as u64;
        }
        let score = crf.sequence_log_score(observations, &labels)?;
        if best.as_ref().map(|(_, s)| score > *s).unwrap_or(true) {
            best = Some((labels, score));
        }
    }
    best.ok_or_else(|| EngineError::invalid("empty search space"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A CRF with hand-set weights: observation i strongly prefers label
    /// i % 2, and transitions prefer staying in the same label.
    fn toy_crf() -> ChainCrf {
        let num_labels = 2;
        let num_observations = 4;
        let mut weights = vec![0.0; num_labels * num_observations + num_labels * num_labels];
        for obs in 0..num_observations {
            let preferred = obs % 2;
            weights[preferred * num_observations + obs] = 2.0;
        }
        // Transition block: sticky labels.
        let base = num_labels * num_observations;
        weights[base] = 0.5; // 0 -> 0
        weights[base + 3] = 0.5; // 1 -> 1
        ChainCrf::from_weights(num_labels, num_observations, weights).unwrap()
    }

    #[test]
    fn decodes_emission_dominated_sequences() {
        let crf = toy_crf();
        let (labels, score) = viterbi_decode(&crf, &[0, 2, 1, 3]).unwrap();
        assert_eq!(labels, vec![0, 0, 1, 1]);
        assert!(score > 0.0);
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let crf = toy_crf();
        for observations in [
            vec![0usize, 1, 2, 3],
            vec![3, 3, 0],
            vec![1],
            vec![2, 0, 2, 0, 2],
        ] {
            let (viterbi_labels, viterbi_score) = viterbi_decode(&crf, &observations).unwrap();
            let (_brute_labels, brute_score) = brute_force_decode(&crf, &observations).unwrap();
            assert!(
                (viterbi_score - brute_score).abs() < 1e-9,
                "scores disagree on {observations:?}"
            );
            // The decoded labeling must achieve the optimal score.
            assert!(
                (crf.sequence_log_score(&observations, &viterbi_labels)
                    .unwrap()
                    - brute_score)
                    .abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn top_k_is_sorted_and_distinct() {
        let crf = toy_crf();
        let results = viterbi_top_k(&crf, &[0, 1, 2], 4).unwrap();
        assert_eq!(results.len(), 4);
        for pair in results.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "scores must be non-increasing");
            assert_ne!(pair[0].0, pair[1].0, "paths must be distinct");
        }
        // Top-1 of the top-k equals the plain decode.
        let (best, best_score) = viterbi_decode(&crf, &[0, 1, 2]).unwrap();
        assert_eq!(results[0].0, best);
        assert!((results[0].1 - best_score).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        let crf = toy_crf();
        assert!(viterbi_decode(&crf, &[]).is_err());
        assert!(viterbi_top_k(&crf, &[0], 0).is_err());
        assert!(viterbi_decode(&crf, &[99]).is_err());
    }
}
