//! Approximate string matching with q-grams (paper Section 5.2,
//! "Approximate String Matching").
//!
//! The paper builds a trigram (3-gram) index with PostgreSQL's `pg_trgm`
//! module and exposes a UDF that "takes in a query string and returns all
//! documents in the corpus that contain at least one approximate match".
//! [`TrigramIndex`] is the engine-independent equivalent: documents are
//! indexed by their padded trigrams and queried by trigram-set similarity
//! (the same Jaccard-style similarity `pg_trgm` uses).

use std::collections::{BTreeMap, BTreeSet};

/// Extracts the padded trigram set of a string, lowercased, using the same
/// "  x" / "x " padding convention as `pg_trgm`.
pub fn trigrams(text: &str) -> BTreeSet<String> {
    let normalized: String = text
        .to_lowercase()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { ' ' })
        .collect();
    let mut set = BTreeSet::new();
    for word in normalized.split_whitespace() {
        let padded: Vec<char> = format!("  {word} ").chars().collect();
        for window in padded.windows(3) {
            set.insert(window.iter().collect());
        }
    }
    set
}

/// Trigram similarity in `[0, 1]`: `|A ∩ B| / |A ∪ B|`.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let intersection = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        intersection / union
    }
}

/// An inverted trigram index over a corpus of documents.
#[derive(Debug, Clone, Default)]
pub struct TrigramIndex {
    /// trigram → ids of documents containing it.
    postings: BTreeMap<String, BTreeSet<usize>>,
    documents: Vec<String>,
}

impl TrigramIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document, returning its id.
    pub fn insert(&mut self, document: &str) -> usize {
        let id = self.documents.len();
        self.documents.push(document.to_owned());
        for trigram in trigrams(document) {
            self.postings.entry(trigram).or_default().insert(id);
        }
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The stored text of a document.
    pub fn document(&self, id: usize) -> Option<&str> {
        self.documents.get(id).map(String::as_str)
    }

    /// Returns `(document id, similarity)` for every document that contains
    /// an approximate match of `query`, best match first.  The score is the
    /// *containment* similarity — the fraction of the query's trigrams found
    /// in the document — which is the document-level analogue of `pg_trgm`'s
    /// `word_similarity` and matches the paper's "returns all documents in
    /// the corpus that contain at least one approximate match".  Only
    /// documents sharing at least one trigram with the query are scored
    /// (that is what the inverted index buys).
    pub fn search(&self, query: &str, threshold: f64) -> Vec<(usize, f64)> {
        let query_trigrams = trigrams(query);
        if query_trigrams.is_empty() {
            return Vec::new();
        }
        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        for trigram in &query_trigrams {
            if let Some(ids) = self.postings.get(trigram) {
                candidates.extend(ids);
            }
        }
        let mut results: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|id| {
                let doc_trigrams = trigrams(&self.documents[id]);
                let contained = query_trigrams.intersection(&doc_trigrams).count() as f64;
                (id, contained / query_trigrams.len() as f64)
            })
            .filter(|(_, similarity)| *similarity >= threshold)
            .collect();
        results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        results
    }

    /// Convenience: the single best match above the threshold, if any.
    pub fn best_match(&self, query: &str, threshold: f64) -> Option<(usize, f64)> {
        self.search(query, threshold).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_extraction() {
        let grams = trigrams("Tim");
        assert!(grams.contains("  t"));
        assert!(grams.contains(" ti"));
        assert!(grams.contains("tim"));
        assert!(grams.contains("im "));
        assert!(trigrams("").is_empty());
        // Case and punctuation insensitive.
        assert_eq!(trigrams("Tim!"), trigrams("tim"));
    }

    #[test]
    fn similarity_properties() {
        assert_eq!(trigram_similarity("tebow", "tebow"), 1.0);
        assert_eq!(trigram_similarity("", ""), 1.0);
        let close = trigram_similarity("Tim Tebow", "Tim Tebo");
        let far = trigram_similarity("Tim Tebow", "Peyton Manning");
        assert!(close > far);
        assert!(close > 0.5);
        assert!(far < 0.2);
        // Symmetry.
        assert_eq!(
            trigram_similarity("alpha", "alpine"),
            trigram_similarity("alpine", "alpha")
        );
    }

    #[test]
    fn index_finds_approximate_entity_mentions() {
        // The paper's entity-resolution example: find mentions of "Tim Tebow".
        let mut index = TrigramIndex::new();
        let docs = [
            "Tim Tebow threw for 300 yards",
            "T. Tebow was seen at practice",
            "Peyton Manning led the drive",
            "tim tebo signs autographs",
            "Completely unrelated news about weather",
        ];
        for d in docs {
            index.insert(d);
        }
        assert_eq!(index.len(), 5);
        assert!(!index.is_empty());
        let results = index.search("Tim Tebow", 0.5);
        let ids: Vec<usize> = results.iter().map(|(id, _)| *id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&3));
        assert!(!ids.contains(&2), "Manning doc must not match");
        assert!(!ids.contains(&4));
        // Results sorted by similarity.
        for pair in results.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        let (best, score) = index.best_match("Tim Tebow", 0.5).unwrap();
        assert_eq!(best, 0);
        assert!(score > 0.9);
        assert_eq!(index.document(best).unwrap(), docs[0]);
    }

    #[test]
    fn no_match_cases() {
        let mut index = TrigramIndex::new();
        index.insert("completely different content");
        assert!(index.search("zzzyyyxxx", 0.1).is_empty());
        assert_eq!(index.best_match("zzzyyyxxx", 0.1), None);
        assert_eq!(index.document(99), None);
    }
}
