//! Linear-chain conditional random field model.
//!
//! The CRF is "the basic statistical model" of the paper's text-analytics
//! work (Section 5.2): POS tagging, NER, and entity resolution are all cast
//! as sequence labeling over it.  [`ChainCrf`] holds the trained weights
//! (emission weights per label × observation symbol plus transition weights
//! per label pair) and is consumed by the [`crate::viterbi`] and
//! [`crate::mcmc`] inference modules.  Training goes through the uniform
//! `Estimator` convention: [`CrfEstimator`] wraps the `madlib-convex` SGD
//! framework (the CRF row of Table 2), so
//! `Session::train(&CrfEstimator::new(...), &dataset)` fits one CRF and
//! `Session::train_grouped` fits one CRF per `grouping_cols` key
//! (per-document-class sequence models).

use madlib_convex::objectives::CrfObjective;
use madlib_convex::{ConvexObjective, IgdConfig, IgdRunner, StepSchedule};
use madlib_core::train::{Estimator, Session};
use madlib_core::MethodError;
use madlib_engine::dataset::Dataset;
use madlib_engine::{EngineError, Result};
use serde::{Deserialize, Serialize};

/// A trained linear-chain CRF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainCrf {
    num_labels: usize,
    num_observations: usize,
    weights: Vec<f64>,
}

impl ChainCrf {
    /// Creates a CRF with all-zero weights.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(num_labels: usize, num_observations: usize) -> Self {
        assert!(
            num_labels > 0 && num_observations > 0,
            "dimensions must be positive"
        );
        Self {
            num_labels,
            num_observations,
            weights: vec![0.0; num_labels * num_observations + num_labels * num_labels],
        }
    }

    /// Creates a CRF from explicit weights (emission block followed by
    /// transition block).
    ///
    /// # Errors
    /// Returns an engine error when the weight length is inconsistent.
    pub fn from_weights(
        num_labels: usize,
        num_observations: usize,
        weights: Vec<f64>,
    ) -> Result<Self> {
        let expected = num_labels * num_observations + num_labels * num_labels;
        if weights.len() != expected {
            return Err(EngineError::invalid(format!(
                "expected {expected} weights, got {}",
                weights.len()
            )));
        }
        Ok(Self {
            num_labels,
            num_observations,
            weights,
        })
    }

    /// Number of label values.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of observation symbols.
    pub fn num_observations(&self) -> usize {
        self.num_observations
    }

    /// The flat weight vector (emission block then transition block).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Emission weight for (label, observation).
    pub fn emission(&self, label: usize, observation: usize) -> f64 {
        self.weights[label * self.num_observations + observation]
    }

    /// Transition weight for (previous label → label).
    pub fn transition(&self, previous: usize, label: usize) -> f64 {
        self.weights[self.num_labels * self.num_observations + previous * self.num_labels + label]
    }

    /// Unnormalized log-score of a labeling for an observation sequence.
    ///
    /// # Errors
    /// Returns an engine error on length mismatch or out-of-range symbols.
    pub fn sequence_log_score(&self, observations: &[usize], labels: &[usize]) -> Result<f64> {
        if observations.len() != labels.len() {
            return Err(EngineError::invalid(
                "observations and labels must have equal length",
            ));
        }
        let mut score = 0.0;
        for (t, (&obs, &label)) in observations.iter().zip(labels).enumerate() {
            if obs >= self.num_observations || label >= self.num_labels {
                return Err(EngineError::invalid("symbol out of range"));
            }
            score += self.emission(label, obs);
            if t > 0 {
                score += self.transition(labels[t - 1], label);
            }
        }
        Ok(score)
    }
}

/// CRF training packaged as an [`Estimator`] — the uniform
/// `Session::train(&estimator, &dataset)` entry point for sequence labeling.
///
/// The dataset supplies labeled sequences as two `bigint[]` columns (one
/// observation symbol and one label per token); training runs the
/// `madlib-convex` SGD framework over the [`CrfObjective`] (each epoch is
/// one aggregate pass on the chunked scan pipeline, with per-segment model
/// averaging), and the fitted weight vector comes back as a [`ChainCrf`]
/// ready for Viterbi or MCMC inference.
#[derive(Debug, Clone)]
pub struct CrfEstimator {
    observations_column: String,
    labels_column: String,
    num_labels: usize,
    num_observations: usize,
    config: IgdConfig,
}

impl CrfEstimator {
    /// Creates the estimator for `num_labels` label values and
    /// `num_observations` distinct observation symbols, reading the named
    /// `bigint[]` sequence columns.  Runs a constant 0.05 step at tolerance
    /// 1e-8 (the schedule the old driver hard-coded) for up to 50 epochs —
    /// the old driver took the epoch count as a required argument, so
    /// callers porting from it should set [`CrfEstimator::with_epochs`].
    pub fn new(
        observations_column: impl Into<String>,
        labels_column: impl Into<String>,
        num_labels: usize,
        num_observations: usize,
    ) -> Self {
        Self {
            observations_column: observations_column.into(),
            labels_column: labels_column.into(),
            num_labels,
            num_observations,
            config: IgdConfig {
                max_epochs: 50,
                tolerance: 1e-8,
                schedule: StepSchedule::Constant(0.05),
            },
        }
    }

    /// Sets the number of SGD epochs.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.config.max_epochs = epochs;
        self
    }

    /// Replaces the whole IGD configuration (epochs, tolerance, schedule).
    #[must_use]
    pub fn with_config(mut self, config: IgdConfig) -> Self {
        self.config = config;
        self
    }
}

impl Estimator for CrfEstimator {
    type Model = ChainCrf;

    fn fit(&self, dataset: &Dataset<'_>, session: &Session) -> madlib_core::Result<ChainCrf> {
        let objective = CrfObjective::new(
            &self.observations_column,
            &self.labels_column,
            self.num_labels,
            self.num_observations,
        );
        let summary = IgdRunner::new(self.config.clone())
            .run_dataset(
                dataset,
                session.database(),
                &objective,
                vec![0.0; objective.dimension()],
            )
            .map_err(MethodError::from)?;
        ChainCrf::from_weights(self.num_labels, self.num_observations, summary.model)
            .map_err(MethodError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::{Column, ColumnType, Row, Schema, Table, Value};

    pub(crate) fn training_corpus(sequences: usize, segments: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("observations", ColumnType::IntArray),
            Column::new("labels", ColumnType::IntArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        for s in 0..sequences {
            let length = 5 + s % 4;
            let mut observations = Vec::new();
            let mut labels = Vec::new();
            for t_idx in 0..length {
                let label = (t_idx + s) % 2;
                observations.push((label * 2 + s % 2) as i64);
                labels.push(label as i64);
            }
            t.insert(Row::new(vec![
                Value::IntArray(observations),
                Value::IntArray(labels),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn construction_and_accessors() {
        let crf = ChainCrf::zeros(3, 5);
        assert_eq!(crf.num_labels(), 3);
        assert_eq!(crf.num_observations(), 5);
        assert_eq!(crf.weights().len(), 3 * 5 + 3 * 3);
        assert_eq!(crf.emission(2, 4), 0.0);
        assert_eq!(crf.transition(1, 2), 0.0);
        assert!(ChainCrf::from_weights(2, 2, vec![0.0; 3]).is_err());
        assert!(ChainCrf::from_weights(2, 2, vec![0.0; 8]).is_ok());
    }

    #[test]
    fn sequence_score_validation() {
        let crf = ChainCrf::zeros(2, 3);
        assert_eq!(crf.sequence_log_score(&[0, 1], &[0, 1]).unwrap(), 0.0);
        assert!(crf.sequence_log_score(&[0], &[0, 1]).is_err());
        assert!(crf.sequence_log_score(&[9], &[0]).is_err());
        assert!(crf.sequence_log_score(&[0], &[9]).is_err());
    }

    #[test]
    fn training_learns_emission_preferences() {
        let table = training_corpus(40, 2);
        let session = Session::in_memory(2).unwrap();
        let crf = session
            .train(
                &CrfEstimator::new("observations", "labels", 2, 4).with_epochs(50),
                &Dataset::from_table(&table),
            )
            .unwrap();
        // Observation 0 co-occurs with label 0, observation 2 with label 1.
        assert!(crf.emission(0, 0) > crf.emission(1, 0));
        assert!(crf.emission(1, 2) > crf.emission(0, 2));
        // The true labeling scores above a corrupted one.
        let observations = [0usize, 3, 0, 3];
        let truth = [0usize, 1, 0, 1];
        let corrupted = [1usize, 0, 1, 0];
        assert!(
            crf.sequence_log_score(&observations, &truth).unwrap()
                > crf.sequence_log_score(&observations, &corrupted).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_panic() {
        ChainCrf::zeros(0, 3);
    }
}
