//! Tokenization.

/// Splits text into lowercase word tokens.  Punctuation separates tokens;
/// digits are kept so that numeric mentions survive (useful for NER-style
/// tasks).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("The quick, brown fox!"),
            vec!["the", "quick", "brown", "fox"]
        );
        assert_eq!(tokenize("don't stop"), vec!["don't", "stop"]);
        assert_eq!(tokenize("v0.3 release"), vec!["v0", "3", "release"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn lowercases_unicode() {
        assert_eq!(tokenize("Istanbul Köln"), vec!["istanbul", "köln"]);
    }
}
