//! # madlib-text
//!
//! Statistical text analytics for MADlib-rs (the Florida/Berkeley
//! contribution of the paper's Section 5.2): the four key methods of Table 3.
//!
//! | Table 3 method               | Module |
//! |------------------------------|--------|
//! | Text Feature Extraction      | [`features`] |
//! | Viterbi Inference            | [`viterbi`] |
//! | MCMC Inference (Gibbs, MH)   | [`mcmc`] |
//! | Approximate String Matching  | [`strmatch`] |
//!
//! The linear-chain CRF model these operate on lives in [`crf`]; its training
//! is the [`crf::CrfEstimator`] — an [`madlib_core::Estimator`] over the SGD
//! framework of the `madlib-convex` crate (the same CRF objective appears in
//! the paper's Table 2) — so `Session::train(&CrfEstimator::new(...), &ds)`
//! (or `Session::train_grouped` for one CRF per `grouping_cols` key) followed
//! by Viterbi or MCMC inference is exactly the paper's pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crf;
pub mod features;
pub mod mcmc;
pub mod strmatch;
pub mod token;
pub mod viterbi;

pub use crf::{ChainCrf, CrfEstimator};
pub use features::{FeatureExtractor, TokenFeatures};
pub use strmatch::TrigramIndex;
pub use token::tokenize;
