//! MCMC inference over a linear-chain CRF (paper Section 5.2, "MCMC
//! Inference").
//!
//! Two samplers are provided, matching the paper: a Gibbs sampler that
//! resamples one token's label at a time from its full conditional, and a
//! Metropolis–Hastings sampler with a uniform single-site proposal.  Both
//! return marginal label probabilities ("when we want the probabilities or
//! confidence of an answer as well"), which is the capability Viterbi's
//! single best labeling cannot give.

use crate::crf::ChainCrf;
use madlib_engine::{EngineError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of an MCMC inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct McmcResult {
    /// Marginal probability of each label at each position:
    /// `marginals[t][label]`.
    pub marginals: Vec<Vec<f64>>,
    /// The most frequent label at each position (the MAP estimate under the
    /// sampled marginals).
    pub map_labels: Vec<usize>,
    /// Number of samples retained (after burn-in).
    pub samples: usize,
    /// Acceptance rate (1.0 for Gibbs, which always accepts).
    pub acceptance_rate: f64,
}

/// Configuration shared by both samplers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McmcConfig {
    /// Total sweeps (Gibbs) or proposals (MH) after burn-in.
    pub samples: usize,
    /// Burn-in sweeps/proposals discarded before collecting statistics.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            samples: 500,
            burn_in: 100,
            seed: 0,
        }
    }
}

fn validate(crf: &ChainCrf, observations: &[usize], config: &McmcConfig) -> Result<()> {
    if observations.is_empty() {
        return Err(EngineError::invalid("cannot run MCMC on an empty sequence"));
    }
    if observations.iter().any(|&o| o >= crf.num_observations()) {
        return Err(EngineError::invalid("observation symbol out of range"));
    }
    if config.samples == 0 {
        return Err(EngineError::invalid("sample count must be positive"));
    }
    Ok(())
}

/// Log of the full conditional (up to a constant) of `label` at position `t`.
fn local_log_score(
    crf: &ChainCrf,
    observations: &[usize],
    labels: &[usize],
    t: usize,
    label: usize,
) -> f64 {
    let mut score = crf.emission(label, observations[t]);
    if t > 0 {
        score += crf.transition(labels[t - 1], label);
    }
    if t + 1 < labels.len() {
        score += crf.transition(label, labels[t + 1]);
    }
    score
}

fn collect(counts: &[Vec<u64>], samples: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let marginals: Vec<Vec<f64>> = counts
        .iter()
        .map(|c| c.iter().map(|&n| n as f64 / samples as f64).collect())
        .collect();
    let map_labels = counts
        .iter()
        .map(|c| {
            c.iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(label, _)| label)
                .unwrap_or(0)
        })
        .collect();
    (marginals, map_labels)
}

/// Gibbs sampling: each sweep resamples every position from its full
/// conditional distribution.
///
/// # Errors
/// Returns engine errors for empty/out-of-range inputs.
pub fn gibbs_sample(
    crf: &ChainCrf,
    observations: &[usize],
    config: &McmcConfig,
) -> Result<McmcResult> {
    validate(crf, observations, config)?;
    let n = observations.len();
    let k = crf.num_labels();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    let mut counts = vec![vec![0u64; k]; n];

    for sweep in 0..(config.burn_in + config.samples) {
        for t in 0..n {
            let scores: Vec<f64> = (0..k)
                .map(|label| local_log_score(crf, observations, &labels, t, label))
                .collect();
            let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
            let total: f64 = weights.iter().sum();
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = k - 1;
            for (label, w) in weights.iter().enumerate() {
                if target < *w {
                    chosen = label;
                    break;
                }
                target -= w;
            }
            labels[t] = chosen;
        }
        if sweep >= config.burn_in {
            for (t, &label) in labels.iter().enumerate() {
                counts[t][label] += 1;
            }
        }
    }
    let (marginals, map_labels) = collect(&counts, config.samples);
    Ok(McmcResult {
        marginals,
        map_labels,
        samples: config.samples,
        acceptance_rate: 1.0,
    })
}

/// Metropolis–Hastings sampling with a uniform single-site proposal.
///
/// # Errors
/// Returns engine errors for empty/out-of-range inputs.
pub fn metropolis_hastings_sample(
    crf: &ChainCrf,
    observations: &[usize],
    config: &McmcConfig,
) -> Result<McmcResult> {
    validate(crf, observations, config)?;
    let n = observations.len();
    let k = crf.num_labels();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    let mut counts = vec![vec![0u64; k]; n];
    let mut accepted = 0u64;
    let mut proposed = 0u64;

    // One "iteration" proposes n single-site flips so the mixing per sample
    // is comparable to a Gibbs sweep.
    for iteration in 0..(config.burn_in + config.samples) {
        for _ in 0..n {
            let t = rng.gen_range(0..n);
            let proposal = rng.gen_range(0..k);
            let current = labels[t];
            if proposal != current {
                proposed += 1;
                let delta = local_log_score(crf, observations, &labels, t, proposal)
                    - local_log_score(crf, observations, &labels, t, current);
                if delta >= 0.0 || rng.gen::<f64>() < delta.exp() {
                    labels[t] = proposal;
                    accepted += 1;
                }
            }
        }
        if iteration >= config.burn_in {
            for (t, &label) in labels.iter().enumerate() {
                counts[t][label] += 1;
            }
        }
    }
    let (marginals, map_labels) = collect(&counts, config.samples);
    Ok(McmcResult {
        marginals,
        map_labels,
        samples: config.samples,
        acceptance_rate: if proposed == 0 {
            1.0
        } else {
            accepted as f64 / proposed as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viterbi::viterbi_decode;

    fn toy_crf() -> ChainCrf {
        // Observation i prefers label i % 2 strongly; sticky transitions.
        let num_labels = 2;
        let num_observations = 4;
        let mut weights = vec![0.0; num_labels * num_observations + num_labels * num_labels];
        for obs in 0..num_observations {
            weights[(obs % 2) * num_observations + obs] = 3.0;
        }
        let base = num_labels * num_observations;
        weights[base] = 0.5;
        weights[base + 3] = 0.5;
        ChainCrf::from_weights(num_labels, num_observations, weights).unwrap()
    }

    #[test]
    fn gibbs_marginals_concentrate_on_the_map_labeling() {
        let crf = toy_crf();
        let observations = [0usize, 2, 1, 3, 0];
        let config = McmcConfig {
            samples: 800,
            burn_in: 200,
            seed: 7,
        };
        let result = gibbs_sample(&crf, &observations, &config).unwrap();
        let (viterbi_labels, _) = viterbi_decode(&crf, &observations).unwrap();
        assert_eq!(result.map_labels, viterbi_labels);
        assert_eq!(result.samples, 800);
        assert_eq!(result.acceptance_rate, 1.0);
        for (t, marginal) in result.marginals.iter().enumerate() {
            let total: f64 = marginal.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(
                marginal[viterbi_labels[t]] > 0.8,
                "position {t} marginal {marginal:?}"
            );
        }
    }

    #[test]
    fn metropolis_hastings_agrees_with_gibbs() {
        let crf = toy_crf();
        let observations = [3usize, 1, 2, 0];
        let config = McmcConfig {
            samples: 1_500,
            burn_in: 300,
            seed: 11,
        };
        let gibbs = gibbs_sample(&crf, &observations, &config).unwrap();
        let mh = metropolis_hastings_sample(&crf, &observations, &config).unwrap();
        assert_eq!(gibbs.map_labels, mh.map_labels);
        assert!(mh.acceptance_rate > 0.0 && mh.acceptance_rate < 1.0);
        for (gm, mm) in gibbs.marginals.iter().zip(&mh.marginals) {
            for (a, b) in gm.iter().zip(mm) {
                assert!((a - b).abs() < 0.12, "marginals diverge: {a} vs {b}");
            }
        }
    }

    #[test]
    fn uncertain_positions_have_soft_marginals() {
        // An observation symbol with no emission preference: its marginal is
        // governed by the sticky transitions and stays well away from 0/1.
        let num_labels = 2;
        let num_observations = 2;
        let mut weights = vec![0.0; num_labels * num_observations + num_labels * num_labels];
        weights[0] = 2.0; // obs 0 prefers label 0
                          // obs 1 has no preference.
        let crf = ChainCrf::from_weights(num_labels, num_observations, weights).unwrap();
        let result = gibbs_sample(
            &crf,
            &[0, 1],
            &McmcConfig {
                samples: 2_000,
                burn_in: 200,
                seed: 3,
            },
        )
        .unwrap();
        let uncertain = &result.marginals[1];
        assert!(uncertain[0] > 0.2 && uncertain[0] < 0.8, "{uncertain:?}");
    }

    #[test]
    fn input_validation() {
        let crf = toy_crf();
        let config = McmcConfig::default();
        assert!(gibbs_sample(&crf, &[], &config).is_err());
        assert!(metropolis_hastings_sample(&crf, &[99], &config).is_err());
        let bad = McmcConfig {
            samples: 0,
            ..McmcConfig::default()
        };
        assert!(gibbs_sample(&crf, &[0], &bad).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let crf = toy_crf();
        let config = McmcConfig {
            samples: 200,
            burn_in: 50,
            seed: 42,
        };
        let a = gibbs_sample(&crf, &[0, 1, 2], &config).unwrap();
        let b = gibbs_sample(&crf, &[0, 1, 2], &config).unwrap();
        assert_eq!(a, b);
    }
}
