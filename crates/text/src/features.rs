//! Text feature extraction (paper Section 5.2, "Text Feature Extraction").
//!
//! CRF methods "often assign hundreds of features to each token"; the paper
//! enumerates five families, all implemented here: dictionary features, regex
//! features, edge features (handled by the CRF's transition weights), word
//! features and position features.  The extractor maps each token of a
//! sentence to a sparse set of named features, and maintains a feature
//! dictionary so the same extraction can be replayed at inference time.

use std::collections::{BTreeMap, BTreeSet};

/// Features extracted for one token.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenFeatures {
    /// Names of the active (binary) features, sorted and de-duplicated.
    pub active: Vec<String>,
}

/// Configurable token feature extractor.
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    dictionaries: BTreeMap<String, BTreeSet<String>>,
    /// Lightweight "regex" features expressed as predicates over the token
    /// (full regular expressions would need an external crate; these cover
    /// the patterns the paper lists: capitalization, digits, punctuation).
    enable_shape_features: bool,
    enable_position_features: bool,
    enable_word_features: bool,
    known_words: BTreeSet<String>,
}

impl FeatureExtractor {
    /// Creates an extractor with word, shape and position features enabled.
    pub fn new() -> Self {
        Self {
            dictionaries: BTreeMap::new(),
            enable_shape_features: true,
            enable_position_features: true,
            enable_word_features: true,
            known_words: BTreeSet::new(),
        }
    }

    /// Registers a named dictionary; tokens found in it produce a
    /// `dict:<name>` feature (the paper's "does this token exist in a
    /// provided dictionary?").
    pub fn with_dictionary<I, S>(mut self, name: &str, entries: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.dictionaries.insert(
            name.to_owned(),
            entries
                .into_iter()
                .map(|e| e.into().to_lowercase())
                .collect(),
        );
        self
    }

    /// Disables the token-identity ("word") features.
    pub fn without_word_features(mut self) -> Self {
        self.enable_word_features = false;
        self
    }

    /// Disables the shape (capitalization/digit) features.
    pub fn without_shape_features(mut self) -> Self {
        self.enable_shape_features = false;
        self
    }

    /// Disables the position features.
    pub fn without_position_features(mut self) -> Self {
        self.enable_position_features = false;
        self
    }

    /// Records the training vocabulary so the "does the token appear in the
    /// training data?" feature can fire at inference time.
    pub fn fit_vocabulary<'a, I: IntoIterator<Item = &'a str>>(&mut self, tokens: I) {
        for token in tokens {
            self.known_words.insert(token.to_lowercase());
        }
    }

    /// Extracts features for every token of a sentence.
    pub fn extract(&self, tokens: &[String]) -> Vec<TokenFeatures> {
        tokens
            .iter()
            .enumerate()
            .map(|(position, token)| {
                let lower = token.to_lowercase();
                let mut active = BTreeSet::new();
                if self.enable_word_features {
                    active.insert(format!("word:{lower}"));
                    if self.known_words.contains(&lower) {
                        active.insert("in_training_vocab".to_owned());
                    }
                }
                if self.enable_shape_features {
                    if token.chars().next().is_some_and(|c| c.is_uppercase()) {
                        active.insert("shape:init_cap".to_owned());
                    }
                    if token.chars().all(|c| c.is_uppercase()) && !token.is_empty() {
                        active.insert("shape:all_caps".to_owned());
                    }
                    if token.chars().any(|c| c.is_ascii_digit()) {
                        active.insert("shape:has_digit".to_owned());
                    }
                    if token.chars().all(|c| c.is_ascii_digit()) && !token.is_empty() {
                        active.insert("shape:all_digits".to_owned());
                    }
                }
                if self.enable_position_features {
                    if position == 0 {
                        active.insert("position:first".to_owned());
                    }
                    if position + 1 == tokens.len() {
                        active.insert("position:last".to_owned());
                    }
                }
                for (name, entries) in &self.dictionaries {
                    if entries.contains(&lower) {
                        active.insert(format!("dict:{name}"));
                    }
                }
                TokenFeatures {
                    active: active.into_iter().collect(),
                }
            })
            .collect()
    }

    /// Builds (and returns) a feature index mapping feature names to dense
    /// ids over a corpus — the bridge between the sparse named features and
    /// the dense observation symbols the CRF objective consumes.
    pub fn build_feature_index(corpus_features: &[Vec<TokenFeatures>]) -> BTreeMap<String, usize> {
        let mut index = BTreeMap::new();
        for sentence in corpus_features {
            for token in sentence {
                for feature in &token.active {
                    let next = index.len();
                    index.entry(feature.clone()).or_insert(next);
                }
            }
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn as_strings(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn word_shape_and_position_features() {
        let extractor = FeatureExtractor::new();
        let tokens = as_strings(&["Tim", "scored", "42", "POINTS"]);
        let features = extractor.extract(&tokens);
        assert_eq!(features.len(), 4);
        assert!(features[0].active.contains(&"word:tim".to_owned()));
        assert!(features[0].active.contains(&"shape:init_cap".to_owned()));
        assert!(features[0].active.contains(&"position:first".to_owned()));
        assert!(features[2].active.contains(&"shape:all_digits".to_owned()));
        assert!(features[2].active.contains(&"shape:has_digit".to_owned()));
        assert!(features[3].active.contains(&"shape:all_caps".to_owned()));
        assert!(features[3].active.contains(&"position:last".to_owned()));
    }

    #[test]
    fn dictionary_features() {
        let extractor = FeatureExtractor::new()
            .with_dictionary("person", ["tim", "alice"])
            .with_dictionary("team", ["broncos"]);
        let tokens = as_strings(&["Tim", "joined", "Broncos"]);
        let features = extractor.extract(&tokens);
        assert!(features[0].active.contains(&"dict:person".to_owned()));
        assert!(!features[1].active.iter().any(|f| f.starts_with("dict:")));
        assert!(features[2].active.contains(&"dict:team".to_owned()));
    }

    #[test]
    fn vocabulary_feature_and_toggles() {
        let mut extractor = FeatureExtractor::new()
            .without_shape_features()
            .without_position_features();
        extractor.fit_vocabulary(["seen"]);
        let features = extractor.extract(&as_strings(&["seen", "unseen"]));
        assert!(features[0].active.contains(&"in_training_vocab".to_owned()));
        assert!(!features[1].active.contains(&"in_training_vocab".to_owned()));
        assert!(!features[0].active.iter().any(|f| f.starts_with("shape:")));
        assert!(!features[0]
            .active
            .iter()
            .any(|f| f.starts_with("position:")));

        let bare = FeatureExtractor::new().without_word_features();
        let f = bare.extract(&as_strings(&["Word"]));
        assert!(!f[0].active.iter().any(|x| x.starts_with("word:")));
    }

    #[test]
    fn feature_index_is_dense_and_stable() {
        let extractor = FeatureExtractor::new();
        let sentences = vec![
            extractor.extract(&tokenize("Alice met Bob")),
            extractor.extract(&tokenize("Bob met Carol")),
        ];
        let index = FeatureExtractor::build_feature_index(&sentences);
        assert!(!index.is_empty());
        let mut ids: Vec<usize> = index.values().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..index.len()).collect::<Vec<_>>());
        assert!(index.contains_key("word:bob"));
    }
}
