//! Special mathematical functions.
//!
//! Log-gamma, regularized incomplete gamma and beta functions, and the error
//! function.  These are the primitives the distribution CDFs in [`crate::dist`]
//! are built from.  Implementations follow the classical Lanczos / continued
//! fraction / series formulations (Numerical Recipes style) and are accurate
//! to roughly 1e-10 over the parameter ranges the method library uses.

/// Natural log of the gamma function, via the Lanczos approximation.
///
/// Accurate to ~1e-10 for `x > 0`.  Returns `f64::INFINITY` for `x <= 0`
/// at the poles of the gamma function (non-positive integers) and uses the
/// reflection formula elsewhere.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        if sin_pi_x.abs() < 1e-300 {
            return f64::INFINITY;
        }
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The error function `erf(x)`, accurate to ~1.2e-7 (Abramowitz & Stegun 7.1.26
/// refined with a higher-order rational approximation).
pub fn erf(x: f64) -> f64 {
    // Use the relation erf(x) = sign(x) * P(χ²) via the incomplete gamma for
    // high accuracy: erf(x) = sign(x) * γ(1/2, x²)/Γ(1/2).
    if x == 0.0 {
        return 0.0;
    }
    let sign = x.signum();
    sign * lower_incomplete_gamma_regularized(0.5, x * x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise.  Returns 0 for `x <= 0` and panics on `a <= 0`.
pub fn lower_incomplete_gamma_regularized(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape parameter must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn upper_incomplete_gamma_regularized(a: f64, x: f64) -> f64 {
    1.0 - lower_incomplete_gamma_regularized(a, x)
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_continued_fraction(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Natural log of the beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed via the continued-fraction expansion with the standard symmetry
/// transformation for numerical stability.  Accurate to ~1e-12.
///
/// # Panics
/// Panics if `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`.
pub fn incomplete_beta_regularized(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be within [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = ((a * x.ln()) + (b * (1.0 - x).ln()) - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        // Complementary evaluation, computed directly (no recursion) to avoid
        // ping-ponging at the symmetry point x == (a+1)/(a+b+2).
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi)
        assert!(close(ln_gamma(1.0), 0.0, 1e-10));
        assert!(close(ln_gamma(2.0), 0.0, 1e-10));
        assert!(close(ln_gamma(5.0), 24.0_f64.ln(), 1e-10));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
        // Γ(10) = 362880
        assert!(close(ln_gamma(10.0), 362_880.0_f64.ln(), 1e-9));
    }

    #[test]
    fn ln_gamma_reflection_branch() {
        // Γ(0.25) ≈ 3.625609908
        assert!(close(ln_gamma(0.25), 3.625_609_908_2_f64.ln(), 1e-8));
        assert!(ln_gamma(0.0).is_infinite());
    }

    #[test]
    fn erf_known_values() {
        assert!(close(erf(0.0), 0.0, 1e-15));
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-9));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 1e-9));
        assert!(close(erf(2.0), 0.995_322_265_018_952_7, 1e-9));
        assert!(close(erfc(0.5), 1.0 - 0.520_499_877_813_046_5, 1e-9));
    }

    #[test]
    fn incomplete_gamma_boundaries_and_values() {
        assert_eq!(lower_incomplete_gamma_regularized(2.0, 0.0), 0.0);
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!(close(
                lower_incomplete_gamma_regularized(1.0, x),
                1.0 - (-x).exp(),
                1e-10
            ));
        }
        assert!(close(
            upper_incomplete_gamma_regularized(1.0, 2.0),
            (-2.0_f64).exp(),
            1e-10
        ));
    }

    #[test]
    #[should_panic(expected = "shape parameter")]
    fn incomplete_gamma_rejects_bad_shape() {
        lower_incomplete_gamma_regularized(0.0, 1.0);
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(1, 1) = x  (uniform CDF)
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(close(incomplete_beta_regularized(1.0, 1.0, x), x, 1e-12));
        }
        // I_x(2, 2) = 3x² - 2x³
        for &x in &[0.1, 0.5, 0.9] {
            assert!(close(
                incomplete_beta_regularized(2.0, 2.0, x),
                3.0 * x * x - 2.0 * x * x * x,
                1e-10
            ));
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = incomplete_beta_regularized(2.5, 4.0, 0.3);
        let w = 1.0 - incomplete_beta_regularized(4.0, 2.5, 0.7);
        assert!(close(v, w, 1e-10));
    }

    #[test]
    fn ln_beta_consistency() {
        // B(2, 3) = 1/12
        assert!(close(ln_beta(2.0, 3.0), (1.0_f64 / 12.0).ln(), 1e-10));
    }

    #[test]
    #[should_panic(expected = "x must be within")]
    fn incomplete_beta_rejects_out_of_range() {
        incomplete_beta_regularized(1.0, 1.0, 1.5);
    }
}
