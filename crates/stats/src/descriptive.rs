//! Descriptive statistics.
//!
//! A streaming univariate summary accumulator.  This doubles as (a) the
//! numeric backbone of the `profile` module (Table 1: "Data Profiling") and
//! (b) a tiny worked example of the user-defined-aggregate pattern: it has a
//! `update` (transition), `merge`, and read-out (final) structure, and the
//! engine crate exposes it as a UDA.

use std::collections::BTreeMap;

/// Streaming summary of a univariate numeric sample.
///
/// Uses the numerically stable Welford/Chan parallel update so that merging
/// per-segment partial states (the UDA `merge` step) is exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    null_count: u64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            null_count: 0,
        }
    }

    /// Adds one observation (the UDA transition step).  NaN values are
    /// counted as nulls, mirroring SQL aggregate semantics where NULLs are
    /// skipped but counted by the profiler.
    pub fn update(&mut self, x: f64) {
        if x.is_nan() {
            self.null_count += 1;
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a missing value explicitly.
    pub fn update_null(&mut self) {
        self.null_count += 1;
    }

    /// Adds a contiguous slice of observations in order — the vectorized
    /// transition used by chunk-at-a-time scan consumers.  Exactly equivalent
    /// to calling [`Summary::update`] element by element (same accumulation
    /// order, same NaN-as-null handling).
    pub fn update_slice(&mut self, values: &[f64]) {
        for &x in values {
            self.update(x);
        }
    }

    /// Merges another summary into this one (the UDA merge step).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            self.null_count += other.null_count;
            return;
        }
        if self.count == 0 {
            let nulls = self.null_count;
            *self = other.clone();
            self.null_count += nulls;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.null_count += other.null_count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of non-null observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of null/NaN observations.
    pub fn null_count(&self) -> u64 {
        self.null_count
    }

    /// Arithmetic mean; `None` when no observations have been seen.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance; `None` when no observations have been seen.
    pub fn variance_population(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (n − 1 denominator); `None` with fewer than two
    /// observations.
    pub fn variance_sample(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev_sample(&self) -> Option<f64> {
        self.variance_sample().map(f64::sqrt)
    }

    /// Minimum; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of the observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

/// Frequency table for categorical (string) data, used by the profile module
/// to report most-common values and distinct counts exactly on modest
/// cardinalities (the sketch crate handles the approximate large-cardinality
/// case).
#[derive(Debug, Clone, Default)]
pub struct FrequencyTable {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl FrequencyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one categorical observation.
    pub fn update(&mut self, value: &str) {
        *self.counts.entry(value.to_owned()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &FrequencyTable) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
        self.total += other.total;
    }

    /// Number of distinct values seen.
    pub fn distinct_count(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `k` most common values with their counts, most frequent first.
    /// Ties are broken by value (lexicographic) for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> =
            self.counts.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Count of a specific value.
    pub fn count_of(&self, value: &str) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }
}

/// Pearson correlation of two equally-long samples; `None` when either
/// sample is constant or the lengths differ.
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mean_x) * (b - mean_y);
        var_x += (a - mean_x) * (a - mean_x);
        var_y += (b - mean_y) * (b - mean_y);
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.update(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance_population(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
        assert!((s.variance_sample().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_nulls() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance_sample(), None);
        assert_eq!(s.min(), None);
        s.update(f64::NAN);
        s.update_null();
        assert_eq!(s.count(), 0);
        assert_eq!(s.null_count(), 2);
    }

    #[test]
    fn summary_merge_equals_streaming() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.update(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.update(x);
        }
        for &x in &data[37..] {
            right.update(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((left.variance_sample().unwrap() - whole.variance_sample().unwrap()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty_sides() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.update(3.0);
        b.update(5.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(4.0));
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn frequency_table_top_k() {
        let mut f = FrequencyTable::new();
        for v in ["a", "b", "a", "c", "a", "b"] {
            f.update(v);
        }
        assert_eq!(f.distinct_count(), 3);
        assert_eq!(f.total(), 6);
        assert_eq!(f.count_of("a"), 3);
        assert_eq!(f.count_of("zzz"), 0);
        let top = f.top_k(2);
        assert_eq!(top[0], ("a".to_owned(), 3));
        assert_eq!(top[1], ("b".to_owned(), 2));

        let mut g = FrequencyTable::new();
        g.update("c");
        f.merge(&g);
        assert_eq!(f.count_of("c"), 2);
        assert_eq!(f.total(), 7);
    }

    #[test]
    fn pearson_correlation_known_cases() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0, 10.0];
        let y_neg = [10.0, 8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson_correlation(&x, &[1.0, 1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson_correlation(&x, &[1.0]), None);
    }
}
