//! Probability distributions.
//!
//! CDFs and tail probabilities for the distributions the method library
//! needs: Normal (logistic-regression Wald tests), Student-t (linear
//! regression coefficient p-values, exactly the `p_values` column in the
//! paper's Section 4.1 example output), chi-square (C4.5 splits, goodness of
//! fit), and Fisher's F (regression ANOVA).

use crate::special::{erf, incomplete_beta_regularized, lower_incomplete_gamma_regularized};

/// Standard or general Normal distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Standard normal (mean 0, standard deviation 1).
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// General normal distribution.
    ///
    /// # Panics
    /// Panics if `std_dev <= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev > 0.0, "standard deviation must be positive");
        Self { mean, std_dev }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Two-sided tail probability of observing |Z| at least as large as `|z|`.
    pub fn two_sided_p_value(&self, z: f64) -> f64 {
        let standardized = (z - self.mean) / self.std_dev;
        2.0 * (1.0 - Self::standard().cdf(standardized.abs()))
    }

    /// Quantile function (inverse CDF) via bisection on the CDF.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
        // Bisection over a generous bracket of ±10 standard deviations.
        let mut lo = self.mean - 10.0 * self.std_dev;
        let mut hi = self.mean + 10.0 * self.std_dev;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "degrees of freedom must be positive");
        Self { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.df / (self.df + t * t);
        let tail = 0.5 * incomplete_beta_regularized(0.5 * self.df, 0.5, x);
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Two-sided p-value for a t statistic: `P(|T| >= |t|)`.
    ///
    /// This is exactly the quantity reported in the `p_values` column of the
    /// paper's `linregr` example output.
    pub fn two_sided_p_value(&self, t: f64) -> f64 {
        let x = self.df / (self.df + t * t);
        incomplete_beta_regularized(0.5 * self.df, 0.5, x)
    }
}

/// Chi-square distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    df: f64,
}

impl ChiSquare {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "degrees of freedom must be positive");
        Self { df }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        lower_incomplete_gamma_regularized(0.5 * self.df, 0.5 * x)
    }

    /// Upper-tail probability `P(X >= x)`, used as a split-significance test
    /// by the decision-tree module.
    pub fn p_value(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// Fisher's F distribution with `d1` and `d2` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics if either degrees-of-freedom parameter is non-positive.
    pub fn new(d1: f64, d2: f64) -> Self {
        assert!(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
        Self { d1, d2 }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = self.d1 * x / (self.d1 * x + self.d2);
        incomplete_beta_regularized(0.5 * self.d1, 0.5 * self.d2, z)
    }

    /// Upper-tail probability `P(F >= x)` (regression overall-significance
    /// p-value).
    pub fn p_value(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn normal_cdf_known_values() {
        let n = Normal::standard();
        assert!(close(n.cdf(0.0), 0.5, 1e-12));
        assert!(close(n.cdf(1.959_963_985), 0.975, 1e-6));
        assert!(close(n.cdf(-1.959_963_985), 0.025, 1e-6));
        assert!(close(n.cdf(1.0), 0.841_344_746_068_543, 1e-8));
    }

    #[test]
    fn normal_pdf_and_two_sided() {
        let n = Normal::standard();
        assert!(close(n.pdf(0.0), 0.398_942_280_401_432_7, 1e-12));
        assert!(close(n.two_sided_p_value(1.96), 0.05, 1e-3));
        let shifted = Normal::new(5.0, 2.0);
        assert!(close(shifted.cdf(5.0), 0.5, 1e-12));
        assert!(close(shifted.pdf(5.0), 0.199_471_140_200_716_35, 1e-12));
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::standard();
        for &p in &[0.025, 0.1, 0.5, 0.9, 0.975] {
            let q = n.quantile(p);
            assert!(close(n.cdf(q), p, 1e-9));
        }
        assert!(close(n.quantile(0.975), 1.959_963_985, 1e-6));
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn normal_rejects_bad_sigma() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    fn student_t_cdf_known_values() {
        // With df = 1 (Cauchy), CDF(1) = 0.75.
        let t1 = StudentT::new(1.0);
        assert!(close(t1.cdf(1.0), 0.75, 1e-9));
        assert!(close(t1.cdf(0.0), 0.5, 1e-12));
        // With df = 10, CDF(2.228) ≈ 0.975 (the classic t-table value).
        let t10 = StudentT::new(10.0);
        assert!(close(t10.cdf(2.228_138_852), 0.975, 1e-6));
        assert_eq!(t10.df(), 10.0);
    }

    #[test]
    fn student_t_two_sided_p_value() {
        let t10 = StudentT::new(10.0);
        assert!(close(t10.two_sided_p_value(2.228_138_852), 0.05, 1e-6));
        // Large |t| gives tiny p-values, as in the paper's example output.
        assert!(t10.two_sided_p_value(42.0) < 1e-10);
        // Symmetry in the sign of t.
        assert!(close(
            t10.two_sided_p_value(-1.5),
            t10.two_sided_p_value(1.5),
            1e-12
        ));
    }

    #[test]
    fn chi_square_known_values() {
        let c1 = ChiSquare::new(1.0);
        // P(X <= 3.841) ≈ 0.95 for df=1.
        assert!(close(c1.cdf(3.841_458_821), 0.95, 1e-6));
        assert_eq!(c1.cdf(-1.0), 0.0);
        let c5 = ChiSquare::new(5.0);
        assert!(close(c5.cdf(11.070_497_69), 0.95, 1e-6));
        assert!(close(c5.p_value(11.070_497_69), 0.05, 1e-6));
    }

    #[test]
    fn fisher_f_known_values() {
        // F(1, 1): CDF(1) = 0.5.
        let f11 = FisherF::new(1.0, 1.0);
        assert!(close(f11.cdf(1.0), 0.5, 1e-9));
        assert_eq!(f11.cdf(0.0), 0.0);
        // F(2, 10): 95th percentile is ≈ 4.1028.
        let f = FisherF::new(2.0, 10.0);
        assert!(close(f.cdf(4.102_821), 0.95, 1e-5));
        assert!(close(f.p_value(4.102_821), 0.05, 1e-5));
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn chi_square_rejects_bad_df() {
        ChiSquare::new(0.0);
    }
}
