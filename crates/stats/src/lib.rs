//! # madlib-stats
//!
//! Special functions, probability distributions, and descriptive statistics
//! for the MADlib-rs analytics library.
//!
//! The MADlib linear-regression module (paper Section 4.1) reports standard
//! errors, t-statistics and p-values alongside the coefficients; the decision
//! tree (C4.5) module needs chi-square tail probabilities; logistic regression
//! reports Wald z-statistics.  PostgreSQL provides none of these, so the
//! original library carried its own numerical routines.  This crate is the
//! Rust equivalent, implemented from scratch with no external numerical
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
pub mod dist;
pub mod special;

pub use descriptive::Summary;
pub use dist::{ChiSquare, FisherF, Normal, StudentT};
