//! # madlib-convex
//!
//! The unified convex-optimization framework from Section 5.1 of the MADlib
//! paper (the University of Wisconsin contribution): a single stochastic /
//! incremental gradient descent (IGD) driver that trains every model in the
//! paper's Table 2 from one abstraction.
//!
//! The key idea is the decomposable objective `f(x) = Σᵢ fᵢ(x)` where each
//! training tuple contributes one term `fᵢ`.  A model only has to provide the
//! per-tuple loss and gradient ([`ConvexObjective`]); the framework supplies
//! the macro-programming — parallel passes over the table, per-segment model
//! averaging (the merge step), step-size scheduling, convergence testing and
//! the driver loop — exactly as the paper describes reusing MADlib's micro-
//! and macro-programming layers.
//!
//! | Table 2 row            | Objective type |
//! |------------------------|----------------|
//! | Least Squares          | [`objectives::LeastSquaresObjective`] |
//! | Lasso                  | [`objectives::LassoObjective`] |
//! | Logistic Regression    | [`objectives::LogisticObjective`] |
//! | Classification (SVM)   | [`objectives::SvmHingeObjective`] |
//! | Recommendation         | [`objectives::MatrixFactorizationObjective`] |
//! | Labeling (CRF)         | [`objectives::CrfObjective`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod igd;
pub mod objective;
pub mod objectives;
pub mod schedule;

pub use igd::{IgdConfig, IgdEstimator, IgdRunner, IgdSummary};
pub use objective::ConvexObjective;
pub use schedule::StepSchedule;
