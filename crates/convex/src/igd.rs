//! The incremental-gradient-descent (IGD/SGD) driver.
//!
//! One *epoch* of training is a single user-defined aggregate pass over the
//! data, following the parallelized-SGD / model-averaging pattern the paper
//! cites (Zinkevich et al. \[47\]): each segment runs sequential stochastic
//! updates over its local partition starting from the current model (the
//! transition function), the per-segment models are averaged (the merge
//! function), and the averaged model becomes the next epoch's starting point
//! (the final function + driver loop).  Only the model vector ever crosses
//! segment boundaries, so the structure is identical to the paper's Figure 3
//! driver for logistic regression.

use crate::objective::ConvexObjective;
use crate::schedule::StepSchedule;
use madlib_core::train::{Estimator, Session};
use madlib_engine::dataset::Dataset;
use madlib_engine::iteration::{l2_relative_convergence, IterationConfig, IterationController};
use madlib_engine::{Aggregate, Database, EngineError, Executor, Row, RowChunk, Schema, Table};

/// Configuration for an IGD run.
#[derive(Debug, Clone)]
pub struct IgdConfig {
    /// Maximum number of epochs (full passes over the data).
    pub max_epochs: usize,
    /// Convergence tolerance on relative model movement between epochs.
    pub tolerance: f64,
    /// Step-size schedule, evaluated per epoch.
    pub schedule: StepSchedule,
}

impl Default for IgdConfig {
    fn default() -> Self {
        Self {
            max_epochs: 50,
            tolerance: 1e-6,
            schedule: StepSchedule::default(),
        }
    }
}

/// Result of an IGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct IgdSummary {
    /// The fitted model vector.
    pub model: Vec<f64>,
    /// Epochs executed.
    pub epochs: usize,
    /// Whether the movement-based convergence criterion fired.
    pub converged: bool,
    /// Final value of the objective (data loss + regularization).
    pub objective_value: f64,
    /// Objective value at the initial model, for before/after comparisons.
    pub initial_objective_value: f64,
}

/// Runs IGD for any [`ConvexObjective`] over an engine table.
#[derive(Debug, Clone)]
pub struct IgdRunner {
    config: IgdConfig,
}

impl IgdRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: IgdConfig) -> Self {
        Self { config }
    }

    /// Creates a runner with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(IgdConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &IgdConfig {
        &self.config
    }

    /// Trains `objective` over `table`, starting from `initial_model`
    /// (typically all zeros).  Convenience wrapper over
    /// [`IgdRunner::run_dataset`] for callers without a dataset in hand.
    ///
    /// # Errors
    /// Propagates engine errors from the per-epoch aggregate passes; the
    /// initial model length must match the objective dimension.
    pub fn run<O: ConvexObjective>(
        &self,
        executor: &Executor,
        database: &Database,
        table: &Table,
        objective: &O,
        initial_model: Vec<f64>,
    ) -> madlib_engine::Result<IgdSummary> {
        self.run_dataset(
            &Dataset::from_table(table).with_executor(*executor),
            database,
            objective,
            initial_model,
        )
    }

    /// Trains `objective` over a dataset's (filtered) rows, staging the
    /// inter-epoch model state in `database`.
    ///
    /// # Errors
    /// Propagates engine errors from the per-epoch aggregate passes; the
    /// initial model length must match the objective dimension.
    pub fn run_dataset<O: ConvexObjective>(
        &self,
        dataset: &Dataset<'_>,
        database: &Database,
        objective: &O,
        initial_model: Vec<f64>,
    ) -> madlib_engine::Result<IgdSummary> {
        if initial_model.len() != objective.dimension() {
            return Err(EngineError::invalid(format!(
                "initial model has length {}, objective expects {}",
                initial_model.len(),
                objective.dimension()
            )));
        }
        dataset.executor().validate_input(dataset.table(), true)?;
        let initial_objective_value = objective_value_dataset(dataset, objective, &initial_model)?;

        let controller = IterationController::new(
            database.clone(),
            IterationConfig {
                max_iterations: self.config.max_epochs,
                tolerance: self.config.tolerance,
                fail_on_max_iterations: false,
                state_table_name: "igd_state".to_owned(),
            },
        );
        let schedule = self.config.schedule;
        let outcome = controller.run(
            initial_model,
            |model, epoch| {
                let step = schedule.step(epoch);
                let pass = IgdEpoch {
                    objective,
                    start_model: model,
                    step,
                };
                dataset.aggregate(&pass)
            },
            l2_relative_convergence,
        )?;

        let objective_value = objective_value_dataset(dataset, objective, &outcome.final_state)?;
        Ok(IgdSummary {
            model: outcome.final_state,
            epochs: outcome.iterations,
            converged: outcome.converged,
            objective_value,
            initial_objective_value,
        })
    }

    /// Evaluates the full objective (data loss + regularization) at `model`
    /// with one parallel pass.
    ///
    /// # Errors
    /// Propagates row-loss evaluation errors.
    pub fn objective_value<O: ConvexObjective>(
        &self,
        executor: &Executor,
        table: &Table,
        objective: &O,
        model: &[f64],
    ) -> madlib_engine::Result<f64> {
        objective_value_dataset(
            &Dataset::from_table(table).with_executor(*executor),
            objective,
            model,
        )
    }
}

/// Full-objective evaluation (data loss + regularization) over a dataset's
/// (filtered) rows.
fn objective_value_dataset<O: ConvexObjective>(
    dataset: &Dataset<'_>,
    objective: &O,
    model: &[f64],
) -> madlib_engine::Result<f64> {
    let losses = dataset.map_rows(|row, schema| objective.row_loss(row, schema, model))?;
    Ok(losses.iter().sum::<f64>() + objective.regularization(model))
}

/// An IGD training run packaged as an [`Estimator`], so convex-framework
/// objectives train through the same uniform
/// `Session::train(&estimator, &dataset)` convention as the core methods —
/// including per-group training via `Session::train_grouped` (the default
/// per-group gather re-runs the full IGD driver per group).
#[derive(Debug, Clone)]
pub struct IgdEstimator<O: ConvexObjective> {
    objective: O,
    config: IgdConfig,
    initial_model: Option<Vec<f64>>,
}

impl<O: ConvexObjective> IgdEstimator<O> {
    /// Wraps `objective` with the default [`IgdConfig`] and a zero initial
    /// model.
    pub fn new(objective: O) -> Self {
        Self {
            objective,
            config: IgdConfig::default(),
            initial_model: None,
        }
    }

    /// Replaces the IGD configuration (epochs, tolerance, schedule).
    #[must_use]
    pub fn with_config(mut self, config: IgdConfig) -> Self {
        self.config = config;
        self
    }

    /// Starts from an explicit initial model instead of zeros.
    #[must_use]
    pub fn with_initial_model(mut self, initial_model: Vec<f64>) -> Self {
        self.initial_model = Some(initial_model);
        self
    }

    /// The wrapped objective.
    pub fn objective(&self) -> &O {
        &self.objective
    }
}

impl<O: ConvexObjective> Estimator for IgdEstimator<O> {
    type Model = IgdSummary;

    fn fit(&self, dataset: &Dataset<'_>, session: &Session) -> madlib_core::Result<IgdSummary> {
        let initial = self
            .initial_model
            .clone()
            .unwrap_or_else(|| vec![0.0; self.objective.dimension()]);
        IgdRunner::new(self.config.clone())
            .run_dataset(dataset, session.database(), &self.objective, initial)
            .map_err(madlib_core::MethodError::from)
    }
}

/// One epoch of per-segment sequential SGD with model averaging.
struct IgdEpoch<'a, O: ConvexObjective> {
    objective: &'a O,
    start_model: &'a [f64],
    step: f64,
}

/// Per-segment state: the locally-updated model and how many rows shaped it.
struct IgdEpochState {
    model: Vec<f64>,
    rows: u64,
    scratch_gradient: Vec<f64>,
}

impl<O: ConvexObjective> Aggregate for IgdEpoch<'_, O> {
    type State = IgdEpochState;
    type Output = Vec<f64>;

    fn initial_state(&self) -> IgdEpochState {
        IgdEpochState {
            model: self.start_model.to_vec(),
            rows: 0,
            scratch_gradient: vec![0.0; self.start_model.len()],
        }
    }

    fn transition(
        &self,
        state: &mut IgdEpochState,
        row: &Row,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        state.scratch_gradient.iter_mut().for_each(|g| *g = 0.0);
        self.objective.accumulate_gradient(
            row,
            schema,
            &state.model,
            &mut state.scratch_gradient,
        )?;
        for (w, g) in state.model.iter_mut().zip(&state.scratch_gradient) {
            *w -= self.step * g;
        }
        self.objective.proximal(&mut state.model, self.step);
        state.rows += 1;
        Ok(())
    }

    /// Chunk-at-a-time epoch transition: hands the whole chunk to the
    /// objective's [`ConvexObjective::sgd_epoch_chunk`], which runs the same
    /// sequential per-row SGD updates over the chunk's contiguous column
    /// buffers (or falls back to materialized rows).  Bit-identical to the
    /// per-row path by contract.
    fn transition_chunk(
        &self,
        state: &mut IgdEpochState,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> madlib_engine::Result<()> {
        state.rows += self.objective.sgd_epoch_chunk(
            chunk,
            schema,
            &mut state.model,
            &mut state.scratch_gradient,
            self.step,
        )?;
        Ok(())
    }

    fn merge(&self, left: IgdEpochState, right: IgdEpochState) -> IgdEpochState {
        // Model averaging weighted by the number of rows each segment saw.
        if left.rows == 0 {
            return right;
        }
        if right.rows == 0 {
            return left;
        }
        let total = (left.rows + right.rows) as f64;
        let wl = left.rows as f64 / total;
        let wr = right.rows as f64 / total;
        let model = left
            .model
            .iter()
            .zip(&right.model)
            .map(|(a, b)| wl * a + wr * b)
            .collect();
        IgdEpochState {
            model,
            rows: left.rows + right.rows,
            scratch_gradient: left.scratch_gradient,
        }
    }

    fn finalize(&self, state: IgdEpochState) -> madlib_engine::Result<Vec<f64>> {
        if state.rows == 0 {
            return Err(EngineError::aggregate("IGD epoch over empty input"));
        }
        Ok(state.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::LeastSquaresObjective;
    use madlib_engine::{row, Column, ColumnType, Schema};

    fn regression_table(segments: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        // y = 2*x1 - 1*x2, noiseless.
        for i in 0..300 {
            let x1 = (i % 17) as f64 / 17.0 - 0.5;
            let x2 = (i % 11) as f64 / 11.0 - 0.5;
            t.insert(row![2.0 * x1 - x2, vec![x1, x2]]).unwrap();
        }
        t
    }

    #[test]
    fn igd_fits_least_squares() {
        let table = regression_table(4);
        let db = Database::new(4).unwrap();
        let objective = LeastSquaresObjective::new("y", "x", 2);
        let runner = IgdRunner::new(IgdConfig {
            max_epochs: 200,
            tolerance: 1e-9,
            schedule: StepSchedule::Constant(0.05),
        });
        let summary = runner
            .run(&Executor::new(), &db, &table, &objective, vec![0.0, 0.0])
            .unwrap();
        assert!(summary.objective_value < summary.initial_objective_value);
        assert!((summary.model[0] - 2.0).abs() < 0.05, "{:?}", summary.model);
        assert!((summary.model[1] + 1.0).abs() < 0.05, "{:?}", summary.model);
        assert!(summary.epochs <= 200);
        assert!(db.list_tables().is_empty());
    }

    #[test]
    fn warm_start_from_previous_model_converges_in_fewer_epochs() {
        // The incremental-refresh pattern for IGD: after an append, restart
        // the epochs from the previous fitted model instead of zeros.  On the
        // grown table the old optimum is already near the new one, so the
        // warm start both begins closer (lower initial objective) and
        // converges in no more epochs than a cold start.
        let mut table = regression_table(4);
        let db = Database::new(4).unwrap();
        let objective = LeastSquaresObjective::new("y", "x", 2);
        let runner = IgdRunner::new(IgdConfig {
            max_epochs: 400,
            tolerance: 1e-10,
            schedule: StepSchedule::Constant(0.05),
        });
        let executor = Executor::new();
        let cold = runner
            .run(&executor, &db, &table, &objective, vec![0.0, 0.0])
            .unwrap();

        // Append 1% new rows from the same generator.
        for i in 300..303 {
            let x1 = (i % 17) as f64 / 17.0 - 0.5;
            let x2 = (i % 11) as f64 / 11.0 - 0.5;
            table.insert(row![2.0 * x1 - x2, vec![x1, x2]]).unwrap();
        }

        let warm = runner
            .run(&executor, &db, &table, &objective, cold.model.clone())
            .unwrap();
        let cold_again = runner
            .run(&executor, &db, &table, &objective, vec![0.0, 0.0])
            .unwrap();

        assert!(warm.initial_objective_value < cold_again.initial_objective_value);
        assert!(warm.epochs <= cold_again.epochs);
        // Both land on the same optimum within the convergence tolerance.
        for (w, c) in warm.model.iter().zip(&cold_again.model) {
            assert!(
                (w - c).abs() < 1e-4,
                "{:?} vs {:?}",
                warm.model,
                cold_again.model
            );
        }
    }

    #[test]
    fn dimension_mismatch_and_empty_table_are_errors() {
        let table = regression_table(2);
        let db = Database::new(2).unwrap();
        let objective = LeastSquaresObjective::new("y", "x", 2);
        let runner = IgdRunner::with_defaults();
        assert!(runner
            .run(&Executor::new(), &db, &table, &objective, vec![0.0])
            .is_err());

        let empty = Table::new(
            Schema::new(vec![
                Column::new("y", ColumnType::Double),
                Column::new("x", ColumnType::DoubleArray),
            ]),
            2,
        )
        .unwrap();
        assert!(runner
            .run(&Executor::new(), &db, &empty, &objective, vec![0.0, 0.0])
            .is_err());
        assert_eq!(runner.config().max_epochs, 50);
    }

    #[test]
    fn partitioning_changes_but_preserves_quality() {
        // Model averaging is not bitwise partition-invariant, but the fitted
        // quality must be: both runs reach a near-zero objective.
        let table = regression_table(1);
        let objective = LeastSquaresObjective::new("y", "x", 2);
        let config = IgdConfig {
            max_epochs: 150,
            tolerance: 1e-10,
            schedule: StepSchedule::Constant(0.05),
        };
        let one = IgdRunner::new(config.clone())
            .run(
                &Executor::new(),
                &Database::new(1).unwrap(),
                &table,
                &objective,
                vec![0.0, 0.0],
            )
            .unwrap();
        let six = IgdRunner::new(config)
            .run(
                &Executor::new(),
                &Database::new(6).unwrap(),
                &table.repartition(6).unwrap(),
                &objective,
                vec![0.0, 0.0],
            )
            .unwrap();
        assert!(one.objective_value < 0.2);
        assert!(six.objective_value < 0.2);
    }
}
