//! Low-rank matrix-factorization objective (Table 2 row "Recommendation"):
//! `Σ_(i,j)∈Ω (Lᵢᵀ Rⱼ − Mᵢⱼ)² + µ‖L,R‖²_F`.
//!
//! The model vector is the concatenation of the row-major user-factor matrix
//! `L (num_users × rank)` and item-factor matrix `R (num_items × rank)`; each
//! rating tuple touches exactly one row of each, so the per-row gradient is
//! sparse — the pattern the paper highlights as fitting SGD well.

use crate::objective::ConvexObjective;
use madlib_engine::{EngineError, Result, Row, Schema};

/// Matrix-factorization objective over a `(user_id, item_id, rating)` table.
#[derive(Debug, Clone)]
pub struct MatrixFactorizationObjective {
    user_column: String,
    item_column: String,
    rating_column: String,
    num_users: usize,
    num_items: usize,
    rank: usize,
    mu: f64,
}

impl MatrixFactorizationObjective {
    /// Creates the objective.  `num_users`/`num_items` bound the id ranges;
    /// `mu` is the Frobenius regularization weight.
    pub fn new(
        user_column: impl Into<String>,
        item_column: impl Into<String>,
        rating_column: impl Into<String>,
        num_users: usize,
        num_items: usize,
        rank: usize,
        mu: f64,
    ) -> Self {
        Self {
            user_column: user_column.into(),
            item_column: item_column.into(),
            rating_column: rating_column.into(),
            num_users,
            num_items,
            rank,
            mu,
        }
    }

    /// Offset of user `u`'s factor block in the model vector.
    pub fn user_offset(&self, user: usize) -> usize {
        user * self.rank
    }

    /// Offset of item `i`'s factor block in the model vector.
    pub fn item_offset(&self, item: usize) -> usize {
        (self.num_users + item) * self.rank
    }

    /// Predicted rating under a model vector.
    pub fn predict(&self, model: &[f64], user: usize, item: usize) -> f64 {
        let u = self.user_offset(user);
        let i = self.item_offset(item);
        (0..self.rank).map(|f| model[u + f] * model[i + f]).sum()
    }

    /// An initial model with small deterministic values (SGD on a
    /// factorization cannot start at zero because the gradient would vanish).
    pub fn initial_model(&self) -> Vec<f64> {
        let len = (self.num_users + self.num_items) * self.rank;
        (0..len)
            .map(|i| 0.1 + 0.01 * ((i * 2_654_435_761) % 97) as f64 / 97.0)
            .collect()
    }

    fn triple(&self, row: &Row, schema: &Schema) -> Result<(usize, usize, f64)> {
        let user = row.get_named(schema, &self.user_column)?.as_int()?;
        let item = row.get_named(schema, &self.item_column)?.as_int()?;
        let rating = row.get_named(schema, &self.rating_column)?.as_double()?;
        if user < 0 || user as usize >= self.num_users {
            return Err(EngineError::aggregate(format!(
                "user id {user} out of range"
            )));
        }
        if item < 0 || item as usize >= self.num_items {
            return Err(EngineError::aggregate(format!(
                "item id {item} out of range"
            )));
        }
        Ok((user as usize, item as usize, rating))
    }
}

impl ConvexObjective for MatrixFactorizationObjective {
    fn dimension(&self) -> usize {
        (self.num_users + self.num_items) * self.rank
    }

    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64> {
        let (user, item, rating) = self.triple(row, schema)?;
        let err = self.predict(model, user, item) - rating;
        Ok(err * err)
    }

    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()> {
        let (user, item, rating) = self.triple(row, schema)?;
        let err = self.predict(model, user, item) - rating;
        let u = self.user_offset(user);
        let i = self.item_offset(item);
        for f in 0..self.rank {
            gradient[u + f] += 2.0 * err * model[i + f] + 2.0 * self.mu * model[u + f];
            gradient[i + f] += 2.0 * err * model[u + f] + 2.0 * self.mu * model[i + f];
        }
        Ok(())
    }

    fn regularization(&self, model: &[f64]) -> f64 {
        self.mu * model.iter().map(|w| w * w).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igd::{IgdConfig, IgdRunner};
    use crate::schedule::StepSchedule;
    use madlib_engine::{row, Column, ColumnType, Database, Executor, Table};

    fn ratings_table(users: usize, items: usize, segments: usize) -> Table {
        let schema = madlib_engine::Schema::new(vec![
            Column::new("user_id", ColumnType::Int),
            Column::new("item_id", ColumnType::Int),
            Column::new("rating", ColumnType::Double),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        // Rank-1 ground truth: rating(u, i) = a_u * b_i with simple patterns.
        for u in 0..users {
            for i in 0..items {
                let rating = (1.0 + u as f64 * 0.2) * (0.5 + i as f64 * 0.1);
                t.insert(row![u as i64, i as i64, rating]).unwrap();
            }
        }
        t
    }

    #[test]
    fn factorization_reduces_reconstruction_error() {
        let table = ratings_table(8, 10, 3);
        let objective =
            MatrixFactorizationObjective::new("user_id", "item_id", "rating", 8, 10, 2, 1e-4);
        let runner = IgdRunner::new(IgdConfig {
            max_epochs: 300,
            tolerance: 1e-10,
            schedule: StepSchedule::Constant(0.03),
        });
        let summary = runner
            .run(
                &Executor::new(),
                &Database::new(3).unwrap(),
                &table,
                &objective,
                objective.initial_model(),
            )
            .unwrap();
        assert!(summary.objective_value < 0.05 * summary.initial_objective_value);
        // Spot-check one reconstruction.
        let truth = (1.0 + 3.0 * 0.2) * (0.5 + 4.0 * 0.1);
        let predicted = objective.predict(&summary.model, 3, 4);
        assert!((predicted - truth).abs() < 0.25, "{predicted} vs {truth}");
    }

    #[test]
    fn id_range_checks() {
        let schema = madlib_engine::Schema::new(vec![
            Column::new("user_id", ColumnType::Int),
            Column::new("item_id", ColumnType::Int),
            Column::new("rating", ColumnType::Double),
        ]);
        let objective =
            MatrixFactorizationObjective::new("user_id", "item_id", "rating", 3, 3, 2, 0.0);
        let bad_user = row![7i64, 0i64, 1.0];
        let model = objective.initial_model();
        assert!(objective.row_loss(&bad_user, &schema, &model).is_err());
        let bad_item = row![0i64, 9i64, 1.0];
        let mut g = vec![0.0; objective.dimension()];
        assert!(objective
            .accumulate_gradient(&bad_item, &schema, &model, &mut g)
            .is_err());
    }

    #[test]
    fn layout_offsets_are_disjoint() {
        let objective = MatrixFactorizationObjective::new("u", "i", "r", 4, 5, 3, 0.0);
        assert_eq!(objective.dimension(), (4 + 5) * 3);
        assert_eq!(objective.user_offset(0), 0);
        assert_eq!(objective.user_offset(3), 9);
        assert_eq!(objective.item_offset(0), 12);
        assert_eq!(objective.item_offset(4), 24);
        assert!(objective.regularization(&objective.initial_model()) >= 0.0);
        assert_eq!(objective.initial_model().len(), objective.dimension());
    }
}
