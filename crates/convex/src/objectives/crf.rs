//! Linear-chain conditional-random-field objective (Table 2 row
//! "Labeling (CRF)"): the negative log-likelihood
//! `Σ_k [ log Z(z_k) − Σ_j w_j F_j(y_k, z_k) ]`.
//!
//! Each table row is one labeled token sequence: an observation column
//! (`bigint[]` of per-token observation symbols) and a label column
//! (`bigint[]` of per-token labels).  The parameter vector concatenates an
//! emission weight matrix (label × observation symbol) and a transition
//! weight matrix (label × label).  The per-sequence gradient is the classic
//! "observed features minus expected features" computed with the
//! forward–backward algorithm in log space.

use crate::objective::ConvexObjective;
use madlib_engine::{EngineError, Result, Row, Schema};

/// Numerically stable log-sum-exp.
fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max.is_infinite() {
        return max;
    }
    max + values.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

/// Linear-chain CRF negative log-likelihood objective.
#[derive(Debug, Clone)]
pub struct CrfObjective {
    observations_column: String,
    labels_column: String,
    num_labels: usize,
    num_observations: usize,
}

impl CrfObjective {
    /// Creates the objective for `num_labels` label values and
    /// `num_observations` distinct observation symbols.
    pub fn new(
        observations_column: impl Into<String>,
        labels_column: impl Into<String>,
        num_labels: usize,
        num_observations: usize,
    ) -> Self {
        Self {
            observations_column: observations_column.into(),
            labels_column: labels_column.into(),
            num_labels,
            num_observations,
        }
    }

    /// Number of label values.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Index of the emission weight for (label, observation).
    pub fn emission_index(&self, label: usize, observation: usize) -> usize {
        label * self.num_observations + observation
    }

    /// Index of the transition weight for (previous label, label).
    pub fn transition_index(&self, previous: usize, label: usize) -> usize {
        self.num_labels * self.num_observations + previous * self.num_labels + label
    }

    fn sequence(&self, row: &Row, schema: &Schema) -> Result<(Vec<usize>, Vec<usize>)> {
        let observations = row
            .get_named(schema, &self.observations_column)?
            .as_int_array()?;
        let labels = row.get_named(schema, &self.labels_column)?.as_int_array()?;
        if observations.len() != labels.len() {
            return Err(EngineError::aggregate(
                "observation and label sequences must have equal length",
            ));
        }
        let obs: Vec<usize> = observations
            .iter()
            .map(|&o| {
                if o < 0 || o as usize >= self.num_observations {
                    Err(EngineError::aggregate(format!(
                        "observation {o} out of range"
                    )))
                } else {
                    Ok(o as usize)
                }
            })
            .collect::<Result<_>>()?;
        let labs: Vec<usize> = labels
            .iter()
            .map(|&l| {
                if l < 0 || l as usize >= self.num_labels {
                    Err(EngineError::aggregate(format!("label {l} out of range")))
                } else {
                    Ok(l as usize)
                }
            })
            .collect::<Result<_>>()?;
        Ok((obs, labs))
    }

    /// Unnormalized log-score of a (labels, observations) pair under `model`.
    pub fn sequence_score(&self, model: &[f64], observations: &[usize], labels: &[usize]) -> f64 {
        let mut score = 0.0;
        for (t, (&obs, &label)) in observations.iter().zip(labels).enumerate() {
            score += model[self.emission_index(label, obs)];
            if t > 0 {
                score += model[self.transition_index(labels[t - 1], label)];
            }
        }
        score
    }

    /// Log partition function and per-position forward messages (log space).
    fn forward(&self, model: &[f64], observations: &[usize]) -> (Vec<Vec<f64>>, f64) {
        let n = observations.len();
        let k = self.num_labels;
        let mut alpha = vec![vec![f64::NEG_INFINITY; k]; n];
        for label in 0..k {
            alpha[0][label] = model[self.emission_index(label, observations[0])];
        }
        for t in 1..n {
            for label in 0..k {
                let scores: Vec<f64> = (0..k)
                    .map(|prev| alpha[t - 1][prev] + model[self.transition_index(prev, label)])
                    .collect();
                alpha[t][label] =
                    log_sum_exp(&scores) + model[self.emission_index(label, observations[t])];
            }
        }
        let log_z = log_sum_exp(&alpha[n - 1]);
        (alpha, log_z)
    }

    fn backward(&self, model: &[f64], observations: &[usize]) -> Vec<Vec<f64>> {
        let n = observations.len();
        let k = self.num_labels;
        let mut beta = vec![vec![0.0; k]; n];
        for t in (0..n - 1).rev() {
            for label in 0..k {
                let scores: Vec<f64> = (0..k)
                    .map(|next| {
                        beta[t + 1][next]
                            + model[self.transition_index(label, next)]
                            + model[self.emission_index(next, observations[t + 1])]
                    })
                    .collect();
                beta[t][label] = log_sum_exp(&scores);
            }
        }
        beta
    }
}

impl ConvexObjective for CrfObjective {
    fn dimension(&self) -> usize {
        self.num_labels * self.num_observations + self.num_labels * self.num_labels
    }

    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64> {
        let (observations, labels) = self.sequence(row, schema)?;
        if observations.is_empty() {
            return Ok(0.0);
        }
        let (_alpha, log_z) = self.forward(model, &observations);
        Ok(log_z - self.sequence_score(model, &observations, &labels))
    }

    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()> {
        let (observations, labels) = self.sequence(row, schema)?;
        if observations.is_empty() {
            return Ok(());
        }
        let n = observations.len();
        let k = self.num_labels;
        let (alpha, log_z) = self.forward(model, &observations);
        let beta = self.backward(model, &observations);

        // Gradient of the negative log-likelihood = expected − observed.
        // Observed feature counts.
        for (t, (&obs, &label)) in observations.iter().zip(&labels).enumerate() {
            gradient[self.emission_index(label, obs)] -= 1.0;
            if t > 0 {
                gradient[self.transition_index(labels[t - 1], label)] -= 1.0;
            }
        }
        // Expected emission counts from the node marginals.
        for t in 0..n {
            for label in 0..k {
                let marginal = (alpha[t][label] + beta[t][label] - log_z).exp();
                gradient[self.emission_index(label, observations[t])] += marginal;
            }
        }
        // Expected transition counts from the edge marginals.
        for t in 1..n {
            for prev in 0..k {
                for label in 0..k {
                    let log_edge = alpha[t - 1][prev]
                        + model[self.transition_index(prev, label)]
                        + model[self.emission_index(label, observations[t])]
                        + beta[t][label]
                        - log_z;
                    gradient[self.transition_index(prev, label)] += log_edge.exp();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igd::{IgdConfig, IgdRunner};
    use crate::schedule::StepSchedule;
    use madlib_engine::{Column, ColumnType, Database, Executor, Row, Table, Value};

    fn sequence_schema() -> madlib_engine::Schema {
        madlib_engine::Schema::new(vec![
            Column::new("observations", ColumnType::IntArray),
            Column::new("labels", ColumnType::IntArray),
        ])
    }

    /// Corpus where observation o deterministically carries label o % 2 and
    /// labels alternate — learnable by both emission and transition weights.
    fn corpus(segments: usize, sequences: usize) -> Table {
        let mut t = Table::new(sequence_schema(), segments).unwrap();
        for s in 0..sequences {
            let length = 6 + (s % 3);
            let mut observations = Vec::with_capacity(length);
            let mut labels = Vec::with_capacity(length);
            for t_idx in 0..length {
                let label = (t_idx + s) % 2;
                // Observation symbols 0/1 signal label 0, symbols 2/3 signal
                // label 1; the low bit varies with the sequence index so all
                // four symbols appear in the corpus.
                let obs = label * 2 + (s % 2);
                observations.push(obs as i64);
                labels.push(label as i64);
            }
            t.insert(Row::new(vec![
                Value::IntArray(observations),
                Value::IntArray(labels),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn log_sum_exp_is_stable() {
        assert!((log_sum_exp(&[0.0, 0.0]) - 2.0_f64.ln()).abs() < 1e-12);
        assert!((log_sum_exp(&[1000.0, 1000.0]) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn zero_model_loss_is_uniform_log_likelihood() {
        let objective = CrfObjective::new("observations", "labels", 2, 4);
        let schema = sequence_schema();
        let row = Row::new(vec![
            Value::IntArray(vec![0, 2, 1]),
            Value::IntArray(vec![0, 1, 0]),
        ]);
        let model = vec![0.0; objective.dimension()];
        // With all-zero weights every labeling is equally likely: loss is
        // T·0 subtracted from log(K^T)... precisely log(2^3).
        let loss = objective.row_loss(&row, &schema, &model).unwrap();
        assert!((loss - (8.0_f64).ln()) < 1e-9);
    }

    #[test]
    fn gradient_at_zero_matches_finite_differences() {
        let objective = CrfObjective::new("observations", "labels", 2, 4);
        let schema = sequence_schema();
        let row = Row::new(vec![
            Value::IntArray(vec![0, 3, 1, 2]),
            Value::IntArray(vec![0, 1, 0, 1]),
        ]);
        let dim = objective.dimension();
        let model = vec![0.1; dim];
        let mut analytic = vec![0.0; dim];
        objective
            .accumulate_gradient(&row, &schema, &model, &mut analytic)
            .unwrap();
        let eps = 1e-5;
        for i in (0..dim).step_by(3) {
            let mut plus = model.clone();
            plus[i] += eps;
            let mut minus = model.clone();
            minus[i] -= eps;
            let numeric = (objective.row_loss(&row, &schema, &plus).unwrap()
                - objective.row_loss(&row, &schema, &minus).unwrap())
                / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-4,
                "component {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn training_reduces_negative_log_likelihood_and_learns_emissions() {
        let table = corpus(2, 40);
        let objective = CrfObjective::new("observations", "labels", 2, 4);
        let runner = IgdRunner::new(IgdConfig {
            max_epochs: 60,
            tolerance: 1e-9,
            schedule: StepSchedule::Constant(0.05),
        });
        let summary = runner
            .run(
                &Executor::new(),
                &Database::new(2).unwrap(),
                &table,
                &objective,
                vec![0.0; objective.dimension()],
            )
            .unwrap();
        assert!(summary.objective_value < 0.5 * summary.initial_objective_value);
        // Emission weights: observation 0 and 1 should favor label 0; 2 and 3
        // should favor label 1.
        let m = &summary.model;
        assert!(m[objective.emission_index(0, 0)] > m[objective.emission_index(1, 0)]);
        assert!(m[objective.emission_index(1, 2)] > m[objective.emission_index(0, 2)]);
    }

    #[test]
    fn malformed_sequences_are_rejected() {
        let objective = CrfObjective::new("observations", "labels", 2, 4);
        let schema = sequence_schema();
        let model = vec![0.0; objective.dimension()];
        let mismatched = Row::new(vec![Value::IntArray(vec![0, 1]), Value::IntArray(vec![0])]);
        assert!(objective.row_loss(&mismatched, &schema, &model).is_err());
        let bad_label = Row::new(vec![Value::IntArray(vec![0]), Value::IntArray(vec![7])]);
        assert!(objective.row_loss(&bad_label, &schema, &model).is_err());
        let bad_obs = Row::new(vec![Value::IntArray(vec![9]), Value::IntArray(vec![0])]);
        let mut g = vec![0.0; objective.dimension()];
        assert!(objective
            .accumulate_gradient(&bad_obs, &schema, &model, &mut g)
            .is_err());
        // Empty sequences contribute nothing.
        let empty = Row::new(vec![Value::IntArray(vec![]), Value::IntArray(vec![])]);
        assert_eq!(objective.row_loss(&empty, &schema, &model).unwrap(), 0.0);
    }
}
