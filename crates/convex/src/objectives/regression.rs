//! Regression objectives: least squares, ridge, and lasso (Table 2 rows
//! "Least Squares" and "Lasso").

use crate::objective::{sgd_epoch_chunk_by_rows, ConvexObjective};
use madlib_engine::{Result, Row, RowChunk, Schema};

fn labeled_point<'a>(
    row: &'a Row,
    schema: &Schema,
    y_column: &str,
    x_column: &str,
) -> Result<(f64, &'a [f64])> {
    let y = row.get_named(schema, y_column)?.as_double()?;
    let x = row.get_named(schema, x_column)?.as_double_array()?;
    Ok((y, x))
}

/// Squared-error objective `Σ (⟨w, x⟩ − y)²`.
#[derive(Debug, Clone)]
pub struct LeastSquaresObjective {
    y_column: String,
    x_column: String,
    dimension: usize,
}

impl LeastSquaresObjective {
    /// Creates the objective for feature vectors of length `dimension`.
    pub fn new(y_column: impl Into<String>, x_column: impl Into<String>, dimension: usize) -> Self {
        Self {
            y_column: y_column.into(),
            x_column: x_column.into(),
            dimension,
        }
    }
}

impl ConvexObjective for LeastSquaresObjective {
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64> {
        let (y, x) = labeled_point(row, schema, &self.y_column, &self.x_column)?;
        let residual: f64 = x.iter().zip(model).map(|(a, b)| a * b).sum::<f64>() - y;
        Ok(residual * residual)
    }

    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()> {
        let (y, x) = labeled_point(row, schema, &self.y_column, &self.x_column)?;
        let residual: f64 = x.iter().zip(model).map(|(a, b)| a * b).sum::<f64>() - y;
        for (g, xi) in gradient.iter_mut().zip(x) {
            *g += 2.0 * residual * xi;
        }
        Ok(())
    }

    /// Vectorized epoch inner loop: reads the chunk's `(y, x)` buffers
    /// directly, skipping per-row `Value` unpacking.  The model update is
    /// still sequential per row (that is the definition of IGD) and repeats
    /// the per-row arithmetic exactly — the scratch gradient is zeroed and
    /// filled the same way — so the result is bit-identical to the fallback.
    /// Chunks with NULLs, wrong column types, or widths the per-row `zip`s
    /// would truncate fall back to [`sgd_epoch_chunk_by_rows`].
    fn sgd_epoch_chunk(
        &self,
        chunk: &RowChunk,
        schema: &Schema,
        model: &mut [f64],
        scratch_gradient: &mut [f64],
        step: f64,
    ) -> Result<u64> {
        let y_idx = schema.index_of(&self.y_column)?;
        let x_idx = schema.index_of(&self.x_column)?;
        let (y, x) = match (chunk.doubles(y_idx), chunk.double_arrays(x_idx)) {
            (Ok(y), Ok(x)) if !y.nulls.any_null() && !x.nulls().any_null() => (y, x),
            _ => {
                return sgd_epoch_chunk_by_rows(self, chunk, schema, model, scratch_gradient, step)
            }
        };
        if x.uniform_width() != Some(model.len()) || model.is_empty() {
            return sgd_epoch_chunk_by_rows(self, chunk, schema, model, scratch_gradient, step);
        }
        let width = model.len();
        for (point, &yv) in x.flat_values().chunks_exact(width).zip(y.values) {
            let mut dot = 0.0;
            for (xi, wi) in point.iter().zip(model.iter()) {
                dot += xi * wi;
            }
            let residual = dot - yv;
            scratch_gradient.iter_mut().for_each(|g| *g = 0.0);
            for (g, xi) in scratch_gradient.iter_mut().zip(point) {
                *g += 2.0 * residual * xi;
            }
            for (w, g) in model.iter_mut().zip(scratch_gradient.iter()) {
                *w -= step * g;
            }
            self.proximal(model, step);
        }
        Ok(chunk.len() as u64)
    }
}

/// Ridge regression: least squares plus `µ‖w‖₂²`.
#[derive(Debug, Clone)]
pub struct RidgeObjective {
    inner: LeastSquaresObjective,
    mu: f64,
}

impl RidgeObjective {
    /// Creates the objective with L2 penalty `mu`.
    pub fn new(
        y_column: impl Into<String>,
        x_column: impl Into<String>,
        dimension: usize,
        mu: f64,
    ) -> Self {
        Self {
            inner: LeastSquaresObjective::new(y_column, x_column, dimension),
            mu,
        }
    }
}

impl ConvexObjective for RidgeObjective {
    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64> {
        self.inner.row_loss(row, schema, model)
    }

    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()> {
        self.inner
            .accumulate_gradient(row, schema, model, gradient)?;
        // The L2 term is spread across rows by the per-row update; adding the
        // full gradient of µ‖w‖² at every row would over-regularize, so it is
        // scaled into the per-row step via the proximal hook instead.
        Ok(())
    }

    fn proximal(&self, model: &mut [f64], step: f64) {
        // Weight decay: w ← w · (1 − 2·step·µ) — the gradient step of µ‖w‖².
        let shrink = (1.0 - 2.0 * step * self.mu).max(0.0);
        for w in model {
            *w *= shrink;
        }
    }

    fn regularization(&self, model: &[f64]) -> f64 {
        self.mu * model.iter().map(|w| w * w).sum::<f64>()
    }
}

/// Lasso: least squares plus `µ‖w‖₁`, handled with the soft-thresholding
/// proximal operator (the standard ISTA/proximal-SGD treatment, since the L1
/// term is not differentiable).
#[derive(Debug, Clone)]
pub struct LassoObjective {
    inner: LeastSquaresObjective,
    mu: f64,
}

impl LassoObjective {
    /// Creates the objective with L1 penalty `mu`.
    pub fn new(
        y_column: impl Into<String>,
        x_column: impl Into<String>,
        dimension: usize,
        mu: f64,
    ) -> Self {
        Self {
            inner: LeastSquaresObjective::new(y_column, x_column, dimension),
            mu,
        }
    }
}

impl ConvexObjective for LassoObjective {
    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64> {
        self.inner.row_loss(row, schema, model)
    }

    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()> {
        self.inner.accumulate_gradient(row, schema, model, gradient)
    }

    fn proximal(&self, model: &mut [f64], step: f64) {
        let threshold = step * self.mu;
        for w in model {
            *w = w.signum() * (w.abs() - threshold).max(0.0);
        }
    }

    fn regularization(&self, model: &[f64]) -> f64 {
        self.mu * model.iter().map(|w| w.abs()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igd::{IgdConfig, IgdRunner};
    use crate::schedule::StepSchedule;
    use madlib_engine::{row, Column, ColumnType, Database, Executor, Schema, Table};

    fn table_with_sparse_truth(segments: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        // y depends only on x1 of four features: the lasso should zero the rest.
        for i in 0..400 {
            let x1 = ((i * 7) % 13) as f64 / 13.0 - 0.5;
            let x2 = ((i * 3) % 11) as f64 / 11.0 - 0.5;
            let x3 = ((i * 5) % 17) as f64 / 17.0 - 0.5;
            let x4 = ((i * 11) % 19) as f64 / 19.0 - 0.5;
            t.insert(row![3.0 * x1, vec![x1, x2, x3, x4]]).unwrap();
        }
        t
    }

    fn run<O: ConvexObjective>(objective: &O, table: &Table, epochs: usize) -> Vec<f64> {
        let runner = IgdRunner::new(IgdConfig {
            max_epochs: epochs,
            tolerance: 1e-10,
            schedule: StepSchedule::Constant(0.05),
        });
        runner
            .run(
                &Executor::new(),
                &Database::new(table.num_segments()).unwrap(),
                table,
                objective,
                vec![0.0; objective.dimension()],
            )
            .unwrap()
            .model
    }

    #[test]
    fn least_squares_gradient_is_correct() {
        let schema = Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let r = row![2.0, vec![1.0, 3.0]];
        let obj = LeastSquaresObjective::new("y", "x", 2);
        let model = [0.5, 0.5];
        // residual = 0.5 + 1.5 - 2 = 0; gradient = 0.
        assert_eq!(obj.row_loss(&r, &schema, &model).unwrap(), 0.0);
        let mut g = vec![0.0, 0.0];
        obj.accumulate_gradient(&r, &schema, &model, &mut g)
            .unwrap();
        assert_eq!(g, vec![0.0, 0.0]);
        // With model 0: residual = -2, loss 4, gradient = 2*(-2)*x.
        assert_eq!(obj.row_loss(&r, &schema, &[0.0, 0.0]).unwrap(), 4.0);
        let mut g = vec![0.0, 0.0];
        obj.accumulate_gradient(&r, &schema, &[0.0, 0.0], &mut g)
            .unwrap();
        assert_eq!(g, vec![-4.0, -12.0]);
    }

    #[test]
    fn lasso_shrinks_irrelevant_coefficients() {
        let table = table_with_sparse_truth(3);
        let lasso = LassoObjective::new("y", "x", 4, 0.05);
        let model = run(&lasso, &table, 200);
        assert!(
            (model[0] - 3.0).abs() < 0.5,
            "relevant coefficient {model:?}"
        );
        for irrelevant in &model[1..] {
            assert!(
                irrelevant.abs() < 0.15,
                "irrelevant coefficient should shrink toward zero: {model:?}"
            );
        }
        // The penalized objective reports a non-zero regularization term.
        assert!(lasso.regularization(&model) > 0.0);
    }

    #[test]
    fn ridge_decays_weights() {
        let table = table_with_sparse_truth(2);
        let ridge = RidgeObjective::new("y", "x", 4, 0.5);
        let plain = LeastSquaresObjective::new("y", "x", 4);
        let ridge_model = run(&ridge, &table, 100);
        let plain_model = run(&plain, &table, 100);
        let ridge_norm: f64 = ridge_model.iter().map(|w| w * w).sum();
        let plain_norm: f64 = plain_model.iter().map(|w| w * w).sum();
        assert!(ridge_norm < plain_norm, "ridge must shrink the weight norm");
        assert!(ridge.regularization(&ridge_model) > 0.0);
        assert_eq!(ridge.dimension(), 4);
    }

    #[test]
    fn soft_threshold_operator() {
        let lasso = LassoObjective::new("y", "x", 3, 1.0);
        let mut model = vec![2.0, -0.5, 0.3];
        lasso.proximal(&mut model, 0.4); // threshold = 0.4
        assert!((model[0] - 1.6).abs() < 1e-12);
        assert!((model[1] + 0.1).abs() < 1e-12);
        assert_eq!(model[2], 0.0);
        assert!((lasso.regularization(&[1.0, -2.0, 0.0]) - 3.0).abs() < 1e-12);
    }
}
