//! The model objectives of the paper's Table 2, all expressed against the
//! [`crate::ConvexObjective`] abstraction.

pub mod classification;
pub mod crf;
pub mod factorization;
pub mod regression;

pub use classification::{LogisticObjective, SvmHingeObjective};
pub use crf::CrfObjective;
pub use factorization::MatrixFactorizationObjective;
pub use regression::{LassoObjective, LeastSquaresObjective, RidgeObjective};
