//! Classification objectives: logistic loss and SVM hinge loss (Table 2 rows
//! "Logistic Regression" and "Classification (SVM)").
//!
//! Both objectives expect labels encoded as ±1 in the label column (0/1
//! labels are remapped on the fly), matching the `Σ log(1 + exp(−y xᵀw))`
//! and `Σ (1 − y xᵀw)₊` forms printed in the paper's Table 2.

use crate::objective::{sgd_epoch_chunk_by_rows, ConvexObjective};
use madlib_engine::{Result, Row, RowChunk, Schema};

fn signed_label(raw: f64) -> f64 {
    if raw == 0.0 {
        -1.0
    } else {
        raw.signum()
    }
}

fn labeled_point<'a>(
    row: &'a Row,
    schema: &Schema,
    y_column: &str,
    x_column: &str,
) -> Result<(f64, &'a [f64])> {
    let y = row.get_named(schema, y_column)?.as_double()?;
    let x = row.get_named(schema, x_column)?.as_double_array()?;
    Ok((signed_label(y), x))
}

/// Logistic-loss objective `Σ log(1 + exp(−y ⟨w, x⟩))`.
#[derive(Debug, Clone)]
pub struct LogisticObjective {
    y_column: String,
    x_column: String,
    dimension: usize,
}

impl LogisticObjective {
    /// Creates the objective for feature vectors of length `dimension`.
    pub fn new(y_column: impl Into<String>, x_column: impl Into<String>, dimension: usize) -> Self {
        Self {
            y_column: y_column.into(),
            x_column: x_column.into(),
            dimension,
        }
    }
}

impl ConvexObjective for LogisticObjective {
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64> {
        let (y, x) = labeled_point(row, schema, &self.y_column, &self.x_column)?;
        let margin: f64 = x.iter().zip(model).map(|(a, b)| a * b).sum::<f64>() * y;
        // log(1 + exp(-margin)) computed stably.
        Ok(if margin > 0.0 {
            (-margin).exp().ln_1p()
        } else {
            -margin + margin.exp().ln_1p()
        })
    }

    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()> {
        let (y, x) = labeled_point(row, schema, &self.y_column, &self.x_column)?;
        let margin: f64 = x.iter().zip(model).map(|(a, b)| a * b).sum::<f64>() * y;
        let sigma = 1.0 / (1.0 + margin.exp()); // σ(−margin)
        for (g, xi) in gradient.iter_mut().zip(x) {
            *g += -y * sigma * xi;
        }
        Ok(())
    }

    /// Vectorized epoch inner loop over the chunk's contiguous `(y, x)`
    /// buffers; sequential per-row updates with the exact per-row arithmetic
    /// (same scratch zero/accumulate/step sequence), so bit-identical to the
    /// fallback.  Unrepresentable chunks fall back to
    /// [`sgd_epoch_chunk_by_rows`].
    fn sgd_epoch_chunk(
        &self,
        chunk: &RowChunk,
        schema: &Schema,
        model: &mut [f64],
        scratch_gradient: &mut [f64],
        step: f64,
    ) -> Result<u64> {
        let y_idx = schema.index_of(&self.y_column)?;
        let x_idx = schema.index_of(&self.x_column)?;
        let (y, x) = match (chunk.doubles(y_idx), chunk.double_arrays(x_idx)) {
            (Ok(y), Ok(x)) if !y.nulls.any_null() && !x.nulls().any_null() => (y, x),
            _ => {
                return sgd_epoch_chunk_by_rows(self, chunk, schema, model, scratch_gradient, step)
            }
        };
        if x.uniform_width() != Some(model.len()) || model.is_empty() {
            return sgd_epoch_chunk_by_rows(self, chunk, schema, model, scratch_gradient, step);
        }
        let width = model.len();
        for (point, &raw) in x.flat_values().chunks_exact(width).zip(y.values) {
            let yv = signed_label(raw);
            let mut dot = 0.0;
            for (xi, wi) in point.iter().zip(model.iter()) {
                dot += xi * wi;
            }
            let margin = dot * yv;
            let sigma = 1.0 / (1.0 + margin.exp());
            scratch_gradient.iter_mut().for_each(|g| *g = 0.0);
            for (g, xi) in scratch_gradient.iter_mut().zip(point) {
                *g += -yv * sigma * xi;
            }
            for (w, g) in model.iter_mut().zip(scratch_gradient.iter()) {
                *w -= step * g;
            }
            self.proximal(model, step);
        }
        Ok(chunk.len() as u64)
    }
}

/// Hinge-loss objective `Σ (1 − y ⟨w, x⟩)₊` with optional L2 regularization.
#[derive(Debug, Clone)]
pub struct SvmHingeObjective {
    y_column: String,
    x_column: String,
    dimension: usize,
    lambda: f64,
}

impl SvmHingeObjective {
    /// Creates the objective with L2 penalty `lambda` (0 disables it).
    pub fn new(
        y_column: impl Into<String>,
        x_column: impl Into<String>,
        dimension: usize,
        lambda: f64,
    ) -> Self {
        Self {
            y_column: y_column.into(),
            x_column: x_column.into(),
            dimension,
            lambda,
        }
    }
}

impl ConvexObjective for SvmHingeObjective {
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64> {
        let (y, x) = labeled_point(row, schema, &self.y_column, &self.x_column)?;
        let margin: f64 = x.iter().zip(model).map(|(a, b)| a * b).sum::<f64>() * y;
        Ok((1.0 - margin).max(0.0))
    }

    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()> {
        let (y, x) = labeled_point(row, schema, &self.y_column, &self.x_column)?;
        let margin: f64 = x.iter().zip(model).map(|(a, b)| a * b).sum::<f64>() * y;
        if margin < 1.0 {
            for (g, xi) in gradient.iter_mut().zip(x) {
                *g += -y * xi;
            }
        }
        Ok(())
    }

    fn proximal(&self, model: &mut [f64], step: f64) {
        if self.lambda > 0.0 {
            let shrink = (1.0 - step * self.lambda).max(0.0);
            for w in model {
                *w *= shrink;
            }
        }
    }

    fn regularization(&self, model: &[f64]) -> f64 {
        0.5 * self.lambda * model.iter().map(|w| w * w).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igd::{IgdConfig, IgdRunner};
    use crate::schedule::StepSchedule;
    use madlib_engine::{row, Column, ColumnType, Database, Executor, Schema, Table};

    fn separable_table(segments: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        for i in 0..200 {
            let shift = 1.0 + (i % 7) as f64 * 0.1;
            t.insert(row![1.0, vec![1.0, shift]]).unwrap();
            t.insert(row![-1.0, vec![1.0, -shift]]).unwrap();
        }
        t
    }

    fn accuracy(model: &[f64], table: &Table) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for r in table.iter() {
            let y = signed_label(r.get(0).as_double().unwrap());
            let x = r.get(1).as_double_array().unwrap();
            let score: f64 = x.iter().zip(model).map(|(a, b)| a * b).sum();
            if score.signum() == y {
                correct += 1;
            }
            total += 1;
        }
        correct as f64 / total as f64
    }

    #[test]
    fn logistic_objective_learns_separator() {
        let table = separable_table(3);
        let objective = LogisticObjective::new("y", "x", 2);
        let summary = IgdRunner::new(IgdConfig {
            max_epochs: 100,
            tolerance: 1e-9,
            schedule: StepSchedule::Constant(0.1),
        })
        .run(
            &Executor::new(),
            &Database::new(3).unwrap(),
            &table,
            &objective,
            vec![0.0, 0.0],
        )
        .unwrap();
        assert!(summary.objective_value < summary.initial_objective_value);
        assert!(accuracy(&summary.model, &table) > 0.99);
    }

    #[test]
    fn hinge_objective_learns_separator() {
        let table = separable_table(3);
        let objective = SvmHingeObjective::new("y", "x", 2, 1e-3);
        let summary = IgdRunner::new(IgdConfig {
            max_epochs: 60,
            tolerance: 1e-9,
            schedule: StepSchedule::InverseSqrt(0.5),
        })
        .run(
            &Executor::new(),
            &Database::new(3).unwrap(),
            &table,
            &objective,
            vec![0.0, 0.0],
        )
        .unwrap();
        assert!(accuracy(&summary.model, &table) > 0.99);
        assert!(objective.regularization(&summary.model) >= 0.0);
    }

    #[test]
    fn loss_values_match_closed_forms() {
        let schema = Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let positive = row![1.0, vec![2.0]];
        let negative = row![0.0, vec![2.0]]; // remapped to −1
        let logistic = LogisticObjective::new("y", "x", 1);
        let model = [0.5];
        // margin = 1 for the positive row.
        let expected = (1.0_f64 + (-1.0_f64).exp()).ln();
        assert!((logistic.row_loss(&positive, &schema, &model).unwrap() - expected).abs() < 1e-12);
        // Negative row: margin = -1, loss = ln(1 + e).
        let expected_neg = (1.0_f64 + 1.0_f64.exp()).ln();
        assert!(
            (logistic.row_loss(&negative, &schema, &model).unwrap() - expected_neg).abs() < 1e-9
        );

        let hinge = SvmHingeObjective::new("y", "x", 1, 0.0);
        assert_eq!(hinge.row_loss(&positive, &schema, &model).unwrap(), 0.0);
        assert_eq!(hinge.row_loss(&negative, &schema, &model).unwrap(), 2.0);
        // Gradient of the satisfied hinge constraint is zero.
        let mut g = vec![0.0];
        hinge
            .accumulate_gradient(&positive, &schema, &[1.0], &mut g)
            .unwrap();
        assert_eq!(g, vec![0.0]);
    }

    #[test]
    fn label_remapping() {
        assert_eq!(signed_label(0.0), -1.0);
        assert_eq!(signed_label(1.0), 1.0);
        assert_eq!(signed_label(-1.0), -1.0);
        assert_eq!(signed_label(5.0), 1.0);
    }
}
