//! The convex-objective abstraction.

use madlib_engine::{Result, Row, RowChunk, Schema};

/// A decomposable convex objective `f(w) = Σ_rows f_row(w)`.
///
/// Implementations describe a single training tuple's contribution to the
/// loss and its (sub)gradient; the [`crate::IgdRunner`] supplies the data
/// access, parallelism, iteration and convergence machinery.  This mirrors
/// the paper's observation that "each tuple in the input table encodes a
/// single fᵢ" and that adding a new model then takes "a matter of days" —
/// here, a few dozen lines.
pub trait ConvexObjective: Sync {
    /// Number of parameters in the model vector.
    fn dimension(&self) -> usize;

    /// Loss contribution of one row at the given model.
    ///
    /// # Errors
    /// Implementations should surface malformed rows as engine errors.
    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64>;

    /// Adds one row's (sub)gradient contribution into `gradient`
    /// (pre-zeroed, length [`ConvexObjective::dimension`]).
    ///
    /// # Errors
    /// Implementations should surface malformed rows as engine errors.
    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()>;

    /// Optional proximal / projection step applied after each model update
    /// (e.g. the soft-thresholding operator for L1 regularization).  The
    /// default is a no-op.
    fn proximal(&self, _model: &mut [f64], _step: f64) {}

    /// Optional regularization term added to the reported objective value
    /// (the data terms come from [`ConvexObjective::row_loss`]).
    fn regularization(&self, _model: &[f64]) -> f64 {
        0.0
    }

    /// Runs the sequential SGD inner loop of one IGD epoch over a
    /// column-major chunk of rows: for each row in order, zero
    /// `scratch_gradient`, accumulate the row's gradient at the current
    /// `model`, take the step `model ← model − step·gradient`, and apply
    /// [`ConvexObjective::proximal`].  Returns the number of rows processed.
    ///
    /// The default delegates to [`sgd_epoch_chunk_by_rows`] (materialized
    /// rows through [`ConvexObjective::accumulate_gradient`]).  Objectives
    /// over dense labeled points override this to read the chunk's contiguous
    /// `(y, x)` buffers directly; overrides must be bit-identical to the
    /// fallback, which the cross-crate property tests enforce.
    ///
    /// # Errors
    /// Propagates malformed-row errors.
    fn sgd_epoch_chunk(
        &self,
        chunk: &RowChunk,
        schema: &Schema,
        model: &mut [f64],
        scratch_gradient: &mut [f64],
        step: f64,
    ) -> Result<u64> {
        sgd_epoch_chunk_by_rows(self, chunk, schema, model, scratch_gradient, step)
    }
}

/// The row-at-a-time fallback behind [`ConvexObjective::sgd_epoch_chunk`]:
/// materializes each row of the chunk and performs exactly the per-row SGD
/// update of the original epoch aggregate.  Public so chunk-aware objectives
/// can reuse it for inputs their vectorized path cannot represent.
///
/// # Errors
/// Propagates malformed-row errors.
pub fn sgd_epoch_chunk_by_rows<O: ConvexObjective + ?Sized>(
    objective: &O,
    chunk: &RowChunk,
    schema: &Schema,
    model: &mut [f64],
    scratch_gradient: &mut [f64],
    step: f64,
) -> Result<u64> {
    let mut values = Vec::with_capacity(chunk.arity());
    for i in 0..chunk.len() {
        chunk.read_row_into(i, &mut values);
        let row = Row::new(std::mem::take(&mut values));
        scratch_gradient.iter_mut().for_each(|g| *g = 0.0);
        objective.accumulate_gradient(&row, schema, model, scratch_gradient)?;
        for (w, g) in model.iter_mut().zip(scratch_gradient.iter()) {
            *w -= step * g;
        }
        objective.proximal(model, step);
        values = row.into_values();
    }
    Ok(chunk.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::row;
    use madlib_engine::{Column, ColumnType, Schema};

    /// Minimal objective used to exercise the trait's default methods.
    struct Quadratic;

    impl ConvexObjective for Quadratic {
        fn dimension(&self) -> usize {
            1
        }
        fn row_loss(&self, _row: &Row, _schema: &Schema, model: &[f64]) -> Result<f64> {
            Ok(model[0] * model[0])
        }
        fn accumulate_gradient(
            &self,
            _row: &Row,
            _schema: &Schema,
            model: &[f64],
            gradient: &mut [f64],
        ) -> Result<()> {
            gradient[0] += 2.0 * model[0];
            Ok(())
        }
    }

    #[test]
    fn default_methods_are_no_ops() {
        let objective = Quadratic;
        let schema = Schema::new(vec![Column::new("x", ColumnType::Double)]);
        let r = row![1.0];
        assert_eq!(objective.dimension(), 1);
        assert_eq!(objective.row_loss(&r, &schema, &[3.0]).unwrap(), 9.0);
        let mut g = vec![0.0];
        objective
            .accumulate_gradient(&r, &schema, &[3.0], &mut g)
            .unwrap();
        assert_eq!(g, vec![6.0]);
        let mut model = vec![1.0];
        objective.proximal(&mut model, 0.1);
        assert_eq!(model, vec![1.0]);
        assert_eq!(objective.regularization(&model), 0.0);
    }
}
