//! The convex-objective abstraction.

use madlib_engine::{Result, Row, Schema};

/// A decomposable convex objective `f(w) = Σ_rows f_row(w)`.
///
/// Implementations describe a single training tuple's contribution to the
/// loss and its (sub)gradient; the [`crate::IgdRunner`] supplies the data
/// access, parallelism, iteration and convergence machinery.  This mirrors
/// the paper's observation that "each tuple in the input table encodes a
/// single fᵢ" and that adding a new model then takes "a matter of days" —
/// here, a few dozen lines.
pub trait ConvexObjective: Sync {
    /// Number of parameters in the model vector.
    fn dimension(&self) -> usize;

    /// Loss contribution of one row at the given model.
    ///
    /// # Errors
    /// Implementations should surface malformed rows as engine errors.
    fn row_loss(&self, row: &Row, schema: &Schema, model: &[f64]) -> Result<f64>;

    /// Adds one row's (sub)gradient contribution into `gradient`
    /// (pre-zeroed, length [`ConvexObjective::dimension`]).
    ///
    /// # Errors
    /// Implementations should surface malformed rows as engine errors.
    fn accumulate_gradient(
        &self,
        row: &Row,
        schema: &Schema,
        model: &[f64],
        gradient: &mut [f64],
    ) -> Result<()>;

    /// Optional proximal / projection step applied after each model update
    /// (e.g. the soft-thresholding operator for L1 regularization).  The
    /// default is a no-op.
    fn proximal(&self, _model: &mut [f64], _step: f64) {}

    /// Optional regularization term added to the reported objective value
    /// (the data terms come from [`ConvexObjective::row_loss`]).
    fn regularization(&self, _model: &[f64]) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::row;
    use madlib_engine::{Column, ColumnType, Schema};

    /// Minimal objective used to exercise the trait's default methods.
    struct Quadratic;

    impl ConvexObjective for Quadratic {
        fn dimension(&self) -> usize {
            1
        }
        fn row_loss(&self, _row: &Row, _schema: &Schema, model: &[f64]) -> Result<f64> {
            Ok(model[0] * model[0])
        }
        fn accumulate_gradient(
            &self,
            _row: &Row,
            _schema: &Schema,
            model: &[f64],
            gradient: &mut [f64],
        ) -> Result<()> {
            gradient[0] += 2.0 * model[0];
            Ok(())
        }
    }

    #[test]
    fn default_methods_are_no_ops() {
        let objective = Quadratic;
        let schema = Schema::new(vec![Column::new("x", ColumnType::Double)]);
        let r = row![1.0];
        assert_eq!(objective.dimension(), 1);
        assert_eq!(objective.row_loss(&r, &schema, &[3.0]).unwrap(), 9.0);
        let mut g = vec![0.0];
        objective
            .accumulate_gradient(&r, &schema, &[3.0], &mut g)
            .unwrap();
        assert_eq!(g, vec![6.0]);
        let mut model = vec![1.0];
        objective.proximal(&mut model, 0.1);
        assert_eq!(model, vec![1.0]);
        assert_eq!(objective.regularization(&model), 0.0);
    }
}
