//! Step-size schedules for (stochastic) gradient descent.
//!
//! The paper's Section 5.1 notes "α is a positive number called the stepsize
//! that goes to zero with more iterations.  For example, it suffices to set
//! α = 1/k".  These schedules cover the common choices.

/// A step-size schedule α(k) evaluated at iteration `k ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSchedule {
    /// Constant step size.
    Constant(f64),
    /// `α₀ / k` — the paper's example schedule.
    InverseIteration(f64),
    /// `α₀ / √k` — the standard choice for non-strongly-convex objectives.
    InverseSqrt(f64),
    /// `α₀ · decay^k` — exponential decay.
    Exponential {
        /// Initial step size.
        initial: f64,
        /// Multiplicative decay per iteration (in `(0, 1]`).
        decay: f64,
    },
}

impl StepSchedule {
    /// The step size to use at iteration `k` (1-based).
    pub fn step(&self, k: usize) -> f64 {
        let k = k.max(1) as f64;
        match *self {
            StepSchedule::Constant(alpha) => alpha,
            StepSchedule::InverseIteration(alpha) => alpha / k,
            StepSchedule::InverseSqrt(alpha) => alpha / k.sqrt(),
            StepSchedule::Exponential { initial, decay } => initial * decay.powf(k - 1.0),
        }
    }

    /// Whether every step the schedule will ever produce is positive.
    pub fn is_valid(&self) -> bool {
        match *self {
            StepSchedule::Constant(a)
            | StepSchedule::InverseIteration(a)
            | StepSchedule::InverseSqrt(a) => a > 0.0,
            StepSchedule::Exponential { initial, decay } => {
                initial > 0.0 && decay > 0.0 && decay <= 1.0
            }
        }
    }
}

impl Default for StepSchedule {
    fn default() -> Self {
        StepSchedule::InverseSqrt(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_decay_as_documented() {
        assert_eq!(StepSchedule::Constant(0.5).step(1), 0.5);
        assert_eq!(StepSchedule::Constant(0.5).step(100), 0.5);
        assert_eq!(StepSchedule::InverseIteration(1.0).step(4), 0.25);
        assert!((StepSchedule::InverseSqrt(1.0).step(4) - 0.5).abs() < 1e-12);
        let exp = StepSchedule::Exponential {
            initial: 1.0,
            decay: 0.5,
        };
        assert_eq!(exp.step(1), 1.0);
        assert_eq!(exp.step(3), 0.25);
        // k = 0 is clamped to 1.
        assert_eq!(StepSchedule::InverseIteration(1.0).step(0), 1.0);
    }

    #[test]
    fn validity_checks() {
        assert!(StepSchedule::Constant(0.1).is_valid());
        assert!(!StepSchedule::Constant(0.0).is_valid());
        assert!(!StepSchedule::InverseSqrt(-1.0).is_valid());
        assert!(StepSchedule::Exponential {
            initial: 1.0,
            decay: 0.9
        }
        .is_valid());
        assert!(!StepSchedule::Exponential {
            initial: 1.0,
            decay: 1.5
        }
        .is_valid());
        assert!(StepSchedule::default().is_valid());
    }
}
