//! Property-based tests for the sketch invariants the engine relies on:
//! never-under-counting, mergeability, and rank-error bounds.

use madlib_sketch::{CountMinSketch, FlajoletMartin, QuantileSummary};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Count–Min estimates never under-count, and merging two sketches gives
    /// the same counters as sketching the union stream.
    #[test]
    fn countmin_never_undercounts_and_merges(
        stream in prop::collection::vec(0u32..50, 1..400),
    ) {
        let mut sketch = CountMinSketch::new(4, 128);
        let mut left = CountMinSketch::new(4, 128);
        let mut right = CountMinSketch::new(4, 128);
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for (i, key) in stream.iter().enumerate() {
            let item = format!("k{key}");
            sketch.update(&item, 1);
            if i % 2 == 0 {
                left.update(&item, 1);
            } else {
                right.update(&item, 1);
            }
            *exact.entry(*key).or_insert(0) += 1;
        }
        for (key, count) in &exact {
            let item = format!("k{key}");
            prop_assert!(sketch.estimate(&item) >= *count);
        }
        left.merge(&right);
        prop_assert_eq!(left, sketch);
    }

    /// Flajolet–Martin merge is exactly the sketch of the union, and the
    /// estimate never collapses to zero once something was inserted.
    #[test]
    fn fm_merge_is_union(keys in prop::collection::vec(0u32..10_000, 1..500)) {
        let mut whole = FlajoletMartin::new(32);
        let mut left = FlajoletMartin::new(32);
        let mut right = FlajoletMartin::new(32);
        for (i, key) in keys.iter().enumerate() {
            let item = format!("user{key}");
            whole.update(&item);
            if i % 2 == 0 { left.update(&item); } else { right.update(&item); }
        }
        left.merge(&right);
        prop_assert!(whole.estimate() > 0.0);
        prop_assert_eq!(left, whole);
    }

    /// Greenwald–Khanna quantile answers respect a (loose) rank-error bound
    /// and the extremes are exact on sorted insertion order.
    #[test]
    fn quantile_rank_error_bounded(values in prop::collection::vec(-1_000.0..1_000.0f64, 20..400)) {
        let epsilon = 0.05;
        let mut summary = QuantileSummary::new(epsilon);
        for &v in &values {
            summary.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.1, 0.5, 0.9] {
            let answer = summary.quantile(phi).unwrap();
            let rank = sorted.iter().filter(|&&v| v <= answer).count() as f64;
            let target = phi * sorted.len() as f64;
            prop_assert!(
                (rank - target).abs() <= (4.0 * epsilon * sorted.len() as f64) + 1.0,
                "phi {phi}: rank {rank} target {target}"
            );
        }
        prop_assert_eq!(summary.count(), values.len() as u64);
    }
}
