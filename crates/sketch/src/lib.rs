//! # madlib-sketch
//!
//! Streaming sketches and data profiling for MADlib-rs: the "Descriptive
//! Statistics" rows of the paper's Table 1 — Count-Min sketch,
//! Flajolet–Martin distinct-count sketch, approximate quantiles, and the
//! templated `profile` module that summarizes every column of an arbitrary
//! table.
//!
//! All sketches are *mergeable*: combining the sketches of two data
//! partitions gives the same answer (within the error bounds) as sketching
//! the union.  This is what makes them usable as user-defined aggregates in
//! the engine's shared-nothing execution model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod countmin;
pub mod fm;
pub mod profile;
pub mod quantile;

pub use adapters::{
    CountMinAggregate, FmDistinctAggregate, MostFrequentValuesAggregate, SummaryAggregate,
};
pub use countmin::CountMinSketch;
pub use fm::FlajoletMartin;
pub use profile::{
    profile_dataset, profile_table, ColumnProfile, DatasetProfileExt, ProfileAggregate, Profiler,
    TableProfile,
};
pub use quantile::QuantileSummary;
