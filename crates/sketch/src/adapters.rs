//! Sketches as user-defined aggregates on the engine's chunked scan
//! pipeline.
//!
//! The sketches themselves ([`FlajoletMartin`], [`CountMinSketch`], the
//! frequency table behind most-common-values) are mergeable, which is the
//! whole reason they fit the paper's UDA pattern — but until now the only
//! consumer (`profile`) drove them with its own private row loop.  These
//! adapters wrap each sketch in an [`Aggregate`] so any sketch pass runs on
//! the shared executor pipeline: segment-parallel, filterable, and
//! chunk-at-a-time, with `transition_chunk` overrides that stream the
//! contiguous `text` column buffer instead of materializing one
//! [`madlib_engine::Value`] per row.  Results are identical to the per-row path by the
//! `transition_chunk` contract (sketch updates are order-insensitive, and
//! the overrides preserve row order anyway).

use crate::countmin::CountMinSketch;
use crate::fm::FlajoletMartin;
use madlib_engine::aggregate::transition_chunk_by_rows;
use madlib_engine::chunk::ColumnChunk;
use madlib_engine::{Aggregate, Result, Row, RowChunk, Schema};
use madlib_stats::descriptive::FrequencyTable;
use madlib_stats::Summary;

/// Resolves a column and, when it is a `text` column, hands its contiguous
/// values + null bitmap to `on_text`; otherwise falls back to per-row
/// transitions (which surface exactly the errors the row path would).
fn for_each_text_value<A, F>(
    aggregate: &A,
    state: &mut A::State,
    chunk: &RowChunk,
    schema: &Schema,
    column: &str,
    mut on_text: F,
) -> Result<()>
where
    A: Aggregate,
    F: FnMut(&mut A::State, &str),
{
    let idx = schema.index_of(column)?;
    match chunk.column(idx) {
        ColumnChunk::Text { values, nulls } => {
            if nulls.any_null() {
                for (i, value) in values.iter().enumerate() {
                    if !nulls.is_null(i) {
                        on_text(state, value);
                    }
                }
            } else {
                for value in values {
                    on_text(state, value);
                }
            }
            Ok(())
        }
        _ => transition_chunk_by_rows(aggregate, state, chunk, schema),
    }
}

/// `summary(column)`: streaming count / mean / variance / min / max of a
/// numeric column as a UDA (NULLs tallied separately, NaNs counted as
/// nulls — the `madlib_stats` [`Summary`] semantics).
#[derive(Debug, Clone)]
pub struct SummaryAggregate {
    column: String,
}

impl SummaryAggregate {
    /// Summarizes the named numeric column.
    pub fn new(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
        }
    }
}

impl Aggregate for SummaryAggregate {
    type State = Summary;
    type Output = Summary;

    fn initial_state(&self) -> Summary {
        Summary::new()
    }

    fn transition(&self, state: &mut Summary, row: &Row, schema: &Schema) -> Result<()> {
        let value = row.get_named(schema, &self.column)?;
        if value.is_null() {
            state.update_null();
        } else {
            state.update(value.as_double()?);
        }
        Ok(())
    }

    fn transition_chunk(
        &self,
        state: &mut Summary,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> Result<()> {
        let idx = schema.index_of(&self.column)?;
        match chunk.column(idx) {
            ColumnChunk::Double { values, nulls } => {
                if nulls.any_null() {
                    for (i, v) in values.iter().enumerate() {
                        if nulls.is_null(i) {
                            state.update_null();
                        } else {
                            state.update(*v);
                        }
                    }
                } else {
                    state.update_slice(values);
                }
                Ok(())
            }
            ColumnChunk::Int { values, nulls } => {
                for (i, v) in values.iter().enumerate() {
                    if nulls.is_null(i) {
                        state.update_null();
                    } else {
                        state.update(*v as f64);
                    }
                }
                Ok(())
            }
            ColumnChunk::Bool { values, nulls } => {
                for (i, v) in values.iter().enumerate() {
                    if nulls.is_null(i) {
                        state.update_null();
                    } else {
                        state.update(if *v { 1.0 } else { 0.0 });
                    }
                }
                Ok(())
            }
            _ => transition_chunk_by_rows(self, state, chunk, schema),
        }
    }

    fn merge(&self, mut left: Summary, right: Summary) -> Summary {
        left.merge(&right);
        left
    }

    fn finalize(&self, state: Summary) -> Result<Summary> {
        Ok(state)
    }
}

/// Approximate `count(distinct column)` over a `text` column via the
/// Flajolet–Martin sketch.  NULLs are skipped, as in SQL.
#[derive(Debug, Clone)]
pub struct FmDistinctAggregate {
    column: String,
    num_bitmaps: usize,
}

impl FmDistinctAggregate {
    /// Sketches the named text column with the MADlib-default 64 bitmaps.
    pub fn new(column: impl Into<String>) -> Self {
        Self::with_bitmaps(column, 64)
    }

    /// Sketches with an explicit bitmap count (more bitmaps → lower
    /// variance).
    ///
    /// # Panics
    /// Panics if `num_bitmaps` is zero (via [`FlajoletMartin::new`]).
    pub fn with_bitmaps(column: impl Into<String>, num_bitmaps: usize) -> Self {
        assert!(num_bitmaps > 0, "need at least one bitmap");
        Self {
            column: column.into(),
            num_bitmaps,
        }
    }
}

impl Aggregate for FmDistinctAggregate {
    type State = FlajoletMartin;
    type Output = f64;

    fn initial_state(&self) -> FlajoletMartin {
        FlajoletMartin::new(self.num_bitmaps)
    }

    fn transition(&self, state: &mut FlajoletMartin, row: &Row, schema: &Schema) -> Result<()> {
        let value = row.get_named(schema, &self.column)?;
        if !value.is_null() {
            state.update(value.as_text()?);
        }
        Ok(())
    }

    fn transition_chunk(
        &self,
        state: &mut FlajoletMartin,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> Result<()> {
        for_each_text_value(self, state, chunk, schema, &self.column, |fm, text| {
            fm.update(text);
        })
    }

    fn merge(&self, mut left: FlajoletMartin, right: FlajoletMartin) -> FlajoletMartin {
        left.merge(&right);
        left
    }

    fn finalize(&self, state: FlajoletMartin) -> Result<f64> {
        Ok(state.estimate())
    }
}

/// Count–Min frequency sketch of a `text` column as a UDA; the output is the
/// merged sketch itself so callers can issue arbitrary point queries.
/// NULLs are skipped.
#[derive(Debug, Clone)]
pub struct CountMinAggregate {
    column: String,
    depth: usize,
    width: usize,
}

impl CountMinAggregate {
    /// Sketches the named text column with an explicit `depth × width`
    /// counter matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero (via [`CountMinSketch::new`]).
    pub fn new(column: impl Into<String>, depth: usize, width: usize) -> Self {
        assert!(depth > 0 && width > 0, "sketch dimensions must be positive");
        Self {
            column: column.into(),
            depth,
            width,
        }
    }
}

impl Aggregate for CountMinAggregate {
    type State = CountMinSketch;
    type Output = CountMinSketch;

    fn initial_state(&self) -> CountMinSketch {
        CountMinSketch::new(self.depth, self.width)
    }

    fn transition(&self, state: &mut CountMinSketch, row: &Row, schema: &Schema) -> Result<()> {
        let value = row.get_named(schema, &self.column)?;
        if !value.is_null() {
            state.update(value.as_text()?, 1);
        }
        Ok(())
    }

    fn transition_chunk(
        &self,
        state: &mut CountMinSketch,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> Result<()> {
        for_each_text_value(self, state, chunk, schema, &self.column, |cm, text| {
            cm.update(text, 1);
        })
    }

    fn merge(&self, mut left: CountMinSketch, right: CountMinSketch) -> CountMinSketch {
        left.merge(&right);
        left
    }

    fn finalize(&self, state: CountMinSketch) -> Result<CountMinSketch> {
        Ok(state)
    }
}

/// Exact most-frequent-values (MFV) of a `text` column: the `k` most common
/// values with their counts, ties broken lexicographically.  NULLs are
/// skipped.
#[derive(Debug, Clone)]
pub struct MostFrequentValuesAggregate {
    column: String,
    k: usize,
}

impl MostFrequentValuesAggregate {
    /// Reports the `k` most common values of the named text column.
    pub fn new(column: impl Into<String>, k: usize) -> Self {
        Self {
            column: column.into(),
            k,
        }
    }
}

impl Aggregate for MostFrequentValuesAggregate {
    type State = FrequencyTable;
    type Output = Vec<(String, u64)>;

    fn initial_state(&self) -> FrequencyTable {
        FrequencyTable::new()
    }

    fn transition(&self, state: &mut FrequencyTable, row: &Row, schema: &Schema) -> Result<()> {
        let value = row.get_named(schema, &self.column)?;
        if !value.is_null() {
            state.update(value.as_text()?);
        }
        Ok(())
    }

    fn transition_chunk(
        &self,
        state: &mut FrequencyTable,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> Result<()> {
        for_each_text_value(self, state, chunk, schema, &self.column, |freq, text| {
            freq.update(text);
        })
    }

    fn merge(&self, mut left: FrequencyTable, right: FrequencyTable) -> FrequencyTable {
        left.merge(&right);
        left
    }

    fn finalize(&self, state: FrequencyTable) -> Result<Vec<(String, u64)>> {
        Ok(state.top_k(self.k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::expr::Predicate;
    use madlib_engine::{row, Column, ColumnType, Executor, Table, Value};

    fn words_table(segments: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("word", ColumnType::Text),
            Column::new("score", ColumnType::Double),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        for i in 0..300usize {
            let word = format!("w{}", i % 23);
            t.insert(row![word, i as f64]).unwrap();
        }
        t.insert(Row::new(vec![Value::Null, Value::Null])).unwrap();
        t
    }

    #[test]
    fn summary_aggregate_matches_streaming() {
        let t = words_table(4);
        let summary = Executor::new()
            .aggregate(&t, &SummaryAggregate::new("score"))
            .unwrap();
        assert_eq!(summary.count(), 300);
        assert_eq!(summary.null_count(), 1);
        assert_eq!(summary.min(), Some(0.0));
        assert_eq!(summary.max(), Some(299.0));
        assert!((summary.mean().unwrap() - 149.5).abs() < 1e-9);
    }

    #[test]
    fn sketch_aggregates_agree_across_modes_and_filters() {
        let t = words_table(3);
        let chunked = Executor::new();
        let by_rows = Executor::row_at_a_time();

        let fm = FmDistinctAggregate::new("word");
        let a = chunked.aggregate(&t, &fm).unwrap();
        let b = by_rows.aggregate(&t, &fm).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // PCSA is biased upward well below ~2·bitmaps distinct items; order
        // of magnitude is all the adapters promise at this cardinality.
        assert!(a > 0.0 && a < 300.0, "estimate {a} for 23 distinct");

        let cm = CountMinAggregate::new("word", 5, 256);
        let a = chunked.aggregate(&t, &cm).unwrap();
        let b = by_rows.aggregate(&t, &cm).unwrap();
        assert_eq!(a, b);
        assert!(a.estimate("w0") >= 14);

        let mfv = MostFrequentValuesAggregate::new("word", 3);
        let a = chunked.aggregate(&t, &mfv).unwrap();
        let b = by_rows.aggregate(&t, &mfv).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // 300 rows over 23 words: w0 appears 14 times, the rest 13.
        assert_eq!(a[0], ("w0".to_owned(), 14));

        // Filtered sketch pass via the same pipeline.
        let pred = Predicate::column_lt("score", 150.0);
        let (filtered, stats) = chunked
            .aggregate_with_stats(
                &t,
                &MostFrequentValuesAggregate::new("word", 30),
                Some(&pred),
            )
            .unwrap();
        assert_eq!(stats.rows_aggregated, 150);
        let total: u64 = filtered.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 150);
    }

    #[test]
    fn grouped_sketching_composes_with_the_grouped_pipeline() {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Text),
            Column::new("word", ColumnType::Text),
        ]);
        let mut t = Table::new(schema, 2).unwrap();
        for i in 0..60usize {
            let grp = if i % 2 == 0 { "a" } else { "b" };
            t.insert(row![grp, format!("w{}", i % 5)]).unwrap();
        }
        let groups = madlib_engine::Dataset::from_table(&t)
            .group_by(["grp"])
            .aggregate_per_group(&MostFrequentValuesAggregate::new("word", 10))
            .unwrap();
        assert_eq!(groups.len(), 2);
        let total: u64 = groups
            .iter()
            .flat_map(|(_, mfv)| mfv.iter().map(|(_, c)| c))
            .sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn non_text_columns_error_like_the_row_path() {
        let t = words_table(2);
        let err_chunk = Executor::new()
            .aggregate(&t, &FmDistinctAggregate::new("score"))
            .unwrap_err();
        let err_rows = Executor::row_at_a_time()
            .aggregate(&t, &FmDistinctAggregate::new("score"))
            .unwrap_err();
        assert_eq!(err_chunk, err_rows);
    }
}
