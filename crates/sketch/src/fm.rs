//! Flajolet–Martin distinct-count sketch.
//!
//! Estimates the number of distinct items in a stream using the position of
//! the lowest unset bit in per-hash bit patterns (the classical probabilistic
//! counting with stochastic averaging, PCSA).  The estimate is unbiased up to
//! the usual φ ≈ 0.77351 correction and has relative error ≈ 0.78/√m for `m`
//! bitmaps.

use serde::{Deserialize, Serialize};

/// Flajolet–Martin (PCSA) distinct-count sketch over string keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlajoletMartin {
    /// One 64-bit bitmap per stochastic-averaging bucket.
    bitmaps: Vec<u64>,
}

/// Flajolet–Martin magic constant φ.
const PHI: f64 = 0.77351;

impl FlajoletMartin {
    /// Creates a sketch with `num_bitmaps` stochastic-averaging buckets
    /// (64 is the MADlib default; more buckets → lower variance).
    ///
    /// # Panics
    /// Panics if `num_bitmaps` is zero.
    pub fn new(num_bitmaps: usize) -> Self {
        assert!(num_bitmaps > 0, "need at least one bitmap");
        Self {
            bitmaps: vec![0; num_bitmaps],
        }
    }

    /// Number of stochastic-averaging buckets.
    pub fn num_bitmaps(&self) -> usize {
        self.bitmaps.len()
    }

    fn hash(item: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in item {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        // Finalizer to spread low bits.
        hash ^= hash >> 33;
        hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
        hash ^= hash >> 33;
        hash
    }

    /// Records one occurrence of `item` (duplicates have no further effect).
    pub fn update(&mut self, item: &str) {
        let h = Self::hash(item.as_bytes());
        let bucket = (h % self.bitmaps.len() as u64) as usize;
        let remaining = h / self.bitmaps.len() as u64;
        let rho = remaining.trailing_zeros().min(63);
        self.bitmaps[bucket] |= 1u64 << rho;
    }

    /// Estimates the number of distinct items seen so far.
    pub fn estimate(&self) -> f64 {
        let m = self.bitmaps.len() as f64;
        let mean_r: f64 = self
            .bitmaps
            .iter()
            .map(|&bitmap| lowest_unset_bit(bitmap) as f64)
            .sum::<f64>()
            / m;
        m / PHI * 2f64.powf(mean_r)
    }

    /// Merges another sketch (bitwise OR of the bitmaps).  Both sketches must
    /// have the same number of bitmaps.
    ///
    /// # Panics
    /// Panics on a size mismatch.
    pub fn merge(&mut self, other: &FlajoletMartin) {
        assert_eq!(
            self.bitmaps.len(),
            other.bitmaps.len(),
            "bitmap count mismatch"
        );
        for (a, b) in self.bitmaps.iter_mut().zip(&other.bitmaps) {
            *a |= b;
        }
    }
}

fn lowest_unset_bit(bitmap: u64) -> u32 {
    (!bitmap).trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_within_expected_error() {
        // PCSA is accurate once the cardinality is well above the number of
        // bitmaps; the expected relative error with 64 bitmaps is ≈ 10%.
        for &true_count in &[1_000usize, 10_000, 50_000] {
            let mut fm = FlajoletMartin::new(64);
            for i in 0..true_count {
                fm.update(&format!("user_{i}"));
            }
            let estimate = fm.estimate();
            let relative_error = (estimate - true_count as f64).abs() / true_count as f64;
            assert!(
                relative_error < 0.35,
                "distinct count {true_count}: estimate {estimate} off by {relative_error:.2}"
            );
        }
    }

    #[test]
    fn small_cardinalities_are_order_of_magnitude_correct() {
        // Below ~2·m distinct items PCSA is biased upward; it must still be
        // within a factor of two, which is all the profile module relies on.
        let mut fm = FlajoletMartin::new(64);
        for i in 0..100 {
            fm.update(&format!("user_{i}"));
        }
        let estimate = fm.estimate();
        assert!(estimate > 50.0 && estimate < 250.0, "estimate {estimate}");
    }

    #[test]
    fn duplicates_do_not_inflate_the_estimate() {
        let mut fm = FlajoletMartin::new(64);
        for _ in 0..50 {
            for i in 0..200 {
                fm.update(&format!("key_{i}"));
            }
        }
        let estimate = fm.estimate();
        assert!(
            (estimate - 200.0).abs() / 200.0 < 0.4,
            "estimate {estimate} should track 200 distinct keys"
        );
    }

    #[test]
    fn merge_equals_union() {
        let mut left = FlajoletMartin::new(64);
        let mut right = FlajoletMartin::new(64);
        let mut whole = FlajoletMartin::new(64);
        for i in 0..3_000 {
            let key = format!("k{i}");
            whole.update(&key);
            if i % 2 == 0 {
                left.update(&key);
            } else {
                right.update(&key);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole, "merge must be exactly the union of bitmaps");
    }

    #[test]
    fn empty_sketch_estimates_near_zero() {
        let fm = FlajoletMartin::new(64);
        assert!(fm.estimate() < 100.0);
        assert_eq!(fm.num_bitmaps(), 64);
    }

    #[test]
    fn lowest_unset_bit_helper() {
        assert_eq!(lowest_unset_bit(0b0), 0);
        assert_eq!(lowest_unset_bit(0b1), 1);
        assert_eq!(lowest_unset_bit(0b111), 3);
        assert_eq!(lowest_unset_bit(0b1011), 2);
    }

    #[test]
    #[should_panic(expected = "bitmap count mismatch")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = FlajoletMartin::new(16);
        let b = FlajoletMartin::new(32);
        a.merge(&b);
    }
}
