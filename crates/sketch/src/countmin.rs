//! Count–Min sketch for approximate frequency counting.
//!
//! The Count–Min sketch (Cormode & Muthukrishnan) estimates item frequencies
//! in a stream using a `depth × width` counter matrix and `depth` pairwise-
//! independent hash functions.  Estimates never under-count; the
//! over-count is bounded by `ε·N` with probability `1 − δ` when
//! `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉`.

use serde::{Deserialize, Serialize};

/// A Count–Min sketch over string (byte) keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinSketch {
    depth: usize,
    width: usize,
    counters: Vec<u64>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with explicit dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth > 0 && width > 0, "sketch dimensions must be positive");
        Self {
            depth,
            width,
            counters: vec![0; depth * width],
            total: 0,
        }
    }

    /// Creates a sketch sized for additive error `epsilon·N` with failure
    /// probability `delta`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
    pub fn with_error_bounds(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(depth, width)
    }

    /// Sketch depth (number of hash rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Sketch width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total count of all updates.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn bucket(&self, row: usize, item: &[u8]) -> usize {
        // Row-seeded FNV-1a; rows use different offsets so the hash functions
        // are effectively independent for sketching purposes.
        let mut hash: u64 =
            0xcbf2_9ce4_8422_2325 ^ (row as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &b in item {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        (hash % self.width as u64) as usize
    }

    /// Adds `count` occurrences of `item`.
    pub fn update(&mut self, item: &str, count: u64) {
        let bytes = item.as_bytes();
        for row in 0..self.depth {
            let idx = row * self.width + self.bucket(row, bytes);
            self.counters[idx] += count;
        }
        self.total += count;
    }

    /// Point estimate of the frequency of `item` (never an under-estimate).
    pub fn estimate(&self, item: &str) -> u64 {
        let bytes = item.as_bytes();
        (0..self.depth)
            .map(|row| self.counters[row * self.width + self.bucket(row, bytes)])
            .min()
            .unwrap_or(0)
    }

    /// Merges another sketch into this one.  Both sketches must have the same
    /// dimensions.
    ///
    /// # Panics
    /// Panics on a dimension mismatch (sketches from the same aggregate
    /// always agree by construction).
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(self.depth, other.depth, "sketch depth mismatch");
        assert_eq!(self.width, other.width, "sketch width mismatch");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_small_streams() {
        let mut sketch = CountMinSketch::new(5, 272);
        for i in 0..50 {
            sketch.update(&format!("item_{i}"), (i + 1) as u64);
        }
        for i in 0..50 {
            let est = sketch.estimate(&format!("item_{i}"));
            assert!(est >= (i + 1) as u64, "CM sketch must never under-count");
            assert!(est <= (i + 1) as u64 + 25, "over-count too large: {est}");
        }
        assert_eq!(sketch.total(), (1..=50).sum::<u64>());
        assert_eq!(sketch.estimate("never_seen"), 0);
    }

    #[test]
    fn error_bound_holds_on_heavy_hitters() {
        let mut sketch = CountMinSketch::with_error_bounds(0.01, 0.01);
        // One heavy hitter among uniform noise.
        sketch.update("heavy", 10_000);
        for i in 0..1_000 {
            sketch.update(&format!("noise_{i}"), 10);
        }
        let n = sketch.total();
        let est = sketch.estimate("heavy");
        assert!(est >= 10_000);
        assert!(est as f64 <= 10_000.0 + 0.01 * n as f64 * 2.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut left = CountMinSketch::new(4, 64);
        let mut right = CountMinSketch::new(4, 64);
        let mut whole = CountMinSketch::new(4, 64);
        for i in 0..200 {
            let item = format!("k{}", i % 17);
            if i % 2 == 0 {
                left.update(&item, 1);
            } else {
                right.update(&item, 1);
            }
            whole.update(&item, 1);
        }
        left.merge(&right);
        assert_eq!(left.total(), whole.total());
        for i in 0..17 {
            assert_eq!(
                left.estimate(&format!("k{i}")),
                whole.estimate(&format!("k{i}"))
            );
        }
    }

    #[test]
    fn bound_based_constructor_sizes_reasonably() {
        let sketch = CountMinSketch::with_error_bounds(0.001, 0.01);
        assert!(sketch.width() >= 2718);
        assert!(sketch.depth() >= 4);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_rejected() {
        CountMinSketch::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = CountMinSketch::new(2, 8);
        let b = CountMinSketch::new(3, 8);
        a.merge(&b);
    }
}
