//! Approximate streaming quantiles (Greenwald–Khanna).
//!
//! The paper's Table 1 lists a Quantile module.  This is the Greenwald–Khanna
//! ε-approximate quantile summary: a sorted list of tuples `(value, g, Δ)`
//! maintained so that any φ-quantile query is answered with rank error at
//! most ε·n.  Summaries can be merged (with additive error), which is what
//! lets the engine compute quantiles per segment and combine them.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Tuple {
    value: f64,
    /// Difference between the minimum rank of this tuple and the previous.
    g: u64,
    /// Uncertainty of the rank of this tuple.
    delta: u64,
}

/// Greenwald–Khanna ε-approximate quantile summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    epsilon: f64,
    tuples: Vec<Tuple>,
    count: u64,
}

impl QuantileSummary {
    /// Creates a summary with rank-error tolerance `epsilon`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        Self {
            epsilon,
            tuples: Vec::new(),
            count: 0,
        }
    }

    /// Number of observations inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The error tolerance this summary was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of stored tuples (the compressed size).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Inserts an observation.  NaN values are ignored.
    pub fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.count += 1;
        let delta = if self.count < (1.0 / (2.0 * self.epsilon)) as u64 + 1 {
            0
        } else {
            ((2.0 * self.epsilon * self.count as f64).floor() as u64).saturating_sub(1)
        };
        // Find insertion position (first tuple with a larger value).
        let pos = self
            .tuples
            .iter()
            .position(|t| t.value > value)
            .unwrap_or(self.tuples.len());
        let tuple = if pos == 0 || pos == self.tuples.len() {
            // New minimum or maximum is known exactly.
            Tuple {
                value,
                g: 1,
                delta: 0,
            }
        } else {
            Tuple { value, g: 1, delta }
        };
        self.tuples.insert(pos, tuple);
        // Periodic compression keeps the summary small.
        if self
            .count
            .is_multiple_of((1.0 / (2.0 * self.epsilon)) as u64 + 1)
        {
            self.compress();
        }
    }

    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged_g = self.tuples[i].g + self.tuples[i + 1].g;
            if merged_g + self.tuples[i + 1].delta <= threshold {
                self.tuples[i + 1].g = merged_g;
                self.tuples.remove(i);
            }
            if i == 1 {
                break;
            }
            i -= 1;
        }
    }

    /// Returns an ε-approximate φ-quantile (`phi` in `[0, 1]`); `None` when
    /// the summary is empty.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&phi), "phi must be in [0, 1]");
        if self.tuples.is_empty() {
            return None;
        }
        let target_rank = (phi * self.count as f64).ceil().max(1.0) as u64;
        let allowed = (self.epsilon * self.count as f64) as u64;
        let mut min_rank = 0u64;
        for tuple in &self.tuples {
            min_rank += tuple.g;
            let max_rank = min_rank + tuple.delta;
            if max_rank >= target_rank.saturating_sub(allowed)
                && min_rank >= target_rank.saturating_sub(allowed)
            {
                return Some(tuple.value);
            }
        }
        self.tuples.last().map(|t| t.value)
    }

    /// Median shortcut.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Merges another summary into this one.  The result's rank error is at
    /// most the sum of the two errors, which is why per-segment summaries use
    /// ε/2 when an ε-accurate global answer is needed.
    pub fn merge(&mut self, other: &QuantileSummary) {
        // Re-inserting the other summary's tuples value-by-value with their
        // weights preserves both summaries' rank information.
        for tuple in &other.tuples {
            // Insert a representative value `g` times to carry its weight.
            for _ in 0..tuple.g {
                self.insert(tuple.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_error(summary: &QuantileSummary, sorted: &[f64], phi: f64) -> f64 {
        let answer = summary.quantile(phi).unwrap();
        // True rank of the returned value in the sorted data.
        let rank = sorted.iter().filter(|&&v| v <= answer).count() as f64;
        let target = phi * sorted.len() as f64;
        (rank - target).abs() / sorted.len() as f64
    }

    #[test]
    fn quantiles_within_epsilon_on_shuffled_input() {
        let epsilon = 0.01;
        let mut summary = QuantileSummary::new(epsilon);
        let n = 10_000;
        // Deterministic shuffle-ish order: stride through the range.
        let mut data: Vec<f64> = Vec::with_capacity(n);
        let mut v = 0usize;
        for _ in 0..n {
            v = (v + 7_919) % n;
            data.push(v as f64);
        }
        for &x in &data {
            summary.insert(x);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let err = rank_error(&summary, &sorted, phi);
            assert!(err <= 3.0 * epsilon, "phi={phi}: rank error {err}");
        }
        // Compression keeps the summary far smaller than the input.
        assert!(summary.tuple_count() < n / 4);
        assert_eq!(summary.count(), n as u64);
    }

    #[test]
    fn exact_on_tiny_inputs() {
        let mut summary = QuantileSummary::new(0.1);
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            summary.insert(x);
        }
        assert_eq!(summary.quantile(0.0), Some(1.0));
        assert_eq!(summary.quantile(1.0), Some(5.0));
        let median = summary.median().unwrap();
        assert!((2.0..=4.0).contains(&median));
    }

    #[test]
    fn empty_and_nan_handling() {
        let mut summary = QuantileSummary::new(0.05);
        assert_eq!(summary.quantile(0.5), None);
        summary.insert(f64::NAN);
        assert_eq!(summary.count(), 0);
        summary.insert(1.0);
        assert_eq!(summary.median(), Some(1.0));
        assert_eq!(summary.epsilon(), 0.05);
    }

    #[test]
    fn merge_approximates_union() {
        let mut left = QuantileSummary::new(0.02);
        let mut right = QuantileSummary::new(0.02);
        for i in 0..2_000 {
            if i % 2 == 0 {
                left.insert(i as f64);
            } else {
                right.insert(i as f64);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), 2_000);
        let median = left.median().unwrap();
        assert!((850.0..=1150.0).contains(&median), "median {median}");
        let p90 = left.quantile(0.9).unwrap();
        assert!((1700.0..=1900.0).contains(&p90), "p90 {p90}");
    }

    #[test]
    #[should_panic(expected = "phi must be in")]
    fn quantile_rejects_bad_phi() {
        QuantileSummary::new(0.1).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn constructor_rejects_bad_epsilon() {
        QuantileSummary::new(0.0);
    }
}
