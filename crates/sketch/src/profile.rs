//! The `profile` module: templated per-column summaries of an arbitrary
//! table.
//!
//! Section 3.1.3 of the paper uses `profile` as its example of a templated
//! query: the input schema is arbitrary and the output schema is a function
//! of it (one set of summary columns per input column).  The implementation
//! here mirrors that shape — it introspects the schema through the engine's
//! template API, picks a summary plan per column role, and runs one pass over
//! the table computing numeric summaries, approximate distinct counts
//! (Flajolet–Martin), approximate quantiles and most-common values.

use crate::countmin::CountMinSketch;
use crate::fm::FlajoletMartin;
use crate::quantile::QuantileSummary;
use madlib_engine::template::{describe_table, ColumnRole};
use madlib_engine::{EngineError, Executor, Result, Table, Value};
use madlib_stats::descriptive::FrequencyTable;
use madlib_stats::Summary;

/// Profile of one column.
#[derive(Debug, Clone)]
pub enum ColumnProfile {
    /// Numeric column: streaming summary plus approximate quantiles.
    Numeric {
        /// Column name.
        name: String,
        /// Count / mean / variance / min / max summary.
        summary: Summary,
        /// Approximate median.
        median: Option<f64>,
        /// Approximate 5th and 95th percentiles.
        percentile_05_95: (Option<f64>, Option<f64>),
    },
    /// Categorical column: distinct counts and most common values.
    Categorical {
        /// Column name.
        name: String,
        /// Non-null observations.
        non_null: u64,
        /// NULL observations.
        nulls: u64,
        /// Exact distinct count (tracked alongside the sketch for modest
        /// cardinalities).
        distinct_exact: usize,
        /// Flajolet–Martin approximate distinct count.
        distinct_estimate: f64,
        /// Most common values with exact counts.
        most_common: Vec<(String, u64)>,
        /// Count–Min estimate for the most common value (sanity cross-check).
        most_common_cm_estimate: u64,
    },
    /// Array column: only element-count statistics are profiled.
    Array {
        /// Column name.
        name: String,
        /// Summary of the array lengths.
        length_summary: Summary,
    },
}

impl ColumnProfile {
    /// The profiled column's name.
    pub fn name(&self) -> &str {
        match self {
            ColumnProfile::Numeric { name, .. }
            | ColumnProfile::Categorical { name, .. }
            | ColumnProfile::Array { name, .. } => name,
        }
    }
}

/// Profile of a whole table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Number of rows profiled.
    pub row_count: usize,
    /// One profile per column, in schema order.
    pub columns: Vec<ColumnProfile>,
}

/// Profiles every column of `table`.
///
/// # Errors
/// Propagates engine access errors (the profile itself accepts any schema).
pub fn profile_table(executor: &Executor, table: &Table) -> Result<TableProfile> {
    let infos = describe_table(table);
    let mut columns = Vec::with_capacity(infos.len());
    // The profile is one serial pass per column over an already-partitioned
    // table; for the modest result sizes the profile produces this is the
    // clearest formulation.  The numeric summaries themselves are mergeable,
    // so a UDA-per-column plan would behave identically.
    let _ = executor; // retained in the signature for symmetry with the other modules
    for info in infos {
        let idx = table.schema().index_of(&info.name)?;
        match info.role {
            ColumnRole::Numeric => {
                let mut summary = Summary::new();
                let mut quantiles = QuantileSummary::new(0.01);
                for row in table.iter() {
                    match row.get(idx) {
                        Value::Null => summary.update_null(),
                        v => {
                            let x = v.as_double()?;
                            summary.update(x);
                            quantiles.insert(x);
                        }
                    }
                }
                columns.push(ColumnProfile::Numeric {
                    name: info.name,
                    median: quantiles.median(),
                    percentile_05_95: (quantiles.quantile(0.05), quantiles.quantile(0.95)),
                    summary,
                });
            }
            ColumnRole::Categorical => {
                let mut frequencies = FrequencyTable::new();
                let mut fm = FlajoletMartin::new(64);
                let mut cm = CountMinSketch::new(5, 512);
                let mut nulls = 0u64;
                for row in table.iter() {
                    match row.get(idx) {
                        Value::Null => nulls += 1,
                        v => {
                            let text = v.as_text()?;
                            frequencies.update(text);
                            fm.update(text);
                            cm.update(text, 1);
                        }
                    }
                }
                let most_common = frequencies.top_k(5);
                let most_common_cm_estimate = most_common
                    .first()
                    .map(|(value, _)| cm.estimate(value))
                    .unwrap_or(0);
                columns.push(ColumnProfile::Categorical {
                    name: info.name,
                    non_null: frequencies.total(),
                    nulls,
                    distinct_exact: frequencies.distinct_count(),
                    distinct_estimate: fm.estimate(),
                    most_common,
                    most_common_cm_estimate,
                });
            }
            ColumnRole::FeatureVector | ColumnRole::OtherArray => {
                let mut length_summary = Summary::new();
                for row in table.iter() {
                    let len = match row.get(idx) {
                        Value::Null => {
                            length_summary.update_null();
                            continue;
                        }
                        Value::DoubleArray(a) => a.len(),
                        Value::TextArray(a) => a.len(),
                        Value::IntArray(a) => a.len(),
                        other => {
                            return Err(EngineError::TypeMismatch {
                                expected: "array",
                                found: other.type_name().to_owned(),
                            })
                        }
                    };
                    length_summary.update(len as f64);
                }
                columns.push(ColumnProfile::Array {
                    name: info.name,
                    length_summary,
                });
            }
        }
    }
    Ok(TableProfile {
        row_count: table.row_count(),
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::{row, Column, ColumnType, Row, Schema};

    fn mixed_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("amount", ColumnType::Double),
            Column::new("category", ColumnType::Text),
            Column::new("features", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, 3).unwrap();
        for i in 0..200 {
            let category = match i % 4 {
                0 | 1 => "retail",
                2 => "wholesale",
                _ => "online",
            };
            t.insert(row![i as f64, category, vec![1.0; (i % 5) + 1]])
                .unwrap();
        }
        // A NULL row for null accounting.
        t.insert(Row::new(vec![Value::Null, Value::Null, Value::Null]))
            .unwrap();
        t
    }

    #[test]
    fn profiles_every_column_with_the_right_role() {
        let t = mixed_table();
        let profile = profile_table(&Executor::new(), &t).unwrap();
        assert_eq!(profile.row_count, 201);
        assert_eq!(profile.columns.len(), 3);
        assert_eq!(profile.columns[0].name(), "amount");
        assert_eq!(profile.columns[1].name(), "category");
        assert_eq!(profile.columns[2].name(), "features");

        match &profile.columns[0] {
            ColumnProfile::Numeric {
                summary,
                median,
                percentile_05_95,
                ..
            } => {
                assert_eq!(summary.count(), 200);
                assert_eq!(summary.null_count(), 1);
                assert_eq!(summary.min(), Some(0.0));
                assert_eq!(summary.max(), Some(199.0));
                assert!((summary.mean().unwrap() - 99.5).abs() < 1e-9);
                let median = median.unwrap();
                assert!((80.0..=120.0).contains(&median));
                assert!(percentile_05_95.0.unwrap() < percentile_05_95.1.unwrap());
            }
            other => panic!("expected numeric profile, got {other:?}"),
        }

        match &profile.columns[1] {
            ColumnProfile::Categorical {
                non_null,
                nulls,
                distinct_exact,
                distinct_estimate,
                most_common,
                most_common_cm_estimate,
                ..
            } => {
                assert_eq!(*non_null, 200);
                assert_eq!(*nulls, 1);
                assert_eq!(*distinct_exact, 3);
                assert!(*distinct_estimate > 0.0);
                assert_eq!(most_common[0].0, "retail");
                assert_eq!(most_common[0].1, 100);
                assert!(*most_common_cm_estimate >= 100);
            }
            other => panic!("expected categorical profile, got {other:?}"),
        }

        match &profile.columns[2] {
            ColumnProfile::Array { length_summary, .. } => {
                assert_eq!(length_summary.count(), 200);
                assert_eq!(length_summary.min(), Some(1.0));
                assert_eq!(length_summary.max(), Some(5.0));
            }
            other => panic!("expected array profile, got {other:?}"),
        }
    }

    #[test]
    fn empty_table_profile() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Double)]);
        let t = Table::new(schema, 2).unwrap();
        let profile = profile_table(&Executor::new(), &t).unwrap();
        assert_eq!(profile.row_count, 0);
        match &profile.columns[0] {
            ColumnProfile::Numeric {
                summary, median, ..
            } => {
                assert_eq!(summary.count(), 0);
                assert_eq!(*median, None);
            }
            other => panic!("unexpected profile {other:?}"),
        }
    }
}
