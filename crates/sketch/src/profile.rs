//! The `profile` module: templated per-column summaries of an arbitrary
//! table.
//!
//! Section 3.1.3 of the paper uses `profile` as its example of a templated
//! query: the input schema is arbitrary and the output schema is a function
//! of it (one set of summary columns per input column).  The implementation
//! here mirrors that shape — it introspects the schema through the engine's
//! template API, picks a summary plan per column role, and runs **one pass**
//! over the table computing numeric summaries, approximate distinct counts
//! (Flajolet–Martin), approximate quantiles and most-common values.
//!
//! The pass itself is [`ProfileAggregate`], a user-defined aggregate whose
//! state is one accumulator per column.  It runs on the executor's shared
//! scan pipeline like every other aggregate — segment-parallel, with a
//! `transition_chunk` override that streams each column's contiguous chunk
//! buffer — rather than the private serial row loop earlier versions used.
//! All the per-column accumulators are mergeable (Chan/Welford summaries,
//! Greenwald–Khanna quantile merge, bitwise-OR FM union, counter-wise CM
//! union, exact frequency tables), which is what makes the whole profile a
//! valid UDA in the paper's sense.

use crate::countmin::CountMinSketch;
use crate::fm::FlajoletMartin;
use crate::quantile::QuantileSummary;
use madlib_core::train::{
    incremental_view_name, Estimator, GroupedModels, IncrementalEstimator, Session,
};
use madlib_engine::chunk::ColumnChunk;
use madlib_engine::dataset::Dataset;
use madlib_engine::template::{describe_schema, ColumnInfo, ColumnRole};
use madlib_engine::{
    Aggregate, EngineError, Executor, MaterializedAggregate, Result, Row, RowChunk, Schema, Table,
    Value,
};
use madlib_stats::descriptive::FrequencyTable;
use madlib_stats::Summary;

/// Profile of one column.
#[derive(Debug, Clone)]
pub enum ColumnProfile {
    /// Numeric column: streaming summary plus approximate quantiles.
    Numeric {
        /// Column name.
        name: String,
        /// Count / mean / variance / min / max summary.
        summary: Summary,
        /// Approximate median.
        median: Option<f64>,
        /// Approximate 5th and 95th percentiles.
        percentile_05_95: (Option<f64>, Option<f64>),
    },
    /// Categorical column: distinct counts and most common values.
    Categorical {
        /// Column name.
        name: String,
        /// Non-null observations.
        non_null: u64,
        /// NULL observations.
        nulls: u64,
        /// Exact distinct count (tracked alongside the sketch for modest
        /// cardinalities).
        distinct_exact: usize,
        /// Flajolet–Martin approximate distinct count.
        distinct_estimate: f64,
        /// Most common values with exact counts.
        most_common: Vec<(String, u64)>,
        /// Count–Min estimate for the most common value (sanity cross-check).
        most_common_cm_estimate: u64,
    },
    /// Array column: only element-count statistics are profiled.
    Array {
        /// Column name.
        name: String,
        /// Summary of the array lengths.
        length_summary: Summary,
    },
}

impl ColumnProfile {
    /// The profiled column's name.
    pub fn name(&self) -> &str {
        match self {
            ColumnProfile::Numeric { name, .. }
            | ColumnProfile::Categorical { name, .. }
            | ColumnProfile::Array { name, .. } => name,
        }
    }
}

/// Profile of a whole table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Number of rows profiled.
    pub row_count: usize,
    /// One profile per column, in schema order.
    pub columns: Vec<ColumnProfile>,
}

/// Per-column accumulator of the profile pass, selected by
/// [`ColumnRole`].
#[derive(Debug, Clone)]
enum ColumnAccumulator {
    Numeric {
        summary: Summary,
        quantiles: QuantileSummary,
    },
    Categorical {
        frequencies: FrequencyTable,
        fm: FlajoletMartin,
        cm: CountMinSketch,
        nulls: u64,
    },
    Array {
        length_summary: Summary,
    },
}

impl ColumnAccumulator {
    fn for_role(role: ColumnRole) -> Self {
        match role {
            ColumnRole::Numeric => ColumnAccumulator::Numeric {
                summary: Summary::new(),
                quantiles: QuantileSummary::new(0.01),
            },
            ColumnRole::Categorical => ColumnAccumulator::Categorical {
                frequencies: FrequencyTable::new(),
                fm: FlajoletMartin::new(64),
                cm: CountMinSketch::new(5, 512),
                nulls: 0,
            },
            ColumnRole::FeatureVector | ColumnRole::OtherArray => ColumnAccumulator::Array {
                length_summary: Summary::new(),
            },
        }
    }

    /// Per-row update — the transition the chunked fast paths must match.
    fn update_from_value(&mut self, value: &Value) -> Result<()> {
        match self {
            ColumnAccumulator::Numeric { summary, quantiles } => match value {
                Value::Null => summary.update_null(),
                v => {
                    let x = v.as_double()?;
                    summary.update(x);
                    quantiles.insert(x);
                }
            },
            ColumnAccumulator::Categorical {
                frequencies,
                fm,
                cm,
                nulls,
            } => match value {
                Value::Null => *nulls += 1,
                v => {
                    let text = v.as_text()?;
                    frequencies.update(text);
                    fm.update(text);
                    cm.update(text, 1);
                }
            },
            ColumnAccumulator::Array { length_summary } => {
                let len = match value {
                    Value::Null => {
                        length_summary.update_null();
                        return Ok(());
                    }
                    Value::DoubleArray(a) => a.len(),
                    Value::TextArray(a) => a.len(),
                    Value::IntArray(a) => a.len(),
                    other => {
                        return Err(EngineError::TypeMismatch {
                            expected: "array",
                            found: other.type_name().to_owned(),
                        })
                    }
                };
                length_summary.update(len as f64);
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: &ColumnAccumulator) {
        match (self, other) {
            (
                ColumnAccumulator::Numeric { summary, quantiles },
                ColumnAccumulator::Numeric {
                    summary: other_summary,
                    quantiles: other_quantiles,
                },
            ) => {
                summary.merge(other_summary);
                quantiles.merge(other_quantiles);
            }
            (
                ColumnAccumulator::Categorical {
                    frequencies,
                    fm,
                    cm,
                    nulls,
                },
                ColumnAccumulator::Categorical {
                    frequencies: other_frequencies,
                    fm: other_fm,
                    cm: other_cm,
                    nulls: other_nulls,
                },
            ) => {
                frequencies.merge(other_frequencies);
                fm.merge(other_fm);
                cm.merge(other_cm);
                *nulls += other_nulls;
            }
            (
                ColumnAccumulator::Array { length_summary },
                ColumnAccumulator::Array {
                    length_summary: other_length_summary,
                },
            ) => length_summary.merge(other_length_summary),
            // States built from the same schema always pair up.
            _ => unreachable!("mismatched profile accumulators"),
        }
    }

    fn into_profile(self, name: String) -> ColumnProfile {
        match self {
            ColumnAccumulator::Numeric { summary, quantiles } => ColumnProfile::Numeric {
                name,
                median: quantiles.median(),
                percentile_05_95: (quantiles.quantile(0.05), quantiles.quantile(0.95)),
                summary,
            },
            ColumnAccumulator::Categorical {
                frequencies,
                fm,
                cm,
                nulls,
            } => {
                let most_common = frequencies.top_k(5);
                let most_common_cm_estimate = most_common
                    .first()
                    .map(|(value, _)| cm.estimate(value))
                    .unwrap_or(0);
                ColumnProfile::Categorical {
                    name,
                    non_null: frequencies.total(),
                    nulls,
                    distinct_exact: frequencies.distinct_count(),
                    distinct_estimate: fm.estimate(),
                    most_common,
                    most_common_cm_estimate,
                }
            }
            ColumnAccumulator::Array { length_summary } => ColumnProfile::Array {
                name,
                length_summary,
            },
        }
    }
}

/// Transition state of [`ProfileAggregate`]: row count plus one accumulator
/// per column.
#[derive(Debug, Clone)]
pub struct ProfileState {
    row_count: u64,
    columns: Vec<ColumnAccumulator>,
}

/// The whole-table profile as a single user-defined aggregate.
///
/// Build one with [`ProfileAggregate::new`] from the table's schema (the
/// templated step: the aggregate's state shape is a function of the input
/// schema) and run it through any [`Executor`] — it behaves like every other
/// aggregate, including under filters and grouping.
#[derive(Debug, Clone)]
pub struct ProfileAggregate {
    infos: Vec<ColumnInfo>,
}

impl ProfileAggregate {
    /// Plans a profile pass for `schema` (one accumulator per column, chosen
    /// by the column's [`ColumnRole`]).
    pub fn new(schema: &Schema) -> Self {
        Self {
            infos: describe_schema(schema),
        }
    }
}

impl Aggregate for ProfileAggregate {
    type State = ProfileState;
    type Output = TableProfile;

    fn initial_state(&self) -> ProfileState {
        ProfileState {
            row_count: 0,
            columns: self
                .infos
                .iter()
                .map(|info| ColumnAccumulator::for_role(info.role))
                .collect(),
        }
    }

    fn transition(&self, state: &mut ProfileState, row: &Row, _schema: &Schema) -> Result<()> {
        state.row_count += 1;
        for (idx, acc) in state.columns.iter_mut().enumerate() {
            acc.update_from_value(row.get(idx))?;
        }
        Ok(())
    }

    fn transition_chunk(
        &self,
        state: &mut ProfileState,
        chunk: &RowChunk,
        _schema: &Schema,
    ) -> Result<()> {
        state.row_count += chunk.len() as u64;
        for (idx, acc) in state.columns.iter_mut().enumerate() {
            let column = chunk.column(idx);
            match (acc, column) {
                (
                    ColumnAccumulator::Numeric { summary, quantiles },
                    ColumnChunk::Double { values, nulls },
                ) => {
                    for (i, v) in values.iter().enumerate() {
                        if nulls.is_null(i) {
                            summary.update_null();
                        } else {
                            summary.update(*v);
                            quantiles.insert(*v);
                        }
                    }
                }
                (
                    ColumnAccumulator::Numeric { summary, quantiles },
                    ColumnChunk::Int { values, nulls },
                ) => {
                    for (i, v) in values.iter().enumerate() {
                        if nulls.is_null(i) {
                            summary.update_null();
                        } else {
                            summary.update(*v as f64);
                            quantiles.insert(*v as f64);
                        }
                    }
                }
                (
                    ColumnAccumulator::Numeric { summary, quantiles },
                    ColumnChunk::Bool { values, nulls },
                ) => {
                    for (i, v) in values.iter().enumerate() {
                        if nulls.is_null(i) {
                            summary.update_null();
                        } else {
                            let x = if *v { 1.0 } else { 0.0 };
                            summary.update(x);
                            quantiles.insert(x);
                        }
                    }
                }
                (
                    ColumnAccumulator::Categorical {
                        frequencies,
                        fm,
                        cm,
                        nulls: null_count,
                    },
                    ColumnChunk::Text { values, nulls },
                ) => {
                    for (i, text) in values.iter().enumerate() {
                        if nulls.is_null(i) {
                            *null_count += 1;
                        } else {
                            frequencies.update(text);
                            fm.update(text);
                            cm.update(text, 1);
                        }
                    }
                }
                (
                    ColumnAccumulator::Array { length_summary },
                    ColumnChunk::DoubleArray { offsets, nulls, .. }
                    | ColumnChunk::IntArray { offsets, nulls, .. }
                    | ColumnChunk::TextArray { offsets, nulls, .. },
                ) => {
                    for i in 0..nulls.len() {
                        if nulls.is_null(i) {
                            length_summary.update_null();
                        } else {
                            length_summary.update((offsets[i + 1] - offsets[i]) as f64);
                        }
                    }
                }
                // Role/storage mismatch (only possible for exotic schemas):
                // materialize values and use the per-row update, which
                // raises the same errors the row path would.
                (acc, column) => {
                    for i in 0..chunk.len() {
                        acc.update_from_value(&column.value(i))?;
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&self, mut left: ProfileState, right: ProfileState) -> ProfileState {
        left.row_count += right.row_count;
        for (a, b) in left.columns.iter_mut().zip(&right.columns) {
            a.merge(b);
        }
        left
    }

    fn finalize(&self, state: ProfileState) -> Result<TableProfile> {
        Ok(TableProfile {
            row_count: state.row_count as usize,
            columns: state
                .columns
                .into_iter()
                .zip(&self.infos)
                .map(|(acc, info)| acc.into_profile(info.name.clone()))
                .collect(),
        })
    }
}

/// Profiles every column of `table` in one pass over the shared scan
/// pipeline (segment-parallel, chunk-at-a-time under the default executor).
///
/// # Errors
/// Propagates engine access errors (the profile itself accepts any schema).
pub fn profile_table(executor: &Executor, table: &Table) -> Result<TableProfile> {
    executor.aggregate(table, &ProfileAggregate::new(table.schema()))
}

/// Profiles a dataset's (filtered) rows in one pass — the dataset-shaped
/// variant of [`profile_table`]; also available as the
/// [`DatasetProfileExt::profile`] terminal.
///
/// # Errors
/// Propagates engine access and predicate errors; errors on a grouped
/// dataset (run [`Profiler`] through `Session::train_grouped` for per-group
/// profiles).
pub fn profile_dataset(dataset: &Dataset<'_>) -> Result<TableProfile> {
    dataset.aggregate(&ProfileAggregate::new(dataset.schema()))
}

/// Adds the `profile()` terminal operation to [`Dataset`].
pub trait DatasetProfileExt {
    /// Profiles the dataset's (filtered) rows in one pass.
    ///
    /// # Errors
    /// Propagates engine access and predicate errors; errors on a grouped
    /// dataset.
    fn profile(&self) -> Result<TableProfile>;
}

impl DatasetProfileExt for Dataset<'_> {
    fn profile(&self) -> Result<TableProfile> {
        profile_dataset(self)
    }
}

/// The profile pass packaged as an [`Estimator`], so profiling composes with
/// the uniform training convention — in particular
/// `Session::train_grouped(&Profiler, &ds.group_by([...]))` produces one
/// [`TableProfile`] per group in a single grouped scan (the paper's
/// templated `profile` module meeting its `grouping_cols`), including one
/// profile per composite key for multi-column `group_by`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profiler;

impl Estimator for Profiler {
    type Model = TableProfile;

    fn fit(&self, dataset: &Dataset<'_>, _session: &Session) -> madlib_core::Result<TableProfile> {
        profile_dataset(dataset).map_err(madlib_core::MethodError::from)
    }

    /// Single-pass grouped profiling: one grouped scan profiles every group.
    fn fit_grouped(
        &self,
        dataset: &Dataset<'_>,
        _session: &Session,
    ) -> madlib_core::Result<GroupedModels<TableProfile>> {
        Ok(GroupedModels::new(dataset.aggregate_per_group(
            &ProfileAggregate::new(dataset.schema()),
        )?))
    }
}

impl IncrementalEstimator for Profiler {
    /// Registers a materialized view of the per-column accumulators
    /// (summaries, quantile sketches, FM/CM sketches, frequency tables);
    /// appends to the source table refresh the profile at O(appended) cost.
    fn train_incremental(
        &self,
        session: &Session,
        table: &str,
        name: &str,
    ) -> madlib_core::Result<TableProfile> {
        // The templated step: the aggregate's state shape is a function of
        // the source table's schema at registration time.
        let schema = session.database().table(table)?.schema().clone();
        let view = MaterializedAggregate::new(ProfileAggregate::new(&schema), session.executor());
        session
            .database()
            .register_view(&incremental_view_name(name), table, Box::new(view))?;
        refresh_profile_view(session, name)
    }

    /// Absorbs only appended rows and re-finalizes — bit-identical to a full
    /// re-profile (every accumulator is mergeable).
    fn refresh(
        &self,
        session: &Session,
        table: &str,
        name: &str,
    ) -> madlib_core::Result<TableProfile> {
        if !session.database().has_view(&incremental_view_name(name)) {
            return self.train_incremental(session, table, name);
        }
        refresh_profile_view(session, name)
    }
}

/// Catches the profile view backing `name` up to its source table,
/// re-finalizes, and registers the profile in the model catalog.
fn refresh_profile_view(session: &Session, name: &str) -> madlib_core::Result<TableProfile> {
    let profile = session
        .database()
        .refresh_view(&incremental_view_name(name), |state| {
            state
                .as_any_mut()
                .downcast_mut::<MaterializedAggregate<ProfileAggregate>>()
                .ok_or_else(|| {
                    EngineError::invalid(format!(
                        "materialized view backing profile {name:?} holds a different aggregate type"
                    ))
                })?
                .finalize()
        })?;
    session.database().models().register(name, profile.clone());
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madlib_engine::{row, Column, ColumnType, Row, Schema};

    fn mixed_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("amount", ColumnType::Double),
            Column::new("category", ColumnType::Text),
            Column::new("features", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, 3).unwrap();
        for i in 0..200 {
            let category = match i % 4 {
                0 | 1 => "retail",
                2 => "wholesale",
                _ => "online",
            };
            t.insert(row![i as f64, category, vec![1.0; (i % 5) + 1]])
                .unwrap();
        }
        // A NULL row for null accounting.
        t.insert(Row::new(vec![Value::Null, Value::Null, Value::Null]))
            .unwrap();
        t
    }

    #[test]
    fn profiles_every_column_with_the_right_role() {
        let t = mixed_table();
        let profile = profile_table(&Executor::new(), &t).unwrap();
        assert_eq!(profile.row_count, 201);
        assert_eq!(profile.columns.len(), 3);
        assert_eq!(profile.columns[0].name(), "amount");
        assert_eq!(profile.columns[1].name(), "category");
        assert_eq!(profile.columns[2].name(), "features");

        match &profile.columns[0] {
            ColumnProfile::Numeric {
                summary,
                median,
                percentile_05_95,
                ..
            } => {
                assert_eq!(summary.count(), 200);
                assert_eq!(summary.null_count(), 1);
                assert_eq!(summary.min(), Some(0.0));
                assert_eq!(summary.max(), Some(199.0));
                assert!((summary.mean().unwrap() - 99.5).abs() < 1e-9);
                let median = median.unwrap();
                assert!((80.0..=120.0).contains(&median));
                assert!(percentile_05_95.0.unwrap() < percentile_05_95.1.unwrap());
            }
            other => panic!("expected numeric profile, got {other:?}"),
        }

        match &profile.columns[1] {
            ColumnProfile::Categorical {
                non_null,
                nulls,
                distinct_exact,
                distinct_estimate,
                most_common,
                most_common_cm_estimate,
                ..
            } => {
                assert_eq!(*non_null, 200);
                assert_eq!(*nulls, 1);
                assert_eq!(*distinct_exact, 3);
                assert!(*distinct_estimate > 0.0);
                assert_eq!(most_common[0].0, "retail");
                assert_eq!(most_common[0].1, 100);
                assert!(*most_common_cm_estimate >= 100);
            }
            other => panic!("expected categorical profile, got {other:?}"),
        }

        match &profile.columns[2] {
            ColumnProfile::Array { length_summary, .. } => {
                assert_eq!(length_summary.count(), 200);
                assert_eq!(length_summary.min(), Some(1.0));
                assert_eq!(length_summary.max(), Some(5.0));
            }
            other => panic!("expected array profile, got {other:?}"),
        }
    }

    #[test]
    fn chunked_and_row_profiles_agree_on_exact_fields() {
        let t = mixed_table();
        let chunked = profile_table(&Executor::new(), &t).unwrap();
        let by_rows = profile_table(&Executor::row_at_a_time(), &t).unwrap();
        assert_eq!(chunked.row_count, by_rows.row_count);
        for (a, b) in chunked.columns.iter().zip(&by_rows.columns) {
            match (a, b) {
                (
                    ColumnProfile::Numeric {
                        summary: sa,
                        median: ma,
                        ..
                    },
                    ColumnProfile::Numeric {
                        summary: sb,
                        median: mb,
                        ..
                    },
                ) => {
                    // Identical per-segment streams → identical states.
                    assert_eq!(sa, sb);
                    assert_eq!(
                        ma.map(f64::to_bits),
                        mb.map(f64::to_bits),
                        "quantile summaries saw identical insert sequences"
                    );
                }
                (
                    ColumnProfile::Categorical {
                        non_null: na,
                        nulls: la,
                        distinct_exact: da,
                        distinct_estimate: ea,
                        most_common: ca,
                        ..
                    },
                    ColumnProfile::Categorical {
                        non_null: nb,
                        nulls: lb,
                        distinct_exact: db,
                        distinct_estimate: eb,
                        most_common: cb,
                        ..
                    },
                ) => {
                    assert_eq!((na, la, da, ca), (nb, lb, db, cb));
                    assert_eq!(ea.to_bits(), eb.to_bits());
                }
                (
                    ColumnProfile::Array {
                        length_summary: a, ..
                    },
                    ColumnProfile::Array {
                        length_summary: b, ..
                    },
                ) => assert_eq!(a, b),
                other => panic!("profile shapes diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_table_profile() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Double)]);
        let t = Table::new(schema, 2).unwrap();
        let profile = profile_table(&Executor::new(), &t).unwrap();
        assert_eq!(profile.row_count, 0);
        match &profile.columns[0] {
            ColumnProfile::Numeric {
                summary, median, ..
            } => {
                assert_eq!(summary.count(), 0);
                assert_eq!(*median, None);
            }
            other => panic!("unexpected profile {other:?}"),
        }
    }
}
