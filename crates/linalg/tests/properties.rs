//! Property-based tests for the linear-algebra substrate.

use madlib_linalg::decomposition::{Cholesky, SymmetricEigen};
use madlib_linalg::kernels::{needs_symmetrize, rank1_update, KernelGeneration};
use madlib_linalg::{DenseMatrix, DenseVector, SparseVector};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in finite_vec(8), b in finite_vec(8)) {
        let va = DenseVector::from_vec(a);
        let vb = DenseVector::from_vec(b);
        let ab = va.dot(&vb).unwrap();
        let ba = vb.dot(&va).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn sparse_round_trip(dense in prop::collection::vec(prop_oneof![Just(0.0f64), -10.0..10.0f64], 0..64)) {
        let sv = SparseVector::from_dense(&dense);
        prop_assert_eq!(sv.to_dense(), dense.clone());
        prop_assert_eq!(sv.len(), dense.len());
        prop_assert!(sv.run_count() <= dense.len().max(1));
    }

    #[test]
    fn sparse_dot_matches_dense(
        a in prop::collection::vec(prop_oneof![Just(0.0f64), -5.0..5.0f64], 32),
        b in prop::collection::vec(prop_oneof![Just(0.0f64), -5.0..5.0f64], 32),
    ) {
        let sa = SparseVector::from_dense(&a);
        let sb = SparseVector::from_dense(&b);
        let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!((sa.dot(&sb).unwrap() - expected).abs() < 1e-8);
        prop_assert!((sa.dot_dense(&b).unwrap() - expected).abs() < 1e-8);
    }

    #[test]
    fn kernel_generations_agree(x in finite_vec(6)) {
        let k = x.len();
        let mut reference = DenseMatrix::zeros(k, k);
        rank1_update(KernelGeneration::V01Alpha, &mut reference, &x);
        for gen in [KernelGeneration::V021Beta, KernelGeneration::V03] {
            let mut m = DenseMatrix::zeros(k, k);
            rank1_update(gen, &mut m, &x);
            if needs_symmetrize(gen) {
                m.symmetrize_from_lower().unwrap();
            }
            prop_assert!(m.max_abs_diff(&reference).unwrap() < 1e-9);
        }
    }

    #[test]
    fn cholesky_solve_recovers_rhs(diag in prop::collection::vec(0.5..10.0f64, 4), b in finite_vec(4)) {
        // Build an SPD matrix as D + small symmetric perturbation.
        let n = diag.len();
        let mut a = DenseMatrix::zeros(n, n);
        #[allow(clippy::needless_range_loop)] // i is both row and column index
        for i in 0..n {
            a.set(i, i, diag[i] + n as f64);
            for j in 0..i {
                a.set(i, j, 0.1);
                a.set(j, i, 0.1);
            }
        }
        let rhs = DenseVector::from_vec(b);
        let x = Cholesky::new(&a).unwrap().solve(&rhs).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..n {
            prop_assert!((ax[i] - rhs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn eigen_trace_is_preserved(diag in prop::collection::vec(-5.0..5.0f64, 5)) {
        // Symmetric matrix: diagonal plus symmetric off-diagonal pattern.
        let n = diag.len();
        let mut a = DenseMatrix::zeros(n, n);
        #[allow(clippy::needless_range_loop)] // i is both row and column index
        for i in 0..n {
            a.set(i, i, diag[i]);
            for j in 0..i {
                let v = ((i * 7 + j * 3) % 5) as f64 * 0.1;
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let trace: f64 = diag.iter().sum();
        let eig = SymmetricEigen::new(&a).unwrap();
        let eig_sum: f64 = eig.values().iter().sum();
        prop_assert!((trace - eig_sum).abs() < 1e-7);
    }

    #[test]
    fn matmul_identity_is_noop(rows in finite_vec(9)) {
        let a = DenseMatrix::from_row_major(3, 3, rows).unwrap();
        let id = DenseMatrix::identity(3);
        prop_assert!(a.matmul(&id).unwrap().max_abs_diff(&a).unwrap() < 1e-12);
        prop_assert!(id.matmul(&a).unwrap().max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn transpose_is_involution(data in finite_vec(12)) {
        let a = DenseMatrix::from_row_major(3, 4, data).unwrap();
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}
