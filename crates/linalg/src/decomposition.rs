//! Matrix decompositions and solvers.
//!
//! The MADlib linear-regression final function (paper Listing 2) computes the
//! Moore–Penrose pseudo-inverse of the symmetric positive semi-definite matrix
//! `XᵀX` via an eigendecomposition, and reports the condition number.  This
//! module provides the equivalent building blocks: Cholesky and LU
//! factorizations for well-conditioned systems, and a symmetric
//! eigendecomposition (Householder tridiagonalization followed by the
//! implicit-shift QL iteration) for the pseudo-inverse / condition-number
//! path.  Grouped training runs one decomposition per group, so
//! [`EigenWorkspace`] lets callers reuse the O(n²) working buffers across
//! repeated [`SymmetricEigen::new_with`] calls instead of allocating per
//! group, and [`symmetric_inverse_with`] / [`symmetric_solve`] wrap the
//! whole pattern: a cheap eigenvalues-only probe
//! ([`SymmetricEigen::eigenvalues_with`]) gates a Cholesky fast path for the
//! full-rank common case, with the eigendecomposition pseudo-inverse kept
//! for rank-deficient inputs.

use crate::dense::{DenseMatrix, DenseVector};
use crate::error::{LinalgError, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DenseMatrix,
}

impl Cholesky {
    /// Computes the factorization.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { minor: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &DenseVector) -> Result<DenseVector> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            #[allow(clippy::needless_range_loop)] // triangular access below the diagonal
            for k in 0..i {
                sum -= self.l.get(i, k) * y[k];
            }
            y[i] = sum / self.l.get(i, i);
        }
        // Back substitution Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            #[allow(clippy::needless_range_loop)] // triangular access above the diagonal
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(DenseVector::from_vec(x))
    }

    /// Inverse of the original matrix, `A⁻¹ = L⁻ᵀ L⁻¹`.
    ///
    /// `L⁻¹` is built column by column but stored *transposed* (each column
    /// contiguous), so both the substitution and the final symmetric product
    /// run over contiguous row slices.
    pub fn inverse(&self) -> DenseMatrix {
        let n = self.l.rows();
        // linvt[j*n + k] = (L⁻¹)[k][j]: column j of L⁻¹, contiguous.
        let mut linvt = vec![0.0; n * n];
        for j in 0..n {
            linvt[j * n + j] = 1.0 / self.l.get(j, j);
            for i in (j + 1)..n {
                let row_i = self.l.row_slice(i);
                let col_j = &linvt[j * n..j * n + i];
                let mut sum = 0.0;
                for k in j..i {
                    sum -= row_i[k] * col_j[k];
                }
                linvt[j * n + i] = sum / self.l.get(i, i);
            }
        }
        // (A⁻¹)[i][j] = Σ_k (L⁻¹)[k][i] (L⁻¹)[k][j], k ≥ max(i, j).
        let mut out = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let ci = &linvt[i * n..(i + 1) * n];
                let cj = &linvt[j * n..(j + 1) * n];
                let mut sum = 0.0;
                for k in i..n {
                    sum += ci[k] * cj[k];
                }
                out.set(i, j, sum);
                out.set(j, i, sum);
            }
        }
        out
    }

    /// Reconstructs `A = L Lᵀ` (mainly for testing).
    pub fn reconstruct(&self) -> DenseMatrix {
        let lt = self.l.transpose();
        self.l.matmul(&lt).expect("shapes agree by construction")
    }
}

/// LU factorization with partial pivoting, `P A = L U`.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DenseMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Computes the factorization.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Find pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular { pivot: pivot_val });
            }
            if pivot_row != col {
                for c in 0..n {
                    let a = lu.get(col, c);
                    let b = lu.get(pivot_row, c);
                    lu.set(col, c, b);
                    lu.set(pivot_row, c, a);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / pivot;
                lu.set(r, col, factor);
                for c in (col + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &DenseVector) -> Result<DenseVector> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation.
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = b[self.perm[i]];
        }
        // Forward substitution (unit lower triangular).
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.lu.get(i, k) * y[k];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu.get(i, k) * y[k];
            }
            y[i] /= self.lu.get(i, i);
        }
        Ok(DenseVector::from_vec(y))
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.lu.rows() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    /// Propagates solver errors (cannot normally fail once factorized).
    pub fn inverse(&self) -> Result<DenseMatrix> {
        let n = self.lu.rows();
        let mut inv = DenseMatrix::zeros(n, n);
        for c in 0..n {
            let mut e = DenseVector::zeros(n);
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv.set(r, c, col[r]);
            }
        }
        Ok(inv)
    }
}

/// Reusable working storage for [`SymmetricEigen::new_with`].
///
/// Holds the tridiagonalization buffers (an n×n transform accumulator plus
/// the diagonal / off-diagonal vectors).  One workspace serves matrices of
/// any size — buffers grow on demand and are reused across calls — so a
/// finalize worker that decomposes one `XᵀX` per group pays the O(n²)
/// allocations once instead of per group.  The workspace carries no state
/// between calls: results are identical with a fresh or a reused workspace.
#[derive(Debug, Default)]
pub struct EigenWorkspace {
    /// Row-major n×n working matrix (tridiagonalized copy, then transforms).
    z: Vec<f64>,
    /// Diagonal of the tridiagonal form / eigenvalues in place.
    d: Vec<f64>,
    /// Off-diagonal of the tridiagonal form.
    e: Vec<f64>,
}

impl EigenWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Symmetric eigendecomposition: Householder reduction to tridiagonal form
/// followed by the implicit-shift QL iteration (the classic EISPACK
/// `tred2`/`tql2` pair) — O(n³) with a small constant, against the O(n³)
/// *per sweep* of the cyclic Jacobi method it replaced.
///
/// Eigenvalues are returned in descending order with matching eigenvectors as
/// columns of [`SymmetricEigen::vectors`].
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    vectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Maximum QL iterations per eigenvalue before giving up.
    const MAX_QL_ITERATIONS: usize = 50;

    /// Computes the decomposition of a symmetric matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::EmptyInput`] if `a` is 0×0.
    /// * [`LinalgError::DidNotConverge`] if the QL iteration stalls.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        Self::new_with(a, &mut EigenWorkspace::new())
    }

    /// [`SymmetricEigen::new`] reusing the buffers in `workspace`.
    ///
    /// # Errors
    /// Same contract as [`SymmetricEigen::new`].
    pub fn new_with(a: &DenseMatrix, workspace: &mut EigenWorkspace) -> Result<Self> {
        let n = stage_symmetrized(a, workspace)?;
        let z = &mut workspace.z;

        tred2(n, z, &mut workspace.d, &mut workspace.e);
        tql2(n, z, &mut workspace.d, &mut workspace.e)?;

        // Sort eigenvalues descending and permute the eigenvector columns of
        // z (the accumulated transforms) to match.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            workspace.d[j]
                .partial_cmp(&workspace.d[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let values: Vec<f64> = order.iter().map(|&i| workspace.d[i]).collect();
        let mut vectors = DenseMatrix::zeros(n, n);
        for r in 0..n {
            let src = &workspace.z[r * n..(r + 1) * n];
            let dst = vectors.row_slice_mut(r);
            for (new_col, &old_col) in order.iter().enumerate() {
                dst[new_col] = src[old_col];
            }
        }
        Ok(Self { values, vectors })
    }

    /// Eigenvalues in descending order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Eigen*values* only, in descending order, reusing `workspace`.
    ///
    /// Skips the O(n³) transform accumulation and eigenvector rotations of
    /// the full decomposition — roughly 4× less work — while producing
    /// values **bit-identical** to [`SymmetricEigen::values`]: the
    /// tridiagonalization and QL value updates never read the eigenvector
    /// accumulator, so dropping it cannot change them.  This is the cheap
    /// probe behind [`symmetric_inverse_with`]'s Cholesky fast path and the
    /// MADlib `condition_no` output.
    ///
    /// # Errors
    /// Same contract as [`SymmetricEigen::new`].
    pub fn eigenvalues_with(a: &DenseMatrix, workspace: &mut EigenWorkspace) -> Result<Vec<f64>> {
        let n = stage_symmetrized(a, workspace)?;
        let z = &mut workspace.z;
        householder_tridiagonalize(n, z, &mut workspace.d, &mut workspace.e);
        // The reflectors were applied to z in place, so its diagonal holds
        // the tridiagonal diagonal (tred2's accumulation phase reads the
        // same entries; see householder_tridiagonalize).
        for i in 0..n {
            workspace.d[i] = z[i * n + i];
        }
        tql1(n, &mut workspace.d, &mut workspace.e)?;
        let mut values = workspace.d.clone();
        values.sort_by(|x, y| y.partial_cmp(x).unwrap_or(std::cmp::Ordering::Equal));
        Ok(values)
    }

    /// Eigenvectors as matrix columns (column `i` pairs with `values()[i]`).
    pub fn vectors(&self) -> &DenseMatrix {
        &self.vectors
    }

    /// Condition number: ratio of largest to smallest *absolute* eigenvalue.
    ///
    /// Returns `f64::INFINITY` when the smallest eigenvalue is (numerically)
    /// zero, matching the semantics MADlib reports in the `condition_no`
    /// output column.  "Numerically zero" is relative — below `1e-14 ·
    /// max|λ|`, the same machine-epsilon scale the eigendecomposition
    /// resolves eigenvalues to — so a singular matrix reports an infinite
    /// condition number even when rounding leaves its zero eigenvalue as
    /// O(ε·‖A‖) noise rather than an exact `0.0`.
    pub fn condition_number(&self) -> f64 {
        condition_number_of(&self.values)
    }

    /// Moore–Penrose pseudo-inverse built from the decomposition.
    ///
    /// Eigenvalues whose magnitude is below `tolerance * max|λ|` are treated
    /// as zero (their reciprocal contribution is dropped), which is how the
    /// paper's `SymmetricPositiveDefiniteEigenDecomposition` handles the
    /// rank-deficient case.
    ///
    /// Each kept eigenvector is copied to a contiguous buffer and the rank-1
    /// update runs over whole output-row slices, so the O(n³) accumulation
    /// stays on autovectorizable contiguous loads instead of per-element
    /// `get`/`add_to` calls.
    pub fn pseudo_inverse(&self, tolerance: f64) -> DenseMatrix {
        let n = self.values.len();
        let max_abs = self.values.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
        let cutoff = tolerance * max_abs.max(1e-300);
        let mut out = DenseMatrix::zeros(n, n);
        let mut col = vec![0.0; n];
        for k in 0..n {
            let lambda = self.values[k];
            if lambda.abs() <= cutoff {
                continue;
            }
            let inv_lambda = 1.0 / lambda;
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = self.vectors.get(i, k);
            }
            for i in 0..n {
                let f = inv_lambda * col[i];
                if f == 0.0 {
                    continue;
                }
                for (o, &vjk) in out.row_slice_mut(i).iter_mut().zip(&col) {
                    *o += f * vjk;
                }
            }
        }
        out
    }
}

/// Householder reduction of a symmetric matrix to tridiagonal form with
/// accumulated transformations (EISPACK `tred2`, zero-indexed).
///
/// On entry `z` holds the symmetric input row-major; on exit `z` holds the
/// accumulated orthogonal transform `Q` (so `Qᵀ A Q` is tridiagonal), `d` the
/// diagonal and `e[1..]` the sub-diagonal of the tridiagonal form.
fn tred2(n: usize, z: &mut [f64], d: &mut [f64], e: &mut [f64]) {
    householder_tridiagonalize(n, z, d, e);
    // Accumulate the transformations.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[i * n + k] * z[k * n + j];
                }
                for k in 0..i {
                    z[k * n + j] -= g * z[k * n + i];
                }
            }
        }
        d[i] = z[i * n + i];
        z[i * n + i] = 1.0;
        for j in 0..i {
            z[j * n + i] = 0.0;
            z[i * n + j] = 0.0;
        }
    }
}

/// The reduction phase of [`tred2`]: applies the Householder reflectors to
/// `z` in place (so the leading diagonal of `z` ends up holding the
/// tridiagonal diagonal) and leaves the reflector scalars in `d` for the
/// accumulation phase.  Callers that only need eigen*values* skip the O(n³)
/// transform accumulation and read the diagonal straight out of `z` — the
/// resulting `d`/`e` are bit-identical to the full [`tred2`] path because
/// the accumulation phase never feeds back into them.
fn householder_tridiagonalize(n: usize, z: &mut [f64], d: &mut [f64], e: &mut [f64]) {
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[i * n + k].abs();
            }
            if scale == 0.0 {
                e[i] = z[i * n + l];
            } else {
                for k in 0..=l {
                    z[i * n + k] /= scale;
                    h += z[i * n + k] * z[i * n + k];
                }
                let mut f = z[i * n + l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[i * n + l] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[j * n + i] = z[i * n + j] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[j * n + k] * z[i * n + k];
                    }
                    for k in (j + 1)..=l {
                        g += z[k * n + j] * z[i * n + k];
                    }
                    e[j] = g / h;
                    f += e[j] * z[i * n + j];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[i * n + j];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        z[j * n + k] -= f * e[k] + g * z[i * n + k];
                    }
                }
            }
        } else {
            e[i] = z[i * n + l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix with
/// eigenvector accumulation (EISPACK `tql2`, zero-indexed).
///
/// On entry `d`/`e` hold the tridiagonal form and `z` the transform from
/// [`tred2`]; on exit `d` holds the (unsorted) eigenvalues and the columns of
/// `z` the matching eigenvectors.
///
/// # Errors
/// [`LinalgError::DidNotConverge`] when an eigenvalue needs more than
/// `SymmetricEigen::MAX_QL_ITERATIONS` implicit shifts.
fn tql2(n: usize, z: &mut [f64], d: &mut [f64], e: &mut [f64]) -> Result<()> {
    ql_implicit_shift(n, d, e, |i, s, c| {
        // Rotate eigenvector columns i and i+1.
        for k in 0..n {
            let f = z[k * n + i + 1];
            z[k * n + i + 1] = s * z[k * n + i] + c * f;
            z[k * n + i] = c * z[k * n + i] - s * f;
        }
    })
}

/// Eigenvalues-only QL iteration (EISPACK `tql1`): identical `d`/`e`
/// arithmetic to [`tql2`] — the eigenvector rotations never feed back into
/// the value updates — without the O(n³) rotation work.
fn tql1(n: usize, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    ql_implicit_shift(n, d, e, |_, _, _| {})
}

/// The shared implicit-shift QL loop behind [`tql2`] and [`tql1`]: `rotate`
/// is called with `(i, s, c)` for every plane rotation so the caller can
/// apply it to an eigenvector accumulator (or ignore it).  The `d`/`e`
/// update sequence is independent of `rotate`, so both callers produce
/// bit-identical eigenvalues.
fn ql_implicit_shift<R: FnMut(usize, f64, f64)>(
    n: usize,
    d: &mut [f64],
    e: &mut [f64],
    mut rotate: R,
) -> Result<()> {
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iterations = 0;
        loop {
            // Look for a single small sub-diagonal element to split the
            // matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iterations += 1;
            if iterations > SymmetricEigen::MAX_QL_ITERATIONS {
                return Err(LinalgError::DidNotConverge {
                    iterations: SymmetricEigen::MAX_QL_ITERATIONS,
                });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r } else { -r });
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating early.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                rotate(i, s, c);
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Validates `a` and stages a symmetrized copy (lower triangle mirrored up)
/// plus sized `d`/`e` buffers in `workspace`; returns the dimension.
fn stage_symmetrized(a: &DenseMatrix, workspace: &mut EigenWorkspace) -> Result<usize> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::EmptyInput {
            operation: "symmetric eigendecomposition",
        });
    }
    workspace.z.clear();
    workspace.z.resize(n * n, 0.0);
    workspace.d.clear();
    workspace.d.resize(n, 0.0);
    workspace.e.clear();
    workspace.e.resize(n, 0.0);
    let z = &mut workspace.z;
    for i in 0..n {
        for j in 0..=i {
            let v = a.get(i, j);
            z[i * n + j] = v;
            z[j * n + i] = v;
        }
    }
    Ok(n)
}

/// Condition number of a symmetric matrix from its eigenvalues: ratio of
/// largest to smallest *absolute* eigenvalue, `f64::INFINITY` when the
/// smallest is numerically zero (below `1e-14 · max|λ|`, the machine-epsilon
/// scale the decomposition resolves eigenvalues to).
fn condition_number_of(values: &[f64]) -> f64 {
    let max = values.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
    let min = values.iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
    if min <= (1e-14 * max).max(1e-300) {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Convenience: pseudo-inverse of a symmetric matrix with the default
/// tolerance of `1e-10`, plus its condition number.
///
/// This is the exact operation the MADlib linear-regression final function
/// performs on `XᵀX`.
///
/// # Errors
/// Propagates eigendecomposition errors.
pub fn symmetric_pseudo_inverse(a: &DenseMatrix) -> Result<(DenseMatrix, f64)> {
    let eig = SymmetricEigen::new(a)?;
    Ok((eig.pseudo_inverse(1e-10), eig.condition_number()))
}

/// Pseudo-inverse of a symmetric positive semi-definite matrix plus its
/// condition number, with a **Cholesky fast path** for the full-rank case.
///
/// A cheap eigenvalues-only pass ([`SymmetricEigen::eigenvalues_with`])
/// yields the exact condition number; when no eigenvalue falls below the
/// pseudo-inverse cutoff (`tolerance · max|λ|`) the pseudo-inverse *is* the
/// plain inverse, so it is computed by Cholesky factorization
/// (`A⁻¹ = L⁻ᵀL⁻¹`, roughly 4× less work than accumulating eigenvectors).
/// Rank-deficient or indefinite inputs — an eigenvalue under the cutoff, or
/// a failed factorization — fall back to the full eigendecomposition's
/// [`SymmetricEigen::pseudo_inverse`], preserving its dropped-eigenvalue
/// semantics exactly.
///
/// Only the lower triangle of `a` is read.  This is the hot per-group
/// finalize kernel of grouped linear regression: one `(XᵀX)⁺` per group,
/// with `workspace` reused across a worker's groups.
///
/// # Errors
/// Propagates eigendecomposition errors ([`LinalgError::NotSquare`],
/// [`LinalgError::EmptyInput`], [`LinalgError::DidNotConverge`]).
pub fn symmetric_inverse_with(
    a: &DenseMatrix,
    tolerance: f64,
    workspace: &mut EigenWorkspace,
) -> Result<(DenseMatrix, f64)> {
    let values = SymmetricEigen::eigenvalues_with(a, workspace)?;
    let condition = condition_number_of(&values);
    let max_abs = values.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
    let min_abs = values.iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
    let cutoff = tolerance * max_abs.max(1e-300);
    if min_abs > cutoff && values.iter().all(|&v| v > 0.0) {
        if let Ok(chol) = Cholesky::new(a) {
            return Ok((chol.inverse(), condition));
        }
    }
    let eig = SymmetricEigen::new_with(a, workspace)?;
    Ok((eig.pseudo_inverse(tolerance), eig.condition_number()))
}

/// Solves the symmetric positive semi-definite system `A x = b` with the
/// same Cholesky-first strategy as [`symmetric_inverse_with`]: factorize and
/// substitute when `A` is comfortably positive definite (O(n³/3) and no
/// eigenvector accumulation), fall back to the eigendecomposition
/// pseudo-inverse when the factorization fails or the pivot spread suggests
/// the pseudo-inverse would drop an eigenvalue (`min Lᵢᵢ² ≤ tolerance ·
/// max Lᵢᵢ²` — a conservative stand-in for `λ_min ≤ tolerance · λ_max`, so
/// near-singular systems keep the pseudo-inverse's regularizing behavior).
/// This is the per-iteration Newton-step solve of IRLS logistic regression.
///
/// # Errors
/// Propagates dimension mismatches and eigendecomposition errors from the
/// fallback path.
pub fn symmetric_solve(a: &DenseMatrix, b: &DenseVector, tolerance: f64) -> Result<DenseVector> {
    if let Ok(chol) = Cholesky::new(a) {
        let n = chol.l().rows();
        let mut min_pivot2 = f64::INFINITY;
        let mut max_pivot2 = 0.0_f64;
        for i in 0..n {
            let p2 = chol.l().get(i, i).powi(2);
            min_pivot2 = min_pivot2.min(p2);
            max_pivot2 = max_pivot2.max(p2);
        }
        if min_pivot2 > tolerance * max_pivot2 {
            return chol.solve(b);
        }
    }
    let eig = SymmetricEigen::new(a)?;
    eig.pseudo_inverse(tolerance).matvec(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.5],
            vec![0.6, 1.5, 3.0],
        ])
        .unwrap()
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd_matrix();
        let chol = Cholesky::new(&a).unwrap();
        assert!(chol.reconstruct().max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn cholesky_solve_matches_direct() {
        let a = spd_matrix();
        let b = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(Cholesky::new(&rect).is_err());
    }

    #[test]
    fn lu_solve_and_determinant() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
        .unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() - (-16.0)).abs() < 1e-9);

        let b = DenseVector::from_vec(vec![5.0, -2.0, 9.0]);
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_inverse_is_inverse() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(2)).unwrap() < 1e-10);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn eigen_recovers_known_values() {
        // Diagonal matrix: eigenvalues are the diagonal.
        let a = DenseMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.values()[0] - 3.0).abs() < 1e-10);
        assert!((eig.values()[1] - 2.0).abs() < 1e-10);
        assert!((eig.values()[2] - 1.0).abs() < 1e-10);
        assert!((eig.condition_number() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstruction() {
        let a = spd_matrix();
        let eig = SymmetricEigen::new(&a).unwrap();
        // Reconstruct V diag(λ) Vᵀ.
        let n = 3;
        let mut recon = DenseMatrix::zeros(n, n);
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    recon.add_to(
                        i,
                        j,
                        eig.values()[k] * eig.vectors().get(i, k) * eig.vectors().get(j, k),
                    );
                }
            }
        }
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn pseudo_inverse_inverts_full_rank() {
        let a = spd_matrix();
        let (pinv, cond) = symmetric_pseudo_inverse(&a).unwrap();
        let prod = a.matmul(&pinv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)).unwrap() < 1e-8);
        assert!(cond.is_finite());
        assert!(cond >= 1.0);
    }

    #[test]
    fn pseudo_inverse_handles_rank_deficiency() {
        // Rank-1 matrix v vᵀ with v = [1, 2].
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.condition_number(), f64::INFINITY);
        let pinv = eig.pseudo_inverse(1e-10);
        // A A⁺ A = A is the defining Moore–Penrose property.
        let prod = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        assert!(prod.max_abs_diff(&a).unwrap() < 1e-8);
    }

    #[test]
    fn eigen_rejects_bad_shapes() {
        assert!(SymmetricEigen::new(&DenseMatrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&DenseMatrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn eigen_handles_one_by_one_and_zero_matrix() {
        let a = DenseMatrix::from_rows(&[vec![-7.5]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.values(), &[-7.5]);
        assert!((eig.vectors().get(0, 0).abs() - 1.0).abs() < 1e-15);

        let zero = DenseMatrix::zeros(4, 4);
        let eig = SymmetricEigen::new(&zero).unwrap();
        assert!(eig.values().iter().all(|&v| v == 0.0));
        assert_eq!(eig.condition_number(), f64::INFINITY);
    }

    /// Deterministic pseudo-random symmetric matrix (no RNG dependency).
    fn pseudo_random_symmetric(n: usize, seed: u64) -> DenseMatrix {
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next() * 4.0;
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        a
    }

    #[test]
    fn eigen_reconstructs_random_matrices_with_orthonormal_vectors() {
        for (n, seed) in [(2, 1u64), (5, 2), (11, 3), (24, 4)] {
            let a = pseudo_random_symmetric(n, seed);
            let eig = SymmetricEigen::new(&a).unwrap();
            // Descending order.
            for w in eig.values().windows(2) {
                assert!(w[0] >= w[1], "values out of order for n={n}");
            }
            // V diag(λ) Vᵀ ≈ A and VᵀV ≈ I.
            let v = eig.vectors();
            let mut recon = DenseMatrix::zeros(n, n);
            let mut gram = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let mut r = 0.0;
                    let mut g = 0.0;
                    for k in 0..n {
                        r += eig.values()[k] * v.get(i, k) * v.get(j, k);
                        g += v.get(k, i) * v.get(k, j);
                    }
                    recon.set(i, j, r);
                    gram.set(i, j, g);
                }
            }
            assert!(
                recon.max_abs_diff(&a).unwrap() < 1e-9,
                "reconstruction failed for n={n}"
            );
            assert!(
                gram.max_abs_diff(&DenseMatrix::identity(n)).unwrap() < 1e-10,
                "eigenvectors not orthonormal for n={n}"
            );
        }
    }

    /// The workspace is an allocation cache, never a state carrier: reusing
    /// one across different matrices gives bit-identical results to fresh
    /// workspaces.
    #[test]
    fn workspace_reuse_is_bit_identical() {
        let mut shared = EigenWorkspace::new();
        for (n, seed) in [(6, 9u64), (3, 10), (13, 11), (1, 12), (13, 13)] {
            let a = pseudo_random_symmetric(n, seed);
            let fresh = SymmetricEigen::new(&a).unwrap();
            let reused = SymmetricEigen::new_with(&a, &mut shared).unwrap();
            assert_eq!(fresh.values(), reused.values());
            assert_eq!(
                fresh.vectors().as_slice(),
                reused.vectors().as_slice(),
                "vectors differ for n={n}"
            );
            let ftol = fresh.pseudo_inverse(1e-10);
            let rtol = reused.pseudo_inverse(1e-10);
            assert_eq!(ftol.as_slice(), rtol.as_slice());
        }
    }

    /// Generates a random symmetric positive-definite matrix (diagonally
    /// dominant shift of [`pseudo_random_symmetric`]).
    fn pseudo_random_spd(n: usize, seed: u64) -> DenseMatrix {
        let mut a = pseudo_random_symmetric(n, seed);
        for i in 0..n {
            a.add_to(i, i, 8.0 * n as f64);
        }
        a
    }

    #[test]
    fn eigenvalues_only_path_is_bit_identical_to_full_decomposition() {
        let mut ws = EigenWorkspace::new();
        for (n, seed) in [(1usize, 3u64), (2, 4), (7, 5), (13, 6), (24, 7)] {
            let a = pseudo_random_symmetric(n, seed);
            let full = SymmetricEigen::new(&a).unwrap();
            let values = SymmetricEigen::eigenvalues_with(&a, &mut ws).unwrap();
            let full_bits: Vec<u64> = full.values().iter().map(|v| v.to_bits()).collect();
            let only_bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(full_bits, only_bits, "eigenvalues diverged for n={n}");
        }
    }

    #[test]
    fn cholesky_inverse_inverts() {
        for (n, seed) in [(1usize, 21u64), (4, 22), (11, 23)] {
            let a = pseudo_random_spd(n, seed);
            let inv = Cholesky::new(&a).unwrap().inverse();
            let product = a.matmul(&inv).unwrap();
            for i in 0..n {
                for j in 0..n {
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (product.get(i, j) - expected).abs() < 1e-9,
                        "(A·A⁻¹)[{i}][{j}] = {} for n={n}",
                        product.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn symmetric_inverse_fast_path_matches_pseudo_inverse() {
        let mut ws = EigenWorkspace::new();
        for (n, seed) in [(2usize, 31u64), (6, 32), (15, 33)] {
            let a = pseudo_random_spd(n, seed);
            let eig = SymmetricEigen::new(&a).unwrap();
            let reference = eig.pseudo_inverse(1e-10);
            let (inv, condition) = symmetric_inverse_with(&a, 1e-10, &mut ws).unwrap();
            assert_eq!(condition.to_bits(), eig.condition_number().to_bits());
            assert!(inv.max_abs_diff(&reference).unwrap() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn symmetric_inverse_falls_back_to_pseudo_inverse_when_singular() {
        // Rank-1: x xᵀ for x = (1, 2, 3) — singular, so the Cholesky fast
        // path must not fire and the result must equal the eigen
        // pseudo-inverse bit for bit.
        let x = [1.0, 2.0, 3.0];
        let mut a = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a.set(i, j, x[i] * x[j]);
            }
        }
        let eig = SymmetricEigen::new(&a).unwrap();
        let reference = eig.pseudo_inverse(1e-10);
        let (inv, condition) =
            symmetric_inverse_with(&a, 1e-10, &mut EigenWorkspace::new()).unwrap();
        assert!(condition.is_infinite());
        assert_eq!(inv.as_slice(), reference.as_slice());
    }

    #[test]
    fn symmetric_solve_matches_direct_solution_and_handles_singular() {
        let a = pseudo_random_spd(5, 77);
        let b = DenseVector::from_vec(vec![1.0, -2.0, 0.5, 3.0, -1.0]);
        let x = symmetric_solve(&a, &b, 1e-12).unwrap();
        let residual = a.matvec(&x).unwrap();
        for i in 0..5 {
            assert!((residual[i] - b[i]).abs() < 1e-8);
        }

        // Singular system: must take the pseudo-inverse path, not error.
        let mut s = DenseMatrix::zeros(2, 2);
        s.set(0, 0, 1.0);
        let sb = DenseVector::from_vec(vec![2.0, 0.0]);
        let sx = symmetric_solve(&s, &sb, 1e-12).unwrap();
        assert!((sx[0] - 2.0).abs() < 1e-12);
        assert!(sx[1].abs() < 1e-12);
    }
}
