//! Matrix decompositions and solvers.
//!
//! The MADlib linear-regression final function (paper Listing 2) computes the
//! Moore–Penrose pseudo-inverse of the symmetric positive semi-definite matrix
//! `XᵀX` via an eigendecomposition, and reports the condition number.  This
//! module provides the equivalent building blocks: Cholesky and LU
//! factorizations for well-conditioned systems, and a cyclic Jacobi symmetric
//! eigendecomposition for the pseudo-inverse / condition-number path.

use crate::dense::{DenseMatrix, DenseVector};
use crate::error::{LinalgError, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DenseMatrix,
}

impl Cholesky {
    /// Computes the factorization.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { minor: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &DenseVector) -> Result<DenseVector> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            #[allow(clippy::needless_range_loop)] // triangular access below the diagonal
            for k in 0..i {
                sum -= self.l.get(i, k) * y[k];
            }
            y[i] = sum / self.l.get(i, i);
        }
        // Back substitution Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            #[allow(clippy::needless_range_loop)] // triangular access above the diagonal
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(DenseVector::from_vec(x))
    }

    /// Reconstructs `A = L Lᵀ` (mainly for testing).
    pub fn reconstruct(&self) -> DenseMatrix {
        let lt = self.l.transpose();
        self.l.matmul(&lt).expect("shapes agree by construction")
    }
}

/// LU factorization with partial pivoting, `P A = L U`.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DenseMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Computes the factorization.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Find pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular { pivot: pivot_val });
            }
            if pivot_row != col {
                for c in 0..n {
                    let a = lu.get(col, c);
                    let b = lu.get(pivot_row, c);
                    lu.set(col, c, b);
                    lu.set(pivot_row, c, a);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / pivot;
                lu.set(r, col, factor);
                for c in (col + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &DenseVector) -> Result<DenseVector> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation.
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = b[self.perm[i]];
        }
        // Forward substitution (unit lower triangular).
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.lu.get(i, k) * y[k];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu.get(i, k) * y[k];
            }
            y[i] /= self.lu.get(i, i);
        }
        Ok(DenseVector::from_vec(y))
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.lu.rows() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    /// Propagates solver errors (cannot normally fail once factorized).
    pub fn inverse(&self) -> Result<DenseMatrix> {
        let n = self.lu.rows();
        let mut inv = DenseMatrix::zeros(n, n);
        for c in 0..n {
            let mut e = DenseVector::zeros(n);
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv.set(r, c, col[r]);
            }
        }
        Ok(inv)
    }
}

/// Symmetric eigendecomposition computed with the cyclic Jacobi method.
///
/// Eigenvalues are returned in descending order with matching eigenvectors as
/// columns of [`SymmetricEigen::vectors`].
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    vectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Maximum number of Jacobi sweeps before giving up.
    const MAX_SWEEPS: usize = 100;

    /// Computes the decomposition of a symmetric matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::DidNotConverge`] if the Jacobi sweeps do not converge.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::EmptyInput {
                operation: "symmetric eigendecomposition",
            });
        }
        // Work on a symmetrized copy.
        let mut m = a.clone();
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, m.get(j, i));
            }
        }
        let mut v = DenseMatrix::identity(n);

        for _sweep in 0..Self::MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m.get(i, j) * m.get(i, j);
                }
            }
            if off.sqrt() < 1e-14 * (1.0 + m.frobenius_norm()) {
                return Ok(Self::finish(m, v));
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m.get(p, p);
                    let aqq = m.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    // Apply rotation to m (both sides).
                    for k in 0..n {
                        let mkp = m.get(k, p);
                        let mkq = m.get(k, q);
                        m.set(k, p, c * mkp - s * mkq);
                        m.set(k, q, s * mkp + c * mkq);
                    }
                    for k in 0..n {
                        let mpk = m.get(p, k);
                        let mqk = m.get(q, k);
                        m.set(p, k, c * mpk - s * mqk);
                        m.set(q, k, s * mpk + c * mqk);
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        Err(LinalgError::DidNotConverge {
            iterations: Self::MAX_SWEEPS,
        })
    }

    fn finish(m: DenseMatrix, v: DenseMatrix) -> Self {
        let n = m.rows();
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let values: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
        let mut vectors = DenseMatrix::zeros(n, n);
        for (new_col, (_, old_col)) in pairs.iter().enumerate() {
            for r in 0..n {
                vectors.set(r, new_col, v.get(r, *old_col));
            }
        }
        Self { values, vectors }
    }

    /// Eigenvalues in descending order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Eigenvectors as matrix columns (column `i` pairs with `values()[i]`).
    pub fn vectors(&self) -> &DenseMatrix {
        &self.vectors
    }

    /// Condition number: ratio of largest to smallest *absolute* eigenvalue.
    ///
    /// Returns `f64::INFINITY` when the smallest eigenvalue is (numerically)
    /// zero, matching the semantics MADlib reports in the `condition_no`
    /// output column.
    pub fn condition_number(&self) -> f64 {
        let max = self.values.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
        let min = self
            .values
            .iter()
            .map(|v| v.abs())
            .fold(f64::INFINITY, f64::min);
        if min < 1e-300 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Moore–Penrose pseudo-inverse built from the decomposition.
    ///
    /// Eigenvalues whose magnitude is below `tolerance * max|λ|` are treated
    /// as zero (their reciprocal contribution is dropped), which is how the
    /// paper's `SymmetricPositiveDefiniteEigenDecomposition` handles the
    /// rank-deficient case.
    pub fn pseudo_inverse(&self, tolerance: f64) -> DenseMatrix {
        let n = self.values.len();
        let max_abs = self.values.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
        let cutoff = tolerance * max_abs.max(1e-300);
        let mut out = DenseMatrix::zeros(n, n);
        for k in 0..n {
            let lambda = self.values[k];
            if lambda.abs() <= cutoff {
                continue;
            }
            let inv_lambda = 1.0 / lambda;
            for i in 0..n {
                let vik = self.vectors.get(i, k);
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.add_to(i, j, inv_lambda * vik * self.vectors.get(j, k));
                }
            }
        }
        out
    }
}

/// Convenience: pseudo-inverse of a symmetric matrix with the default
/// tolerance of `1e-10`, plus its condition number.
///
/// This is the exact operation the MADlib linear-regression final function
/// performs on `XᵀX`.
///
/// # Errors
/// Propagates eigendecomposition errors.
pub fn symmetric_pseudo_inverse(a: &DenseMatrix) -> Result<(DenseMatrix, f64)> {
    let eig = SymmetricEigen::new(a)?;
    Ok((eig.pseudo_inverse(1e-10), eig.condition_number()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.5],
            vec![0.6, 1.5, 3.0],
        ])
        .unwrap()
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd_matrix();
        let chol = Cholesky::new(&a).unwrap();
        assert!(chol.reconstruct().max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn cholesky_solve_matches_direct() {
        let a = spd_matrix();
        let b = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(Cholesky::new(&rect).is_err());
    }

    #[test]
    fn lu_solve_and_determinant() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
        .unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() - (-16.0)).abs() < 1e-9);

        let b = DenseVector::from_vec(vec![5.0, -2.0, 9.0]);
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_inverse_is_inverse() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(2)).unwrap() < 1e-10);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn eigen_recovers_known_values() {
        // Diagonal matrix: eigenvalues are the diagonal.
        let a = DenseMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.values()[0] - 3.0).abs() < 1e-10);
        assert!((eig.values()[1] - 2.0).abs() < 1e-10);
        assert!((eig.values()[2] - 1.0).abs() < 1e-10);
        assert!((eig.condition_number() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstruction() {
        let a = spd_matrix();
        let eig = SymmetricEigen::new(&a).unwrap();
        // Reconstruct V diag(λ) Vᵀ.
        let n = 3;
        let mut recon = DenseMatrix::zeros(n, n);
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    recon.add_to(
                        i,
                        j,
                        eig.values()[k] * eig.vectors().get(i, k) * eig.vectors().get(j, k),
                    );
                }
            }
        }
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn pseudo_inverse_inverts_full_rank() {
        let a = spd_matrix();
        let (pinv, cond) = symmetric_pseudo_inverse(&a).unwrap();
        let prod = a.matmul(&pinv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)).unwrap() < 1e-8);
        assert!(cond.is_finite());
        assert!(cond >= 1.0);
    }

    #[test]
    fn pseudo_inverse_handles_rank_deficiency() {
        // Rank-1 matrix v vᵀ with v = [1, 2].
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.condition_number(), f64::INFINITY);
        let pinv = eig.pseudo_inverse(1e-10);
        // A A⁺ A = A is the defining Moore–Penrose property.
        let prod = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        assert!(prod.max_abs_diff(&a).unwrap() < 1e-8);
    }

    #[test]
    fn eigen_rejects_bad_shapes() {
        assert!(SymmetricEigen::new(&DenseMatrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&DenseMatrix::zeros(0, 0)).is_err());
    }
}
