//! Inner-loop kernels in three "generations".
//!
//! Section 4.4 of the paper compares three generations of the MADlib linear
//! regression inner loop:
//!
//! * **v0.1alpha** — a straightforward C implementation computing the outer
//!   product `x xᵀ` with a simple nested loop over the *full* matrix.
//! * **v0.2.1beta** — an Armadillo/BLAS-backed implementation that was *much
//!   slower* because (a) the BLAS was the untuned reference implementation and
//!   (b) the code computed `yᵀy` for a **row** vector `y`, an orientation that
//!   profiling showed to be 3–4× slower than `x xᵀ` for a column vector, plus
//!   abstraction-layer overhead (locking, backend calls).
//! * **v0.3** — an Eigen-backed implementation exploiting the symmetry of
//!   `XᵀX` (only the lower triangle is accumulated) with minimal overhead.
//!
//! To reproduce the Figure 4 / Figure 5 version comparison without Armadillo
//! or Eigen we provide three rank-1 update kernels with the same asymmetric
//! performance profile: a plain full-matrix update, a deliberately
//! cache-unfriendly column-striding update with emulated per-call overhead,
//! and a triangular (symmetric) update that does roughly half the flops.

use crate::dense::DenseMatrix;

/// Which generation of the inner-loop kernel to use.
///
/// The enum names follow the MADlib version numbers used in the paper's
/// Figure 4 so that benchmark output lines up with the original table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelGeneration {
    /// v0.1alpha: naive nested-loop outer product over the full matrix.
    V01Alpha,
    /// v0.2.1beta: untuned, wrong-orientation update with per-call overhead.
    V021Beta,
    /// v0.3: symmetric triangular update (default; fastest).
    V03,
}

impl KernelGeneration {
    /// All generations, in paper order.
    pub const ALL: [KernelGeneration; 3] = [
        KernelGeneration::V01Alpha,
        KernelGeneration::V021Beta,
        KernelGeneration::V03,
    ];

    /// The label used in the paper's Figure 4 column headers.
    pub fn label(self) -> &'static str {
        match self {
            KernelGeneration::V01Alpha => "v0.1alpha",
            KernelGeneration::V021Beta => "v0.2.1beta",
            KernelGeneration::V03 => "v0.3",
        }
    }
}

impl Default for KernelGeneration {
    fn default() -> Self {
        KernelGeneration::V03
    }
}

/// Accumulates the rank-1 update `m += x xᵀ` using the selected generation.
///
/// For [`KernelGeneration::V03`] only the lower triangle is updated; callers
/// must invoke [`DenseMatrix::symmetrize_from_lower`] before using the full
/// matrix (mirroring the paper's Listing 1/2 split between the transition and
/// final functions).
///
/// # Panics
/// Panics in debug builds if `m` is not `x.len() × x.len()`.
pub fn rank1_update(generation: KernelGeneration, m: &mut DenseMatrix, x: &[f64]) {
    debug_assert_eq!(m.rows(), x.len());
    debug_assert_eq!(m.cols(), x.len());
    match generation {
        KernelGeneration::V01Alpha => rank1_full(m, x),
        KernelGeneration::V021Beta => rank1_column_strided(m, x),
        KernelGeneration::V03 => rank1_lower_triangular(m, x),
    }
}

/// Whether the generation accumulates only the lower triangle (and therefore
/// needs a final symmetrization step).
pub fn needs_symmetrize(generation: KernelGeneration) -> bool {
    matches!(generation, KernelGeneration::V03)
}

/// v0.1alpha kernel: full-matrix nested loop.
fn rank1_full(m: &mut DenseMatrix, x: &[f64]) {
    let k = x.len();
    for i in 0..k {
        let xi = x[i];
        let row = m.row_slice_mut(i);
        for j in 0..k {
            row[j] += xi * x[j];
        }
    }
}

/// v0.2.1beta kernel: iterates in column-major order over a row-major matrix
/// (the "row-vector `yᵀy`" orientation the paper found 3–4× slower) and
/// performs redundant temporary work emulating untuned-BLAS + abstraction
/// overhead observed in that release.
fn rank1_column_strided(m: &mut DenseMatrix, x: &[f64]) {
    let k = x.len();
    // Emulated marshalling overhead: the v0.2.1beta abstraction layer copied
    // the input array into a library-owned temporary on every call.
    let copy: Vec<f64> = x.to_vec();
    for j in 0..k {
        let xj = copy[j];
        for i in 0..k {
            // Column-major traversal of row-major storage: strided access.
            let v = m.get(i, j) + copy[i] * xj;
            m.set(i, j, v);
        }
    }
}

/// v0.3 kernel: lower-triangular update (half the flops), contiguous access.
fn rank1_lower_triangular(m: &mut DenseMatrix, x: &[f64]) {
    let k = x.len();
    for i in 0..k {
        let xi = x[i];
        let row = m.row_slice_mut(i);
        for j in 0..=i {
            row[j] += xi * x[j];
        }
    }
}

/// General matrix–matrix multiply `C = A * B` as free function (wrapper around
/// [`DenseMatrix::matmul`]) kept here so benchmarks can address "the gemm
/// kernel" uniformly.
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> crate::Result<DenseMatrix> {
    a.matmul(b)
}

/// Accumulates `y += alpha * A * x` (dense GEMV) without allocating.
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn gemv_acc(alpha: f64, a: &DenseMatrix, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.cols(), x.len());
    debug_assert_eq!(a.rows(), y.len());
    for (r, yr) in y.iter_mut().enumerate() {
        let row = a.row_slice(r);
        let mut acc = 0.0;
        for (av, xv) in row.iter().zip(x) {
            acc += av * xv;
        }
        *yr += alpha * acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_outer(x: &[f64]) -> DenseMatrix {
        let k = x.len();
        let mut m = DenseMatrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                m.set(i, j, x[i] * x[j]);
            }
        }
        m
    }

    #[test]
    fn generations_agree_after_symmetrization() {
        let x = vec![1.0, -2.0, 3.5, 0.25];
        let expected = dense_outer(&x);

        for gen in KernelGeneration::ALL {
            let mut m = DenseMatrix::zeros(4, 4);
            rank1_update(gen, &mut m, &x);
            if needs_symmetrize(gen) {
                m.symmetrize_from_lower().unwrap();
            }
            assert!(
                m.max_abs_diff(&expected).unwrap() < 1e-12,
                "generation {:?} disagrees",
                gen
            );
        }
    }

    #[test]
    fn repeated_updates_accumulate() {
        let rows = [vec![1.0, 2.0], vec![3.0, 4.0], vec![-1.0, 0.5]];
        let mut expected = DenseMatrix::zeros(2, 2);
        for r in &rows {
            expected.add_assign(&dense_outer(r)).unwrap();
        }
        let mut m = DenseMatrix::zeros(2, 2);
        for r in &rows {
            rank1_update(KernelGeneration::V03, &mut m, r);
        }
        m.symmetrize_from_lower().unwrap();
        assert!(m.max_abs_diff(&expected).unwrap() < 1e-12);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(KernelGeneration::V01Alpha.label(), "v0.1alpha");
        assert_eq!(KernelGeneration::V021Beta.label(), "v0.2.1beta");
        assert_eq!(KernelGeneration::V03.label(), "v0.3");
        assert_eq!(KernelGeneration::default(), KernelGeneration::V03);
    }

    #[test]
    fn gemv_acc_matches_matvec() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = [1.0, -1.0];
        let mut y = vec![10.0, 20.0];
        gemv_acc(2.0, &a, &x, &mut y);
        assert_eq!(y, vec![10.0 + 2.0 * (-1.0), 20.0 + 2.0 * (-1.0)]);
    }

    #[test]
    fn gemm_delegates_to_matmul() {
        let a = DenseMatrix::identity(3);
        let b = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        assert_eq!(gemm(&a, &b).unwrap(), b);
    }
}
