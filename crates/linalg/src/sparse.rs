//! Run-length-encoded sparse vectors.
//!
//! The paper (Section 3.2) notes that sparse matrices are "not as well-handled
//! by standard math libraries" and that MADlib therefore implements its own
//! sparse-vector library in C using a run-length encoding scheme.  This module
//! is the Rust equivalent: a vector is stored as a sequence of `(value, run
//! length)` pairs, which compresses the long runs of identical values (most
//! commonly zeros) that appear in text / feature-vector workloads.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// A run-length-encoded sparse vector of `f64`.
///
/// Consecutive equal values are stored once together with their repetition
/// count, so a vector like `[0,0,0,0,5,5,0,0]` takes three runs instead of
/// eight elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    /// (value, run-length) pairs; run lengths are always ≥ 1.
    runs: Vec<(f64, usize)>,
    /// Total logical length.
    len: usize,
}

impl SparseVector {
    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        Self {
            runs: Vec::new(),
            len: 0,
        }
    }

    /// Creates a sparse vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        if len == 0 {
            return Self::new();
        }
        Self {
            runs: vec![(0.0, len)],
            len,
        }
    }

    /// Builds a sparse vector by run-length encoding a dense slice.
    ///
    /// Values are compared bit-exactly (`f64::to_bits`) so that `0.0` and
    /// `-0.0` do not merge and NaN payloads are preserved.
    pub fn from_dense(values: &[f64]) -> Self {
        let mut runs: Vec<(f64, usize)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((last, count)) if last.to_bits() == v.to_bits() => *count += 1,
                _ => runs.push((v, 1)),
            }
        }
        Self {
            runs,
            len: values.len(),
        }
    }

    /// Builds a sparse vector from (index, value) pairs over a vector of
    /// `len` zeros.  Indices must be strictly increasing.
    ///
    /// # Errors
    /// * [`LinalgError::IndexOutOfBounds`] for an index ≥ `len` or a
    ///   non-increasing index sequence.
    pub fn from_indices(len: usize, entries: &[(usize, f64)]) -> Result<Self> {
        let mut dense = vec![0.0; len];
        let mut prev: Option<usize> = None;
        for &(i, v) in entries {
            if i >= len {
                return Err(LinalgError::IndexOutOfBounds { index: i, len });
            }
            if let Some(p) = prev {
                if i <= p {
                    return Err(LinalgError::IndexOutOfBounds { index: i, len: p });
                }
            }
            dense[i] = v;
            prev = Some(i);
        }
        Ok(Self::from_dense(&dense))
    }

    /// Logical length of the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored runs (the compressed size).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of logically non-zero elements.
    pub fn nnz(&self) -> usize {
        self.runs
            .iter()
            .filter(|(v, _)| *v != 0.0)
            .map(|(_, c)| c)
            .sum()
    }

    /// Element access by logical index.
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfBounds`] for `index >= len`.
    pub fn get(&self, index: usize) -> Result<f64> {
        if index >= self.len {
            return Err(LinalgError::IndexOutOfBounds {
                index,
                len: self.len,
            });
        }
        let mut offset = 0;
        for &(v, count) in &self.runs {
            if index < offset + count {
                return Ok(v);
            }
            offset += count;
        }
        unreachable!("run lengths always sum to len")
    }

    /// Decompresses into a dense `Vec<f64>`.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for &(v, count) in &self.runs {
            out.extend(std::iter::repeat_n(v, count));
        }
        out
    }

    /// Appends a run of `count` copies of `value`, merging with the previous
    /// run when the values are bit-identical.
    pub fn push_run(&mut self, value: f64, count: usize) {
        if count == 0 {
            return;
        }
        match self.runs.last_mut() {
            Some((last, c)) if last.to_bits() == value.to_bits() => *c += count,
            _ => self.runs.push((value, count)),
        }
        self.len += count;
    }

    /// Dot product with another sparse vector of the same length.
    ///
    /// Runs over both encodings simultaneously, so the cost is
    /// `O(runs(self) + runs(other))` rather than `O(len)`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn dot(&self, other: &SparseVector) -> Result<f64> {
        if self.len != other.len {
            return Err(LinalgError::DimensionMismatch {
                operation: "sparse dot",
                left: (self.len, 1),
                right: (other.len, 1),
            });
        }
        let mut sum = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        let (mut ri, mut rj) = (0usize, 0usize); // consumed within current runs
        while i < self.runs.len() && j < other.runs.len() {
            let (va, ca) = self.runs[i];
            let (vb, cb) = other.runs[j];
            let avail_a = ca - ri;
            let avail_b = cb - rj;
            let step = avail_a.min(avail_b);
            if va != 0.0 && vb != 0.0 {
                sum += va * vb * step as f64;
            }
            ri += step;
            rj += step;
            if ri == ca {
                i += 1;
                ri = 0;
            }
            if rj == cb {
                j += 1;
                rj = 0;
            }
        }
        Ok(sum)
    }

    /// Dot product against a dense slice of the same length.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn dot_dense(&self, dense: &[f64]) -> Result<f64> {
        if self.len != dense.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "sparse-dense dot",
                left: (self.len, 1),
                right: (dense.len(), 1),
            });
        }
        let mut sum = 0.0;
        let mut offset = 0;
        for &(v, count) in &self.runs {
            if v != 0.0 {
                for d in &dense[offset..offset + count] {
                    sum += v * d;
                }
            }
            offset += count;
        }
        Ok(sum)
    }

    /// Element-wise sum with another sparse vector, producing a new vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn add(&self, other: &SparseVector) -> Result<SparseVector> {
        if self.len != other.len {
            return Err(LinalgError::DimensionMismatch {
                operation: "sparse add",
                left: (self.len, 1),
                right: (other.len, 1),
            });
        }
        let mut out = SparseVector::new();
        let (mut i, mut j) = (0usize, 0usize);
        let (mut ri, mut rj) = (0usize, 0usize);
        while i < self.runs.len() && j < other.runs.len() {
            let (va, ca) = self.runs[i];
            let (vb, cb) = other.runs[j];
            let step = (ca - ri).min(cb - rj);
            out.push_run(va + vb, step);
            ri += step;
            rj += step;
            if ri == ca {
                i += 1;
                ri = 0;
            }
            if rj == cb {
                j += 1;
                rj = 0;
            }
        }
        Ok(out)
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.runs
            .iter()
            .map(|(v, c)| v * v * *c as f64)
            .sum::<f64>()
            .sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.runs.iter().map(|(v, c)| v * *c as f64).sum()
    }

    /// Compression ratio: logical length divided by stored runs (≥ 1).
    pub fn compression_ratio(&self) -> f64 {
        if self.runs.is_empty() {
            1.0
        } else {
            self.len as f64 / self.runs.len() as f64
        }
    }
}

impl Default for SparseVector {
    fn default() -> Self {
        Self::new()
    }
}

impl From<&[f64]> for SparseVector {
    fn from(values: &[f64]) -> Self {
        Self::from_dense(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_dense() {
        let dense = vec![0.0, 0.0, 5.0, 5.0, 5.0, 0.0, 1.0, 0.0, 0.0];
        let sv = SparseVector::from_dense(&dense);
        assert_eq!(sv.len(), dense.len());
        assert_eq!(sv.to_dense(), dense);
        assert_eq!(sv.run_count(), 5);
        assert_eq!(sv.nnz(), 4);
    }

    #[test]
    fn get_by_index() {
        let sv = SparseVector::from_dense(&[1.0, 1.0, 0.0, 3.0]);
        assert_eq!(sv.get(0).unwrap(), 1.0);
        assert_eq!(sv.get(2).unwrap(), 0.0);
        assert_eq!(sv.get(3).unwrap(), 3.0);
        assert!(sv.get(4).is_err());
    }

    #[test]
    fn from_indices_builds_expected_vector() {
        let sv = SparseVector::from_indices(6, &[(1, 2.0), (4, -1.0)]).unwrap();
        assert_eq!(sv.to_dense(), vec![0.0, 2.0, 0.0, 0.0, -1.0, 0.0]);
        assert!(SparseVector::from_indices(3, &[(5, 1.0)]).is_err());
        assert!(SparseVector::from_indices(5, &[(2, 1.0), (1, 1.0)]).is_err());
    }

    #[test]
    fn sparse_dot_matches_dense_dot() {
        let a_dense = vec![0.0, 0.0, 2.0, 2.0, 0.0, 3.0];
        let b_dense = vec![1.0, 0.0, 4.0, 0.0, 0.0, 2.0];
        let a = SparseVector::from_dense(&a_dense);
        let b = SparseVector::from_dense(&b_dense);
        let expected: f64 = a_dense.iter().zip(&b_dense).map(|(x, y)| x * y).sum();
        assert!((a.dot(&b).unwrap() - expected).abs() < 1e-12);
        assert!((a.dot_dense(&b_dense).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn sparse_add_matches_dense_add() {
        let a_dense = vec![0.0, 1.0, 1.0, 0.0];
        let b_dense = vec![2.0, 2.0, 0.0, 0.0];
        let a = SparseVector::from_dense(&a_dense);
        let b = SparseVector::from_dense(&b_dense);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.to_dense(), vec![2.0, 3.0, 1.0, 0.0]);
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = SparseVector::zeros(3);
        let b = SparseVector::zeros(4);
        assert!(a.dot(&b).is_err());
        assert!(a.add(&b).is_err());
        assert!(a.dot_dense(&[0.0; 4]).is_err());
    }

    #[test]
    fn push_run_merges_adjacent() {
        let mut sv = SparseVector::new();
        sv.push_run(0.0, 3);
        sv.push_run(0.0, 2);
        sv.push_run(1.0, 1);
        sv.push_run(1.0, 0); // no-op
        assert_eq!(sv.run_count(), 2);
        assert_eq!(sv.len(), 6);
        assert_eq!(sv.to_dense(), vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn norms_and_sums() {
        let sv = SparseVector::from_dense(&[3.0, 0.0, 4.0]);
        assert!((sv.norm() - 5.0).abs() < 1e-12);
        assert_eq!(sv.sum(), 7.0);
        assert!(sv.compression_ratio() >= 1.0);
        assert_eq!(SparseVector::new().compression_ratio(), 1.0);
    }

    #[test]
    fn zeros_is_one_run() {
        let sv = SparseVector::zeros(1000);
        assert_eq!(sv.run_count(), 1);
        assert_eq!(sv.nnz(), 0);
        assert_eq!(sv.len(), 1000);
        assert_eq!(SparseVector::zeros(0).len(), 0);
    }
}
