//! Inner-loop kernels: paper "generations" plus tiered batched kernels.
//!
//! # Paper generations
//!
//! Section 4.4 of the paper compares three generations of the MADlib linear
//! regression inner loop:
//!
//! * **v0.1alpha** — a straightforward C implementation computing the outer
//!   product `x xᵀ` with a simple nested loop over the *full* matrix.
//! * **v0.2.1beta** — an Armadillo/BLAS-backed implementation that was *much
//!   slower* because (a) the BLAS was the untuned reference implementation and
//!   (b) the code computed `yᵀy` for a **row** vector `y`, an orientation that
//!   profiling showed to be 3–4× slower than `x xᵀ` for a column vector, plus
//!   abstraction-layer overhead (locking, backend calls).
//! * **v0.3** — an Eigen-backed implementation exploiting the symmetry of
//!   `XᵀX` (only the lower triangle is accumulated) with minimal overhead.
//!
//! To reproduce the Figure 4 / Figure 5 version comparison without Armadillo
//! or Eigen we provide three rank-1 update kernels with the same asymmetric
//! performance profile: a plain full-matrix update, a deliberately
//! cache-unfriendly column-striding update with emulated per-call overhead,
//! and a triangular (symmetric) update that does roughly half the flops.
//!
//! # Batched kernels and dispatch tiers
//!
//! The engine's vectorized execution path hands transition functions a whole
//! chunk of rows as one contiguous row-major block (`rows × width` values);
//! the batched kernels here are the chunk-granularity counterparts of the
//! per-row updates.  Each batched kernel exists in three implementations:
//!
//! * [`scalar`] — the reference: sequential loops, autovectorizer only.
//! * [`unrolled`] — portable, manually 4-way-unrolled lane arrays.
//! * [`simd`] — explicit AVX2 intrinsics (x86-64, runtime-detected).
//!
//! The public functions dispatch through [`dispatch::active_path`], which
//! resolves once per process from runtime CPU detection and the
//! `MADLIB_SIMD` escape hatch (`off` forces the portable tier, `scalar` the
//! reference tier — see [`dispatch`]).
//!
//! # The accumulation-order contract
//!
//! All three tiers are **bit-identical**, to each other and to folding rows
//! one at a time through the per-row kernels.  That is a hard engine-wide
//! contract: the row/chunk-equivalence property tests require
//! `transition_chunk` ≡ per-row `transition` to the bit, and the scheduler
//! relies on results being independent of which path ran.  Two consequences
//! shape every kernel in this module:
//!
//! * **Vectorization runs across independent outputs, never inside a
//!   reduction.**  A dot product's additions form one rounding chain whose
//!   order is observable; splitting it across SIMD lanes would reassociate
//!   it.  So the rank-k update vectorizes across contiguous `j` elements of
//!   `m[i][j]` (each element keeps its own in-order chain), and `batch_dot`
//!   / `batch_squared_distances` / `gemv_acc` / `batch_closest_column` put
//!   one *row* in each SIMD lane, stepping through elements sequentially —
//!   this also sidesteps the serial chain's latency bound, which is why the
//!   reduction kernels gain the most: the autovectorizer was never allowed
//!   to touch them in the first place.
//! * **`mul` + `add`, never `fmadd`.**  FMA skips the intermediate rounding
//!   of `a * b`; using it would diverge from the scalar formulation even
//!   though the hardware supports it (the bench metadata records `fma` as
//!   detected, not as used).
//!
//! Accumulator register tiles are seeded from the output matrix and stored
//! back when the tile retires; an `f64` store/load round-trip is exact, so
//! re-batching the additions this way never changes any element's chain.
//!
//! One carve-out: **NaN payload and sign are outside the contract** (where
//! NaNs appear is still exact).  When an addition has two *distinct* NaN
//! operands — a propagated input NaN (`0x7FF8…`) meeting the indefinite NaN
//! x86 generates for invalid operations (`0xFFF8…`, e.g. from `0 * ∞`) —
//! the hardware returns whichever NaN sits in the first source operand, and
//! LLVM commutes `fadd`/`fmul` operands freely during instruction
//! selection.  The same scalar source loop can yield either payload
//! depending on surrounding codegen, so no tier (including the scalar
//! reference compared against itself across compilations) can promise more.
//! The tier property tests salt with the hardware-generated NaN so every
//! NaN is bit-identical and the remaining guarantee stays exact.

use crate::dense::DenseMatrix;

pub mod dispatch;
pub mod scalar;
pub mod simd;
pub mod unrolled;

pub use dispatch::{active_path, cpu_features, KernelPath};

/// Which generation of the inner-loop kernel to use.
///
/// The enum names follow the MADlib version numbers used in the paper's
/// Figure 4 so that benchmark output lines up with the original table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelGeneration {
    /// v0.1alpha: naive nested-loop outer product over the full matrix.
    V01Alpha,
    /// v0.2.1beta: untuned, wrong-orientation update with per-call overhead.
    V021Beta,
    /// v0.3: symmetric triangular update (default; fastest).
    #[default]
    V03,
}

impl KernelGeneration {
    /// All generations, in paper order.
    pub const ALL: [KernelGeneration; 3] = [
        KernelGeneration::V01Alpha,
        KernelGeneration::V021Beta,
        KernelGeneration::V03,
    ];

    /// The label used in the paper's Figure 4 column headers.
    pub fn label(self) -> &'static str {
        match self {
            KernelGeneration::V01Alpha => "v0.1alpha",
            KernelGeneration::V021Beta => "v0.2.1beta",
            KernelGeneration::V03 => "v0.3",
        }
    }
}

/// Accumulates the rank-1 update `m += x xᵀ` using the selected generation.
///
/// For [`KernelGeneration::V03`] only the lower triangle is updated; callers
/// must invoke [`DenseMatrix::symmetrize_from_lower`] before using the full
/// matrix (mirroring the paper's Listing 1/2 split between the transition and
/// final functions).
///
/// # Panics
/// Panics in debug builds if `m` is not `x.len() × x.len()`.
pub fn rank1_update(generation: KernelGeneration, m: &mut DenseMatrix, x: &[f64]) {
    debug_assert_eq!(m.rows(), x.len());
    debug_assert_eq!(m.cols(), x.len());
    match generation {
        KernelGeneration::V01Alpha => rank1_full(m, x),
        KernelGeneration::V021Beta => rank1_column_strided(m, x),
        KernelGeneration::V03 => rank1_lower_triangular(m, x),
    }
}

/// Whether the generation accumulates only the lower triangle (and therefore
/// needs a final symmetrization step).
pub fn needs_symmetrize(generation: KernelGeneration) -> bool {
    matches!(generation, KernelGeneration::V03)
}

/// v0.1alpha kernel: full-matrix nested loop.
fn rank1_full(m: &mut DenseMatrix, x: &[f64]) {
    let k = x.len();
    for i in 0..k {
        let xi = x[i];
        let row = m.row_slice_mut(i);
        for j in 0..k {
            row[j] += xi * x[j];
        }
    }
}

/// v0.2.1beta kernel: iterates in column-major order over a row-major matrix
/// (the "row-vector `yᵀy`" orientation the paper found 3–4× slower) and
/// performs redundant temporary work emulating untuned-BLAS + abstraction
/// overhead observed in that release.
#[allow(clippy::needless_range_loop)] // the strided, index-heavy shape is the point
fn rank1_column_strided(m: &mut DenseMatrix, x: &[f64]) {
    let k = x.len();
    // Emulated marshalling overhead: the v0.2.1beta abstraction layer copied
    // the input array into a library-owned temporary on every call.
    let copy: Vec<f64> = x.to_vec();
    for j in 0..k {
        let xj = copy[j];
        for i in 0..k {
            // Column-major traversal of row-major storage: strided access.
            let v = m.get(i, j) + copy[i] * xj;
            m.set(i, j, v);
        }
    }
}

/// v0.3 kernel: lower-triangular update (half the flops), contiguous access.
fn rank1_lower_triangular(m: &mut DenseMatrix, x: &[f64]) {
    let k = x.len();
    for i in 0..k {
        let xi = x[i];
        let row = m.row_slice_mut(i);
        for j in 0..=i {
            row[j] += xi * x[j];
        }
    }
}

/// Accumulates `m += Σ_r x_r x_rᵀ` (lower triangle only) over a chunk of rows
/// stored contiguously row-major in `xs` — the chunk-granularity version of
/// the v0.3 rank-1 kernel, dispatched per [`dispatch::active_path`].
///
/// Callers must symmetrize afterwards, exactly as with the per-row v0.3
/// kernel.  Bit-identical to folding the rows through
/// [`rank1_update`]`(V03, ..)` one at a time, on every tier.
///
/// # Panics
/// Panics in debug builds when `xs.len()` is not a multiple of `width` or `m`
/// is not `width × width`.
pub fn rank_k_update_lower(m: &mut DenseMatrix, xs: &[f64], width: usize) {
    match active_path() {
        KernelPath::Scalar => scalar::rank_k_update_lower(m, xs, width),
        KernelPath::Unrolled => unrolled::rank_k_update_lower(m, xs, width),
        KernelPath::Simd => simd::rank_k_update_lower(m, xs, width),
    }
}

/// Accumulates `m += Σ_r w_r · x_r x_rᵀ` (lower triangle only) over a chunk —
/// the weighted rank-k update behind the IRLS Hessian `XᵀDX`, dispatched per
/// [`dispatch::active_path`].  Each contribution is computed as
/// `(w_r · x_r[i]) · x_r[j]`, matching the per-row formulation bit for bit.
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn weighted_rank_k_update_lower(
    m: &mut DenseMatrix,
    xs: &[f64],
    weights: &[f64],
    width: usize,
) {
    match active_path() {
        KernelPath::Scalar => scalar::weighted_rank_k_update_lower(m, xs, weights, width),
        KernelPath::Unrolled => unrolled::weighted_rank_k_update_lower(m, xs, weights, width),
        KernelPath::Simd => simd::weighted_rank_k_update_lower(m, xs, weights, width),
    }
}

/// Accumulates `acc += Σ_r y_r · x_r` over a chunk: the `Xᵀy` update of the
/// regression transition state at chunk granularity, dispatched per
/// [`dispatch::active_path`].
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn xty_update(acc: &mut [f64], xs: &[f64], ys: &[f64], width: usize) {
    match active_path() {
        KernelPath::Scalar => scalar::xty_update(acc, xs, ys, width),
        KernelPath::Unrolled => unrolled::xty_update(acc, xs, ys, width),
        KernelPath::Simd => simd::xty_update(acc, xs, ys, width),
    }
}

/// Computes `out[r] = x_r · w` for every row of a contiguous row-major chunk
/// — the batched linear-score (dot-product) kernel used by logistic and SGD
/// transitions, dispatched per [`dispatch::active_path`].  Each dot product
/// accumulates left-to-right, matching the scalar
/// `iter().zip().map().sum()` formulation bit for bit.
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn batch_dot(xs: &[f64], w: &[f64], out: &mut [f64]) {
    match active_path() {
        KernelPath::Scalar => scalar::batch_dot(xs, w, out),
        KernelPath::Unrolled => unrolled::batch_dot(xs, w, out),
        KernelPath::Simd => simd::batch_dot(xs, w, out),
    }
}

/// Computes the squared Euclidean distance from every row of a contiguous
/// row-major chunk to a single `center` — the batched form of
/// `array_squared_distance`, accumulating element-wise in order, dispatched
/// per [`dispatch::active_path`].
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn batch_squared_distances(xs: &[f64], center: &[f64], out: &mut [f64]) {
    match active_path() {
        KernelPath::Scalar => scalar::batch_squared_distances(xs, center, out),
        KernelPath::Unrolled => unrolled::batch_squared_distances(xs, center, out),
        KernelPath::Simd => simd::batch_squared_distances(xs, center, out),
    }
}

/// Assigns every row of a contiguous row-major chunk to its closest column
/// (first strict minimum of squared Euclidean distance — ties keep the
/// earliest column, NaN distances never win), dispatched per
/// [`dispatch::active_path`].  This is the k-means assignment inner loop;
/// `array_ops::batch_closest_column` validates shapes and delegates here.
///
/// # Panics
/// Panics in debug builds when a column's length differs from `width` or
/// `xs.len() != out.len() * width`.  With an empty `columns` every row is
/// assigned `0`; callers wanting an error must validate first (as
/// `array_ops` does).
pub fn batch_closest_column(columns: &[Vec<f64>], xs: &[f64], width: usize, out: &mut [usize]) {
    match active_path() {
        KernelPath::Scalar => scalar::batch_closest_column(columns, xs, width, out),
        KernelPath::Unrolled => unrolled::batch_closest_column(columns, xs, width, out),
        KernelPath::Simd => simd::batch_closest_column(columns, xs, width, out),
    }
}

/// General matrix–matrix multiply `C = A * B` as a free function (wrapper
/// around [`DenseMatrix::matmul`], which itself runs [`gemm_acc`]) kept here
/// so benchmarks can address "the gemm kernel" uniformly.
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> crate::Result<DenseMatrix> {
    a.matmul(b)
}

/// Accumulates `out += A * B` (dense GEMM) without allocating, dispatched per
/// [`dispatch::active_path`].  Every tier preserves the historical
/// `DenseMatrix::matmul` semantics: per output element the `k` contributions
/// are added in ascending order, and `a[i][k] == 0.0` entries are *skipped*
/// rather than multiplied through (observable with NaN/±∞ in `B` and with
/// signed zeros).
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn gemm_acc(out: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
    match active_path() {
        KernelPath::Scalar => scalar::gemm_acc(out, a, b),
        KernelPath::Unrolled => unrolled::gemm_acc(out, a, b),
        KernelPath::Simd => simd::gemm_acc(out, a, b),
    }
}

/// Accumulates `y += alpha * A * x` (dense GEMV) without allocating,
/// dispatched per [`dispatch::active_path`].
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn gemv_acc(alpha: f64, a: &DenseMatrix, x: &[f64], y: &mut [f64]) {
    match active_path() {
        KernelPath::Scalar => scalar::gemv_acc(alpha, a, x, y),
        KernelPath::Unrolled => unrolled::gemv_acc(alpha, a, x, y),
        KernelPath::Simd => simd::gemv_acc(alpha, a, x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_outer(x: &[f64]) -> DenseMatrix {
        let k = x.len();
        let mut m = DenseMatrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                m.set(i, j, x[i] * x[j]);
            }
        }
        m
    }

    #[test]
    fn generations_agree_after_symmetrization() {
        let x = vec![1.0, -2.0, 3.5, 0.25];
        let expected = dense_outer(&x);

        for gen in KernelGeneration::ALL {
            let mut m = DenseMatrix::zeros(4, 4);
            rank1_update(gen, &mut m, &x);
            if needs_symmetrize(gen) {
                m.symmetrize_from_lower().unwrap();
            }
            assert!(
                m.max_abs_diff(&expected).unwrap() < 1e-12,
                "generation {:?} disagrees",
                gen
            );
        }
    }

    #[test]
    fn repeated_updates_accumulate() {
        let rows = [vec![1.0, 2.0], vec![3.0, 4.0], vec![-1.0, 0.5]];
        let mut expected = DenseMatrix::zeros(2, 2);
        for r in &rows {
            expected.add_assign(&dense_outer(r)).unwrap();
        }
        let mut m = DenseMatrix::zeros(2, 2);
        for r in &rows {
            rank1_update(KernelGeneration::V03, &mut m, r);
        }
        m.symmetrize_from_lower().unwrap();
        assert!(m.max_abs_diff(&expected).unwrap() < 1e-12);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(KernelGeneration::V01Alpha.label(), "v0.1alpha");
        assert_eq!(KernelGeneration::V021Beta.label(), "v0.2.1beta");
        assert_eq!(KernelGeneration::V03.label(), "v0.3");
        assert_eq!(KernelGeneration::default(), KernelGeneration::V03);
    }

    /// Deterministic pseudo-random chunk of `rows × width` values.
    fn chunk_data(rows: usize, width: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..rows * width)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 250.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn rank_k_update_is_bit_identical_to_per_row_v03() {
        // Widths straddling the tile size exercise partial tiles; row counts
        // straddling the row block exercise partial blocks.
        for (rows, width) in [(1, 5), (7, 3), (130, 17), (70, 65), (200, 70)] {
            let xs = chunk_data(rows, width, (rows * width) as u64);
            let mut per_row = DenseMatrix::zeros(width, width);
            for x in xs.chunks_exact(width) {
                rank1_update(KernelGeneration::V03, &mut per_row, x);
            }
            let mut batched = DenseMatrix::zeros(width, width);
            rank_k_update_lower(&mut batched, &xs, width);
            for i in 0..width {
                for j in 0..width {
                    assert_eq!(
                        batched.get(i, j).to_bits(),
                        per_row.get(i, j).to_bits(),
                        "element ({i}, {j}) differs at rows={rows} width={width}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_k_update_handles_empty_chunks() {
        let mut m = DenseMatrix::zeros(4, 4);
        rank_k_update_lower(&mut m, &[], 4);
        assert!(m.max_abs_diff(&DenseMatrix::zeros(4, 4)).unwrap() == 0.0);
        let mut empty = DenseMatrix::zeros(0, 0);
        rank_k_update_lower(&mut empty, &[], 0);
    }

    #[test]
    fn weighted_rank_k_update_is_bit_identical_to_per_row() {
        for (rows, width) in [(1, 4), (90, 13), (130, 66)] {
            let xs = chunk_data(rows, width, 31);
            let weights: Vec<f64> = chunk_data(rows, 1, 77)
                .iter()
                .map(|w| w.abs() + 0.01)
                .collect();
            let mut per_row = DenseMatrix::zeros(width, width);
            for (x, w) in xs.chunks_exact(width).zip(&weights) {
                for i in 0..width {
                    for j in 0..=i {
                        let v = per_row.get(i, j) + w * x[i] * x[j];
                        per_row.set(i, j, v);
                    }
                }
            }
            let mut batched = DenseMatrix::zeros(width, width);
            weighted_rank_k_update_lower(&mut batched, &xs, &weights, width);
            for i in 0..width {
                for j in 0..=i {
                    assert_eq!(
                        batched.get(i, j).to_bits(),
                        per_row.get(i, j).to_bits(),
                        "element ({i}, {j}) differs at rows={rows} width={width}"
                    );
                }
            }
        }
    }

    #[test]
    fn xty_update_is_bit_identical_to_per_row() {
        let width = 9;
        let rows = 83;
        let xs = chunk_data(rows, width, 11);
        let ys = chunk_data(rows, 1, 23);
        let mut per_row = vec![0.25f64; width];
        for (x, y) in xs.chunks_exact(width).zip(&ys) {
            for (a, xi) in per_row.iter_mut().zip(x) {
                *a += xi * y;
            }
        }
        let mut batched = vec![0.25f64; width];
        xty_update(&mut batched, &xs, &ys, width);
        for (a, b) in batched.iter().zip(&per_row) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_dot_matches_scalar_dot() {
        let width = 12;
        let rows = 31;
        let xs = chunk_data(rows, width, 5);
        let w = chunk_data(1, width, 7);
        let mut out = vec![0.0; rows];
        batch_dot(&xs, &w, &mut out);
        for (x, o) in xs.chunks_exact(width).zip(&out) {
            let scalar_dot: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            assert_eq!(o.to_bits(), scalar_dot.to_bits());
        }
    }

    #[test]
    fn batch_distances_match_scalar_distances() {
        let width = 6;
        let rows = 40;
        let xs = chunk_data(rows, width, 3);
        let center = chunk_data(1, width, 9);
        let mut out = vec![0.0; rows];
        batch_squared_distances(&xs, &center, &mut out);
        for (x, o) in xs.chunks_exact(width).zip(&out) {
            let scalar_d: f64 = x.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum();
            assert_eq!(o.to_bits(), scalar_d.to_bits());
        }
    }

    #[test]
    fn gemv_acc_matches_matvec() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = [1.0, -1.0];
        let mut y = vec![10.0, 20.0];
        gemv_acc(2.0, &a, &x, &mut y);
        assert_eq!(y, vec![10.0 + -2.0, 20.0 + -2.0]);
    }

    #[test]
    fn gemm_delegates_to_matmul() {
        let a = DenseMatrix::identity(3);
        let b = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        assert_eq!(gemm(&a, &b).unwrap(), b);
    }
}
