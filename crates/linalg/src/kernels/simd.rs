//! Explicit AVX2 tier: 4-wide `f64` kernels via `core::arch::x86_64`.
//!
//! Safety and bit-identity ground rules, shared by every kernel here:
//!
//! * **Vectorize across independent outputs, never inside a reduction.**
//!   Rank-k/GEMM tiles vectorize across contiguous `j` accumulator elements;
//!   the reduction kernels assign one *row* per SIMD lane.  Either way each
//!   accumulated element still receives its contributions strictly in row
//!   (or `k`) order, so results are bit-identical to the scalar tier.
//! * **`mul` + `add`, never `fmadd`.**  The host may well support FMA (and
//!   the bench metadata records it), but a fused multiply-add skips the
//!   intermediate rounding of `a * b` and would silently diverge from the
//!   scalar formulation — breaking the engine-wide `transition_chunk` ≡
//!   per-row bit-identity contract.
//! * Remainder rows/columns reuse the portable tier's code paths verbatim.
//!
//! The only `unsafe` in the crate lives in this module: raw loads/stores
//! whose bounds are established by the surrounding loop conditions, and
//! `#[target_feature(enable = "avx2")]` functions that are only reachable
//! after [`available`] has confirmed CPU support at runtime.
//!
//! On non-x86_64 targets this module re-exports the portable tier so the
//! crate still compiles; the dispatcher never selects the SIMD path there.

/// Whether the explicit SIMD tier can run on this machine.
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::{
    batch_closest_column, batch_dot, batch_squared_distances, gemm_acc, gemv_acc,
    rank_k_update_lower, weighted_rank_k_update_lower, xty_update,
};

#[cfg(not(target_arch = "x86_64"))]
pub use super::unrolled::{
    batch_closest_column, batch_dot, batch_squared_distances, gemm_acc, gemv_acc,
    rank_k_update_lower, weighted_rank_k_update_lower, xty_update,
};

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use core::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_blendv_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_set_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd,
        _CMP_LT_OQ,
    };

    use crate::dense::DenseMatrix;
    use crate::kernels::scalar::ROW_BLOCK;
    use crate::kernels::unrolled;

    use super::available;

    /// Gathers four `f64`s at `p`, `p + stride`, … into lanes 0..3.
    ///
    /// # Safety
    /// `p .. p + 3 * stride` must be in bounds of a live allocation.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_strided4(p: *const f64, stride: usize) -> __m256d {
        _mm256_set_pd(*p.add(3 * stride), *p.add(2 * stride), *p.add(stride), *p)
    }

    /// AVX2 `m += Σ_r x_r x_rᵀ` (lower triangle).
    pub fn rank_k_update_lower(m: &mut DenseMatrix, xs: &[f64], width: usize) {
        debug_assert_eq!(m.rows(), width);
        debug_assert_eq!(m.cols(), width);
        debug_assert_eq!(xs.len() % width.max(1), 0);
        assert!(available(), "SIMD tier called without AVX2 support");
        if width == 0 {
            return;
        }
        let md = m.as_mut_slice();
        for row_block in xs.chunks(ROW_BLOCK * width) {
            // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
            unsafe { rank_k_block_avx2(md, row_block, width, None) };
        }
    }

    /// AVX2 weighted rank-k update (lower triangle).
    pub fn weighted_rank_k_update_lower(
        m: &mut DenseMatrix,
        xs: &[f64],
        weights: &[f64],
        width: usize,
    ) {
        debug_assert_eq!(m.rows(), width);
        debug_assert_eq!(m.cols(), width);
        debug_assert_eq!(xs.len(), weights.len() * width);
        assert!(available(), "SIMD tier called without AVX2 support");
        if width == 0 {
            return;
        }
        let md = m.as_mut_slice();
        for (block_idx, row_block) in xs.chunks(ROW_BLOCK * width).enumerate() {
            let block_weights = &weights[block_idx * ROW_BLOCK..];
            // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
            unsafe { rank_k_block_avx2(md, row_block, width, Some(block_weights)) };
        }
    }

    /// One row block of the rank-k update: 4-row strips, 4×8 register tiles
    /// (with a 4×4 cleanup tile), diagonal remainder via the portable tier.
    #[target_feature(enable = "avx2")]
    unsafe fn rank_k_block_avx2(
        md: &mut [f64],
        block: &[f64],
        width: usize,
        weights: Option<&[f64]>,
    ) {
        let mut i0 = 0;
        while i0 < width {
            let i_end = (i0 + 4).min(width);
            if i_end - i0 == 4 {
                // Largest multiple of 4 that is ≤ i0 + 1: every row of the
                // strip covers columns [0, j_full).
                let j_full = (i0 + 1) & !3;
                let mut j0 = 0;
                while j0 + 8 <= j_full {
                    rank_k_tile::<2>(md, block, width, i0, j0, weights);
                    j0 += 8;
                }
                if j0 + 4 <= j_full {
                    rank_k_tile::<1>(md, block, width, i0, j0, weights);
                }
                unrolled::rank_k_edge(md, block, width, i0, i_end, j_full, weights);
            } else {
                unrolled::rank_k_edge(md, block, width, i0, i_end, 0, weights);
            }
            i0 += 4;
        }
    }

    /// A 4×(4·NJ) accumulator tile at (`i0`, `j0`): seeded from `md`, updated
    /// across every row of `block` with `mul`+`add`, stored back once.  The
    /// store/load round-trip is exact, so the per-element addition chain is
    /// the scalar tier's chain re-batched.
    #[target_feature(enable = "avx2")]
    unsafe fn rank_k_tile<const NJ: usize>(
        md: &mut [f64],
        block: &[f64],
        width: usize,
        i0: usize,
        j0: usize,
        weights: Option<&[f64]>,
    ) {
        let mp = md.as_mut_ptr();
        let mut acc = [[_mm256_setzero_pd(); NJ]; 4];
        for (ii, row_acc) in acc.iter_mut().enumerate() {
            for (jj, a) in row_acc.iter_mut().enumerate() {
                *a = _mm256_loadu_pd(mp.add((i0 + ii) * width + j0 + 4 * jj));
            }
        }
        for (r, x) in block.chunks_exact(width).enumerate() {
            let xp = x.as_ptr();
            let mut xj = [_mm256_setzero_pd(); NJ];
            for (jj, v) in xj.iter_mut().enumerate() {
                *v = _mm256_loadu_pd(xp.add(j0 + 4 * jj));
            }
            for (ii, row_acc) in acc.iter_mut().enumerate() {
                let xi = match weights {
                    Some(w) => _mm256_set1_pd(w[r] * *xp.add(i0 + ii)),
                    None => _mm256_set1_pd(*xp.add(i0 + ii)),
                };
                for (a, &v) in row_acc.iter_mut().zip(&xj) {
                    *a = _mm256_add_pd(*a, _mm256_mul_pd(xi, v));
                }
            }
        }
        for (ii, row_acc) in acc.iter().enumerate() {
            for (jj, a) in row_acc.iter().enumerate() {
                _mm256_storeu_pd(mp.add((i0 + ii) * width + j0 + 4 * jj), *a);
            }
        }
    }

    /// AVX2 `acc += Σ_r y_r · x_r`.
    pub fn xty_update(acc: &mut [f64], xs: &[f64], ys: &[f64], width: usize) {
        debug_assert_eq!(xs.len(), ys.len() * width);
        assert!(available(), "SIMD tier called without AVX2 support");
        if width == 0 {
            return;
        }
        // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
        unsafe { xty_update_avx2(acc, xs, ys, width) };
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xty_update_avx2(acc: &mut [f64], xs: &[f64], ys: &[f64], width: usize) {
        let ap = acc.as_mut_ptr();
        for (x, y) in xs.chunks_exact(width).zip(ys) {
            let xp = x.as_ptr();
            let yv = _mm256_set1_pd(*y);
            let mut j = 0;
            while j + 4 <= width {
                let av = _mm256_loadu_pd(ap.add(j));
                let xv = _mm256_loadu_pd(xp.add(j));
                _mm256_storeu_pd(ap.add(j), _mm256_add_pd(av, _mm256_mul_pd(xv, yv)));
                j += 4;
            }
            while j < width {
                // Stay on the raw pointer: `acc` is re-used across rows, so
                // touching it through the slice here would invalidate `ap`.
                *ap.add(j) += x[j] * y;
                j += 1;
            }
        }
    }

    /// AVX2 batched dot product: eight rows per pass, one per lane.
    pub fn batch_dot(xs: &[f64], w: &[f64], out: &mut [f64]) {
        let width = w.len();
        debug_assert_eq!(xs.len(), out.len() * width);
        assert!(available(), "SIMD tier called without AVX2 support");
        if width == 0 {
            out.fill(0.0);
            return;
        }
        // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
        unsafe { batch_dot_avx2(xs, w, out) };
    }

    #[target_feature(enable = "avx2")]
    unsafe fn batch_dot_avx2(xs: &[f64], w: &[f64], out: &mut [f64]) {
        let width = w.len();
        let rows = out.len();
        let xp = xs.as_ptr();
        let op = out.as_mut_ptr();
        let mut r = 0;
        while r + 8 <= rows {
            let base = xp.add(r * width);
            let mut lo = _mm256_setzero_pd();
            let mut hi = _mm256_setzero_pd();
            for (k, &wk) in w.iter().enumerate() {
                let wv = _mm256_set1_pd(wk);
                lo = _mm256_add_pd(lo, _mm256_mul_pd(load_strided4(base.add(k), width), wv));
                hi = _mm256_add_pd(
                    hi,
                    _mm256_mul_pd(load_strided4(base.add(4 * width + k), width), wv),
                );
            }
            _mm256_storeu_pd(op.add(r), lo);
            _mm256_storeu_pd(op.add(r + 4), hi);
            r += 8;
        }
        for rr in r..rows {
            let x = &xs[rr * width..(rr + 1) * width];
            let mut acc = 0.0;
            for (xi, wi) in x.iter().zip(w) {
                acc += xi * wi;
            }
            out[rr] = acc;
        }
    }

    /// AVX2 batched squared distances: eight rows per pass, one per lane.
    pub fn batch_squared_distances(xs: &[f64], center: &[f64], out: &mut [f64]) {
        let width = center.len();
        debug_assert_eq!(xs.len(), out.len() * width);
        assert!(available(), "SIMD tier called without AVX2 support");
        if width == 0 {
            out.fill(0.0);
            return;
        }
        // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
        unsafe { batch_squared_distances_avx2(xs, center, out) };
    }

    #[target_feature(enable = "avx2")]
    unsafe fn batch_squared_distances_avx2(xs: &[f64], center: &[f64], out: &mut [f64]) {
        let width = center.len();
        let rows = out.len();
        let xp = xs.as_ptr();
        let op = out.as_mut_ptr();
        let mut r = 0;
        while r + 8 <= rows {
            let base = xp.add(r * width);
            let mut lo = _mm256_setzero_pd();
            let mut hi = _mm256_setzero_pd();
            for (k, &ck) in center.iter().enumerate() {
                let cv = _mm256_set1_pd(ck);
                let dl = _mm256_sub_pd(load_strided4(base.add(k), width), cv);
                lo = _mm256_add_pd(lo, _mm256_mul_pd(dl, dl));
                let dh = _mm256_sub_pd(load_strided4(base.add(4 * width + k), width), cv);
                hi = _mm256_add_pd(hi, _mm256_mul_pd(dh, dh));
            }
            _mm256_storeu_pd(op.add(r), lo);
            _mm256_storeu_pd(op.add(r + 4), hi);
            r += 8;
        }
        for rr in r..rows {
            let x = &xs[rr * width..(rr + 1) * width];
            let mut acc = 0.0;
            for (xi, ci) in x.iter().zip(center) {
                let d = xi - ci;
                acc += d * d;
            }
            out[rr] = acc;
        }
    }

    /// AVX2 batched closest column: four rows per pass; per-lane strict-`<`
    /// first-minimum tracking via ordered compare + blend (`_CMP_LT_OQ` is
    /// false for NaN, exactly like the scalar `d < best`).
    pub fn batch_closest_column(columns: &[Vec<f64>], xs: &[f64], width: usize, out: &mut [usize]) {
        debug_assert_eq!(xs.len(), out.len() * width);
        debug_assert!(columns.iter().all(|c| c.len() == width));
        assert!(available(), "SIMD tier called without AVX2 support");
        if width == 0 {
            out.fill(0);
            return;
        }
        // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
        unsafe { batch_closest_column_avx2(columns, xs, width, out) };
    }

    #[target_feature(enable = "avx2")]
    unsafe fn batch_closest_column_avx2(
        columns: &[Vec<f64>],
        xs: &[f64],
        width: usize,
        out: &mut [usize],
    ) {
        let rows = out.len();
        let xp = xs.as_ptr();
        let mut r = 0;
        while r + 4 <= rows {
            let base = xp.add(r * width);
            let mut best_d = _mm256_set1_pd(f64::INFINITY);
            let mut best_i = _mm256_setzero_pd();
            for (idx, col) in columns.iter().enumerate() {
                let mut dist = _mm256_setzero_pd();
                for (k, &ck) in col.iter().enumerate() {
                    let diff = _mm256_sub_pd(load_strided4(base.add(k), width), _mm256_set1_pd(ck));
                    dist = _mm256_add_pd(dist, _mm256_mul_pd(diff, diff));
                }
                let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(dist, best_d);
                best_d = _mm256_blendv_pd(best_d, dist, lt);
                best_i = _mm256_blendv_pd(best_i, _mm256_set1_pd(idx as f64), lt);
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), best_i);
            for (lane, &fidx) in lanes.iter().enumerate() {
                out[r + lane] = fidx as usize;
            }
            r += 4;
        }
        for rr in r..rows {
            let point = &xs[rr * width..(rr + 1) * width];
            let mut best = (0usize, f64::INFINITY);
            for (idx, col) in columns.iter().enumerate() {
                let mut d = 0.0;
                for (x, c) in point.iter().zip(col) {
                    let diff = x - c;
                    d += diff * diff;
                }
                if d < best.1 {
                    best = (idx, d);
                }
            }
            out[rr] = best.0;
        }
    }

    /// AVX2 `y += alpha * A * x`: eight matrix rows per pass, one per lane.
    pub fn gemv_acc(alpha: f64, a: &DenseMatrix, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(a.cols(), x.len());
        debug_assert_eq!(a.rows(), y.len());
        assert!(available(), "SIMD tier called without AVX2 support");
        // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
        unsafe { gemv_acc_avx2(alpha, a, x, y) };
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gemv_acc_avx2(alpha: f64, a: &DenseMatrix, x: &[f64], y: &mut [f64]) {
        let cols = a.cols();
        let rows = y.len();
        let ap = a.as_slice().as_ptr();
        let yp = y.as_mut_ptr();
        let av = _mm256_set1_pd(alpha);
        let mut r = 0;
        if cols > 0 {
            while r + 8 <= rows {
                let base = ap.add(r * cols);
                let mut lo = _mm256_setzero_pd();
                let mut hi = _mm256_setzero_pd();
                for (k, &xk) in x.iter().enumerate() {
                    let xv = _mm256_set1_pd(xk);
                    lo = _mm256_add_pd(lo, _mm256_mul_pd(load_strided4(base.add(k), cols), xv));
                    hi = _mm256_add_pd(
                        hi,
                        _mm256_mul_pd(load_strided4(base.add(4 * cols + k), cols), xv),
                    );
                }
                let ylo = _mm256_loadu_pd(yp.add(r));
                _mm256_storeu_pd(yp.add(r), _mm256_add_pd(ylo, _mm256_mul_pd(av, lo)));
                let yhi = _mm256_loadu_pd(yp.add(r + 4));
                _mm256_storeu_pd(yp.add(r + 4), _mm256_add_pd(yhi, _mm256_mul_pd(av, hi)));
                r += 8;
            }
        }
        for (rr, yv) in y.iter_mut().enumerate().take(rows).skip(r) {
            let row = a.row_slice(rr);
            let mut acc = 0.0;
            for (avv, xv) in row.iter().zip(x) {
                acc += avv * xv;
            }
            *yv += alpha * acc;
        }
    }

    /// AVX2 GEMM accumulation `out += A * B`: per output row a 16-wide
    /// register tile held across the whole `k` loop, preserving the scalar
    /// tier's `a[i][k] == 0.0` skip per `(i, k)` pair.
    pub fn gemm_acc(out: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
        debug_assert_eq!(a.cols(), b.rows());
        debug_assert_eq!(out.rows(), a.rows());
        debug_assert_eq!(out.cols(), b.cols());
        assert!(available(), "SIMD tier called without AVX2 support");
        // SAFETY: AVX2 support asserted above; in-bounds by loop shape.
        unsafe { gemm_acc_avx2(out, a, b) };
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gemm_acc_avx2(out: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
        let (arows, acols, bcols) = (a.rows(), a.cols(), b.cols());
        let ad = a.as_slice();
        let bp = b.as_slice().as_ptr();
        let od = out.as_mut_slice();
        let op = od.as_mut_ptr();
        for i in 0..arows {
            let arow = &ad[i * acols..(i + 1) * acols];
            let obase = i * bcols;
            let mut j0 = 0usize;
            while j0 + 16 <= bcols {
                let mut acc = [
                    _mm256_loadu_pd(op.add(obase + j0)),
                    _mm256_loadu_pd(op.add(obase + j0 + 4)),
                    _mm256_loadu_pd(op.add(obase + j0 + 8)),
                    _mm256_loadu_pd(op.add(obase + j0 + 12)),
                ];
                for (k, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let akv = _mm256_set1_pd(aik);
                    let bbase = bp.add(k * bcols + j0);
                    for (t, av) in acc.iter_mut().enumerate() {
                        *av = _mm256_add_pd(
                            *av,
                            _mm256_mul_pd(akv, _mm256_loadu_pd(bbase.add(4 * t))),
                        );
                    }
                }
                for (t, av) in acc.iter().enumerate() {
                    _mm256_storeu_pd(op.add(obase + j0 + 4 * t), *av);
                }
                j0 += 16;
            }
            while j0 + 4 <= bcols {
                let mut acc = _mm256_loadu_pd(op.add(obase + j0));
                for (k, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let akv = _mm256_set1_pd(aik);
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_mul_pd(akv, _mm256_loadu_pd(bp.add(k * bcols + j0))),
                    );
                }
                _mm256_storeu_pd(op.add(obase + j0), acc);
                j0 += 4;
            }
            for j in j0..bcols {
                // Stay on the raw pointers: `op` is re-used for later rows.
                let mut acc = *op.add(obase + j);
                for (k, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    acc += aik * *bp.add(k * bcols + j);
                }
                *op.add(obase + j) = acc;
            }
        }
    }
}
