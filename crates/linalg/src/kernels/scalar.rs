//! Scalar-reference tier: the portable, un-unrolled batched kernels.
//!
//! These are the original (pre-dispatch) implementations, kept verbatim as
//! the semantic reference every other tier must match **bit for bit**.  The
//! rank-k update tiles the accumulator (`ROW_BLOCK` × `TILE`) for cache
//! locality but leaves vectorization entirely to the compiler; the reduction
//! kernels (`batch_dot`, `batch_squared_distances`, `gemv_acc`,
//! `batch_closest_column`) are straight sequential loops, which the
//! autovectorizer *cannot* vectorize without reassociating the accumulation
//! — exactly the gap the unrolled and SIMD tiers close by vectorizing across
//! independent outputs instead.
//!
//! The benchmark harness addresses this tier directly (`repro kernels`), so
//! speedups reported for the other tiers are measured against the kernels as
//! they shipped before explicit SIMD dispatch existed.

use crate::dense::DenseMatrix;

/// Row-block size for [`rank_k_update_lower`]: 64 rows of a ~1 000-wide chunk
/// stay L2-resident while the accumulator tile streams through L1.
pub(super) const ROW_BLOCK: usize = 64;

/// Accumulator tile edge for [`rank_k_update_lower`]: a 64×64 `f64` tile is
/// 32 KiB, half a typical L1d cache.
const TILE: usize = 64;

/// Scalar-reference `m += Σ_r x_r x_rᵀ` (lower triangle), tiled.
pub fn rank_k_update_lower(m: &mut DenseMatrix, xs: &[f64], width: usize) {
    debug_assert_eq!(m.rows(), width);
    debug_assert_eq!(m.cols(), width);
    debug_assert_eq!(xs.len() % width.max(1), 0);
    if width == 0 {
        return;
    }
    for row_block in xs.chunks(ROW_BLOCK * width) {
        for i0 in (0..width).step_by(TILE) {
            let i_end = (i0 + TILE).min(width);
            for j0 in (0..=i0).step_by(TILE) {
                for x in row_block.chunks_exact(width) {
                    for i in i0..i_end {
                        let xi = x[i];
                        let j_end = (j0 + TILE).min(i + 1);
                        let row = m.row_slice_mut(i);
                        for (acc, xj) in row[j0..j_end].iter_mut().zip(&x[j0..j_end]) {
                            *acc += xi * xj;
                        }
                    }
                }
            }
        }
    }
}

/// Scalar-reference weighted rank-k update (lower triangle), tiled.
pub fn weighted_rank_k_update_lower(
    m: &mut DenseMatrix,
    xs: &[f64],
    weights: &[f64],
    width: usize,
) {
    debug_assert_eq!(m.rows(), width);
    debug_assert_eq!(m.cols(), width);
    debug_assert_eq!(xs.len(), weights.len() * width);
    if width == 0 {
        return;
    }
    for (block_idx, row_block) in xs.chunks(ROW_BLOCK * width).enumerate() {
        let block_weights = &weights[block_idx * ROW_BLOCK..];
        for i0 in (0..width).step_by(TILE) {
            let i_end = (i0 + TILE).min(width);
            for j0 in (0..=i0).step_by(TILE) {
                for (x, w) in row_block.chunks_exact(width).zip(block_weights) {
                    for i in i0..i_end {
                        let wxi = w * x[i];
                        let j_end = (j0 + TILE).min(i + 1);
                        let row = m.row_slice_mut(i);
                        for (acc, xj) in row[j0..j_end].iter_mut().zip(&x[j0..j_end]) {
                            *acc += wxi * xj;
                        }
                    }
                }
            }
        }
    }
}

/// Scalar-reference `acc += Σ_r y_r · x_r`.
pub fn xty_update(acc: &mut [f64], xs: &[f64], ys: &[f64], width: usize) {
    debug_assert_eq!(xs.len(), ys.len() * width);
    if width == 0 {
        return;
    }
    for (x, y) in xs.chunks_exact(width).zip(ys) {
        for (a, xi) in acc.iter_mut().zip(x) {
            *a += xi * y;
        }
    }
}

/// Scalar-reference batched dot product `out[r] = x_r · w`.
pub fn batch_dot(xs: &[f64], w: &[f64], out: &mut [f64]) {
    let width = w.len();
    debug_assert_eq!(xs.len(), out.len() * width);
    if width == 0 {
        out.fill(0.0);
        return;
    }
    for (x, o) in xs.chunks_exact(width).zip(out.iter_mut()) {
        let mut acc = 0.0;
        for (xi, wi) in x.iter().zip(w) {
            acc += xi * wi;
        }
        *o = acc;
    }
}

/// Scalar-reference batched squared Euclidean distances to `center`.
pub fn batch_squared_distances(xs: &[f64], center: &[f64], out: &mut [f64]) {
    let width = center.len();
    debug_assert_eq!(xs.len(), out.len() * width);
    if width == 0 {
        out.fill(0.0);
        return;
    }
    for (x, o) in xs.chunks_exact(width).zip(out.iter_mut()) {
        let mut acc = 0.0;
        for (xi, ci) in x.iter().zip(center) {
            let d = xi - ci;
            acc += d * d;
        }
        *o = acc;
    }
}

/// Scalar-reference batched closest-column assignment.
///
/// For every row the candidate columns are scanned in order and the first
/// strict minimum wins (`d < best`, so NaN distances never displace the
/// incumbent and ties keep the earliest column) — the tie-break contract of
/// `array_ops::closest_column`.
pub fn batch_closest_column(columns: &[Vec<f64>], xs: &[f64], width: usize, out: &mut [usize]) {
    debug_assert_eq!(xs.len(), out.len() * width);
    debug_assert!(columns.iter().all(|c| c.len() == width));
    if width == 0 {
        out.fill(0);
        return;
    }
    for (point, slot) in xs.chunks_exact(width).zip(out.iter_mut()) {
        let mut best = (0usize, f64::INFINITY);
        for (idx, col) in columns.iter().enumerate() {
            let mut d = 0.0;
            for (x, c) in point.iter().zip(col) {
                let diff = x - c;
                d += diff * diff;
            }
            if d < best.1 {
                best = (idx, d);
            }
        }
        *slot = best.0;
    }
}

/// Scalar-reference `y += alpha * A * x` (dense GEMV, no allocation).
pub fn gemv_acc(alpha: f64, a: &DenseMatrix, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.cols(), x.len());
    debug_assert_eq!(a.rows(), y.len());
    for (r, yr) in y.iter_mut().enumerate() {
        let row = a.row_slice(r);
        let mut acc = 0.0;
        for (av, xv) in row.iter().zip(x) {
            acc += av * xv;
        }
        *yr += alpha * acc;
    }
}

/// Scalar-reference GEMM accumulation `out += A * B`.
///
/// The loop order (`i`, then `k` with an `a[i][k] == 0.0` skip, then a
/// contiguous `j` sweep) is the historical `DenseMatrix::matmul` order; the
/// zero-skip is part of the bit-level contract — skipping instead of adding
/// `0.0 * b` matters when `b` holds NaN or ±∞ and when signed zeros would
/// combine — so every tier preserves it per `(i, k)` pair.
pub fn gemm_acc(out: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
    debug_assert_eq!(a.cols(), b.rows());
    debug_assert_eq!(out.rows(), a.rows());
    debug_assert_eq!(out.cols(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a.get(i, k);
            if aik == 0.0 {
                continue;
            }
            let other_row = b.row_slice(k);
            let out_row = out.row_slice_mut(i);
            for (o, bv) in out_row.iter_mut().zip(other_row) {
                *o += aik * bv;
            }
        }
    }
}
