//! Portable 4-way-unrolled tier: register-tiled kernels in plain Rust.
//!
//! Same algorithms as the AVX2 tier (`super::simd`) expressed with `[f64; 4]`
//! lane arrays instead of intrinsics, so every platform gets the benefit of
//! vectorizing **across independent outputs** — the autovectorizer can map a
//! lane array onto packed registers, and even where it does not, four
//! independent scalar addition chains give the out-of-order core real ILP
//! that the scalar tier's single serial reduction chain denies it.
//!
//! Bit-identity with the scalar tier is structural, not accidental:
//!
//! * Rank-k/GEMM accumulator tiles are **seeded from the output matrix** and
//!   stored back when the tile retires.  A store/load round-trip of an `f64`
//!   is exact, so the per-element addition chain is the same chain the scalar
//!   tier produces, merely re-batched.
//! * Reduction kernels assign each *row* to a lane; within a lane the
//!   elements accumulate left-to-right exactly as the scalar loop does.
//! * Remainder rows/columns (row counts not divisible by the lane group,
//!   widths not divisible by 4, the triangle edge of the rank-k update) run
//!   the identical per-element formula in the identical order.

use crate::dense::DenseMatrix;

use super::scalar::ROW_BLOCK;

/// Rows per reduction lane-group: two 4-lane accumulators per group give the
/// core eight independent dependency chains to overlap.
const LANES: usize = 4;

/// Portable-unrolled `m += Σ_r x_r x_rᵀ` (lower triangle).
pub fn rank_k_update_lower(m: &mut DenseMatrix, xs: &[f64], width: usize) {
    debug_assert_eq!(m.rows(), width);
    debug_assert_eq!(m.cols(), width);
    debug_assert_eq!(xs.len() % width.max(1), 0);
    if width == 0 {
        return;
    }
    let md = m.as_mut_slice();
    for row_block in xs.chunks(ROW_BLOCK * width) {
        rank_k_block(md, row_block, width, None);
    }
}

/// Portable-unrolled weighted rank-k update (lower triangle).
pub fn weighted_rank_k_update_lower(
    m: &mut DenseMatrix,
    xs: &[f64],
    weights: &[f64],
    width: usize,
) {
    debug_assert_eq!(m.rows(), width);
    debug_assert_eq!(m.cols(), width);
    debug_assert_eq!(xs.len(), weights.len() * width);
    if width == 0 {
        return;
    }
    let md = m.as_mut_slice();
    for (block_idx, row_block) in xs.chunks(ROW_BLOCK * width).enumerate() {
        let block_weights = &weights[block_idx * ROW_BLOCK..];
        rank_k_block(md, row_block, width, Some(block_weights));
    }
}

/// One row block of the (optionally weighted) rank-k update: 4-row strips of
/// the lower triangle, each strip split into full 4-wide register tiles plus
/// a diagonal remainder.  `weights[r]` scales row `r`'s contribution as
/// `(w · x_r[i]) · x_r[j]`, matching the scalar tier's rounding exactly.
fn rank_k_block(md: &mut [f64], block: &[f64], width: usize, weights: Option<&[f64]>) {
    let mut i0 = 0;
    while i0 < width {
        let i_end = (i0 + 4).min(width);
        if i_end - i0 == 4 {
            // Largest multiple of 4 that is ≤ i0 + 1: every row of the strip
            // covers columns [0, j_full), so full 4×4 tiles apply there.
            let j_full = (i0 + 1) & !3;
            let mut j0 = 0;
            while j0 < j_full {
                rank_k_tile4(md, block, width, i0, j0, weights);
                j0 += 4;
            }
            rank_k_edge(md, block, width, i0, i_end, j_full, weights);
        } else {
            rank_k_edge(md, block, width, i0, i_end, 0, weights);
        }
        i0 += 4;
    }
}

/// A 4×4 accumulator tile at (`i0`, `j0`), seeded from `md`, accumulated over
/// every row of `block`, stored back once.
#[inline]
fn rank_k_tile4(
    md: &mut [f64],
    block: &[f64],
    width: usize,
    i0: usize,
    j0: usize,
    weights: Option<&[f64]>,
) {
    let mut acc = [[0.0f64; 4]; 4];
    for (ii, lane) in acc.iter_mut().enumerate() {
        let base = (i0 + ii) * width + j0;
        lane.copy_from_slice(&md[base..base + 4]);
    }
    for (r, x) in block.chunks_exact(width).enumerate() {
        let xj: [f64; 4] = [x[j0], x[j0 + 1], x[j0 + 2], x[j0 + 3]];
        for (ii, lane) in acc.iter_mut().enumerate() {
            let xi = match weights {
                Some(w) => w[r] * x[i0 + ii],
                None => x[i0 + ii],
            };
            for (a, &b) in lane.iter_mut().zip(&xj) {
                *a += xi * b;
            }
        }
    }
    for (ii, lane) in acc.iter().enumerate() {
        let base = (i0 + ii) * width + j0;
        md[base..base + 4].copy_from_slice(lane);
    }
}

/// The tile remainder: rows `i0..i_end`, columns `j_lo..=i` (the part of the
/// strip the full tiles could not cover).  Element-major with the row loop
/// innermost — each element's additions still happen in row order.
pub(super) fn rank_k_edge(
    md: &mut [f64],
    block: &[f64],
    width: usize,
    i0: usize,
    i_end: usize,
    j_lo: usize,
    weights: Option<&[f64]>,
) {
    for i in i0..i_end {
        for j in j_lo..=i {
            let mut acc = md[i * width + j];
            match weights {
                None => {
                    for x in block.chunks_exact(width) {
                        acc += x[i] * x[j];
                    }
                }
                Some(w) => {
                    for (x, wr) in block.chunks_exact(width).zip(w) {
                        acc += (wr * x[i]) * x[j];
                    }
                }
            }
            md[i * width + j] = acc;
        }
    }
}

/// Portable-unrolled `acc += Σ_r y_r · x_r`: the per-row update is a 4-wide
/// element-wise sweep over independent accumulator elements.
pub fn xty_update(acc: &mut [f64], xs: &[f64], ys: &[f64], width: usize) {
    debug_assert_eq!(xs.len(), ys.len() * width);
    if width == 0 {
        return;
    }
    for (x, y) in xs.chunks_exact(width).zip(ys) {
        let mut j = 0;
        while j + 4 <= width {
            acc[j] += x[j] * y;
            acc[j + 1] += x[j + 1] * y;
            acc[j + 2] += x[j + 2] * y;
            acc[j + 3] += x[j + 3] * y;
            j += 4;
        }
        while j < width {
            acc[j] += x[j] * y;
            j += 1;
        }
    }
}

/// Portable-unrolled batched dot product: two 4-lane groups (8 rows) advance
/// together, one row per lane, each lane accumulating left-to-right.
pub fn batch_dot(xs: &[f64], w: &[f64], out: &mut [f64]) {
    let width = w.len();
    debug_assert_eq!(xs.len(), out.len() * width);
    if width == 0 {
        out.fill(0.0);
        return;
    }
    let rows = out.len();
    let mut r = 0usize;
    while r + 2 * LANES <= rows {
        let base = r * width;
        let mut lo = [0.0f64; LANES];
        let mut hi = [0.0f64; LANES];
        for (k, &wk) in w.iter().enumerate() {
            for lane in 0..LANES {
                lo[lane] += xs[base + lane * width + k] * wk;
                hi[lane] += xs[base + (LANES + lane) * width + k] * wk;
            }
        }
        out[r..r + LANES].copy_from_slice(&lo);
        out[r + LANES..r + 2 * LANES].copy_from_slice(&hi);
        r += 2 * LANES;
    }
    for rr in r..rows {
        let x = &xs[rr * width..(rr + 1) * width];
        let mut acc = 0.0;
        for (xi, wi) in x.iter().zip(w) {
            acc += xi * wi;
        }
        out[rr] = acc;
    }
}

/// Portable-unrolled batched squared distances: same 8-rows-in-lanes shape as
/// [`batch_dot`].
pub fn batch_squared_distances(xs: &[f64], center: &[f64], out: &mut [f64]) {
    let width = center.len();
    debug_assert_eq!(xs.len(), out.len() * width);
    if width == 0 {
        out.fill(0.0);
        return;
    }
    let rows = out.len();
    let mut r = 0usize;
    while r + 2 * LANES <= rows {
        let base = r * width;
        let mut lo = [0.0f64; LANES];
        let mut hi = [0.0f64; LANES];
        for (k, &ck) in center.iter().enumerate() {
            for lane in 0..LANES {
                let dl = xs[base + lane * width + k] - ck;
                lo[lane] += dl * dl;
                let dh = xs[base + (LANES + lane) * width + k] - ck;
                hi[lane] += dh * dh;
            }
        }
        out[r..r + LANES].copy_from_slice(&lo);
        out[r + LANES..r + 2 * LANES].copy_from_slice(&hi);
        r += 2 * LANES;
    }
    for rr in r..rows {
        let x = &xs[rr * width..(rr + 1) * width];
        let mut acc = 0.0;
        for (xi, ci) in x.iter().zip(center) {
            let d = xi - ci;
            acc += d * d;
        }
        out[rr] = acc;
    }
}

/// Portable-unrolled batched closest column: four rows per pass, per-lane
/// strict-`<` first-minimum tracking (NaN distances never win, ties keep the
/// earliest column — the `closest_column` contract).
pub fn batch_closest_column(columns: &[Vec<f64>], xs: &[f64], width: usize, out: &mut [usize]) {
    debug_assert_eq!(xs.len(), out.len() * width);
    debug_assert!(columns.iter().all(|c| c.len() == width));
    if width == 0 {
        out.fill(0);
        return;
    }
    let rows = out.len();
    let mut r = 0usize;
    while r + LANES <= rows {
        let base = r * width;
        let mut best_d = [f64::INFINITY; LANES];
        let mut best_i = [0usize; LANES];
        for (idx, col) in columns.iter().enumerate() {
            let mut d = [0.0f64; LANES];
            for (k, &ck) in col.iter().enumerate() {
                for lane in 0..LANES {
                    let diff = xs[base + lane * width + k] - ck;
                    d[lane] += diff * diff;
                }
            }
            for lane in 0..LANES {
                if d[lane] < best_d[lane] {
                    best_d[lane] = d[lane];
                    best_i[lane] = idx;
                }
            }
        }
        out[r..r + LANES].copy_from_slice(&best_i);
        r += LANES;
    }
    for rr in r..rows {
        let point = &xs[rr * width..(rr + 1) * width];
        let mut best = (0usize, f64::INFINITY);
        for (idx, col) in columns.iter().enumerate() {
            let mut d = 0.0;
            for (x, c) in point.iter().zip(col) {
                let diff = x - c;
                d += diff * diff;
            }
            if d < best.1 {
                best = (idx, d);
            }
        }
        out[rr] = best.0;
    }
}

/// Portable-unrolled `y += alpha * A * x`: eight matrix rows per pass, one
/// per lane.
pub fn gemv_acc(alpha: f64, a: &DenseMatrix, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.cols(), x.len());
    debug_assert_eq!(a.rows(), y.len());
    let cols = a.cols();
    let ad = a.as_slice();
    let rows = y.len();
    let mut r = 0usize;
    if cols > 0 {
        while r + 2 * LANES <= rows {
            let base = r * cols;
            let mut lo = [0.0f64; LANES];
            let mut hi = [0.0f64; LANES];
            for (k, &xk) in x.iter().enumerate() {
                for lane in 0..LANES {
                    lo[lane] += ad[base + lane * cols + k] * xk;
                    hi[lane] += ad[base + (LANES + lane) * cols + k] * xk;
                }
            }
            for lane in 0..LANES {
                y[r + lane] += alpha * lo[lane];
                y[r + LANES + lane] += alpha * hi[lane];
            }
            r += 2 * LANES;
        }
    }
    for (rr, yv) in y.iter_mut().enumerate().take(rows).skip(r) {
        let row = a.row_slice(rr);
        let mut acc = 0.0;
        for (av, xv) in row.iter().zip(x) {
            acc += av * xv;
        }
        *yv += alpha * acc;
    }
}

/// Portable-unrolled GEMM accumulation `out += A * B`: per output row a
/// 16-wide register tile is held across the whole `k` loop, preserving the
/// scalar tier's `a[i][k] == 0.0` skip per `(i, k)` pair.
pub fn gemm_acc(out: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
    debug_assert_eq!(a.cols(), b.rows());
    debug_assert_eq!(out.rows(), a.rows());
    debug_assert_eq!(out.cols(), b.cols());
    let (arows, acols, bcols) = (a.rows(), a.cols(), b.cols());
    let ad = a.as_slice();
    let bd = b.as_slice();
    let od = out.as_mut_slice();
    for i in 0..arows {
        let arow = &ad[i * acols..(i + 1) * acols];
        let obase = i * bcols;
        let mut j0 = 0usize;
        while j0 + 16 <= bcols {
            let mut acc = [0.0f64; 16];
            acc.copy_from_slice(&od[obase + j0..obase + j0 + 16]);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &bd[k * bcols + j0..k * bcols + j0 + 16];
                for (acct, &bv) in acc.iter_mut().zip(brow) {
                    *acct += aik * bv;
                }
            }
            od[obase + j0..obase + j0 + 16].copy_from_slice(&acc);
            j0 += 16;
        }
        for j in j0..bcols {
            let mut acc = od[obase + j];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                acc += aik * bd[k * bcols + j];
            }
            od[obase + j] = acc;
        }
    }
}
