//! Runtime kernel-dispatch policy: which tier the public kernels execute.
//!
//! Three tiers exist (see the [`super`] module docs): `scalar` (the
//! reference), `unrolled` (portable 4-way lane arrays) and `simd` (explicit
//! AVX2).  The default policy picks the SIMD tier when the CPU supports AVX2
//! and the portable-unrolled tier otherwise; the `MADLIB_SIMD` environment
//! variable overrides it:
//!
//! | value                                    | effect                      |
//! |------------------------------------------|-----------------------------|
//! | unset / `on` / `1` / `true` / `auto` / `simd` | runtime detection (default) |
//! | `off` / `0` / `false` / `portable` / `unrolled` | force the portable tier |
//! | `scalar`                                 | force the scalar reference  |
//!
//! An unrecognized value logs a warning to stderr (once) and falls back to
//! runtime detection, mirroring how `MADLIB_THREADS` treats garbage input —
//! silent acceptance of a typo like `MADLIB_SIMD=offf` would quietly benchmark
//! the wrong tier.
//!
//! Because every tier is bit-identical (property-tested; NaN payloads
//! excepted — see the accumulation-order contract in the parent module),
//! the policy choice affects *throughput only*, never results — which is
//! exactly what makes the escape hatch safe to flip in CI.

use std::sync::OnceLock;

/// The kernel implementation tier actually executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// Reference implementation; sequential loops, autovectorizer only.
    Scalar,
    /// Portable manually 4-way-unrolled lane-array kernels.
    Unrolled,
    /// Explicit AVX2 (`core::arch::x86_64`) kernels.
    Simd,
}

impl KernelPath {
    /// All tiers, slowest first.
    pub const ALL: [KernelPath; 3] = [KernelPath::Scalar, KernelPath::Unrolled, KernelPath::Simd];

    /// Stable lowercase label (used in bench metadata and logs).
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Unrolled => "unrolled",
            KernelPath::Simd => "simd",
        }
    }
}

/// Parsed `MADLIB_SIMD` policy, before runtime CPU detection is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPolicy {
    /// Use the SIMD tier when the CPU supports it (the default).
    Auto,
    /// Force the portable-unrolled tier (`MADLIB_SIMD=off`).
    ForceUnrolled,
    /// Force the scalar reference tier (`MADLIB_SIMD=scalar`).
    ForceScalar,
}

/// The pure parsing policy behind [`active_path`], split out so it can be
/// unit-tested without racing on the process environment.  Returns the
/// parsed policy and, for an unrecognized value, the warning that should be
/// logged instead of silently ignoring it.
pub fn simd_policy_from(env_override: Option<&str>) -> (SimdPolicy, Option<String>) {
    let Some(raw) = env_override else {
        return (SimdPolicy::Auto, None);
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" | "portable" | "unrolled" => (SimdPolicy::ForceUnrolled, None),
        "scalar" => (SimdPolicy::ForceScalar, None),
        "on" | "1" | "true" | "auto" | "simd" => (SimdPolicy::Auto, None),
        _ => (
            SimdPolicy::Auto,
            Some(format!(
                "invalid MADLIB_SIMD value {raw:?} (expected off/scalar/on); \
                 falling back to runtime detection"
            )),
        ),
    }
}

/// Resolves a parsed policy against what the CPU actually supports.
pub fn resolve(policy: SimdPolicy) -> KernelPath {
    match policy {
        SimdPolicy::ForceScalar => KernelPath::Scalar,
        SimdPolicy::ForceUnrolled => KernelPath::Unrolled,
        SimdPolicy::Auto => {
            if super::simd::available() {
                KernelPath::Simd
            } else {
                KernelPath::Unrolled
            }
        }
    }
}

/// The tier the public kernels dispatch to in this process.
///
/// Computed once from `MADLIB_SIMD` + runtime CPU detection and cached: the
/// kernels sit in inner loops, so the dispatch must stay a cached load, not
/// an environment read.
pub fn active_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(|| {
        let (policy, warning) = simd_policy_from(std::env::var("MADLIB_SIMD").ok().as_deref());
        if let Some(warning) = warning {
            eprintln!("madlib-linalg: {warning}");
        }
        resolve(policy)
    })
}

/// The SIMD-relevant CPU features detected at runtime, as stable lowercase
/// names — recorded in `BENCH_*.json` metadata so cross-host reruns can be
/// compared honestly.
///
/// Note that `fma` being *detected* does not mean the kernels *use* fused
/// multiply-adds: fusing would skip the intermediate rounding of `a * b` and
/// break bit-identity with the scalar tier (see the [`super`] module docs).
pub fn cpu_features() -> Vec<&'static str> {
    #[allow(unused_mut)]
    let mut features: Vec<&'static str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            features.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            features.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_parse_without_warning() {
        for (raw, want) in [
            ("off", SimdPolicy::ForceUnrolled),
            ("0", SimdPolicy::ForceUnrolled),
            ("FALSE", SimdPolicy::ForceUnrolled),
            (" portable ", SimdPolicy::ForceUnrolled),
            ("unrolled", SimdPolicy::ForceUnrolled),
            ("scalar", SimdPolicy::ForceScalar),
            ("SCALAR", SimdPolicy::ForceScalar),
            ("on", SimdPolicy::Auto),
            ("1", SimdPolicy::Auto),
            ("true", SimdPolicy::Auto),
            ("auto", SimdPolicy::Auto),
            ("simd", SimdPolicy::Auto),
        ] {
            let (policy, warning) = simd_policy_from(Some(raw));
            assert_eq!(policy, want, "raw={raw:?}");
            assert!(warning.is_none(), "raw={raw:?} warned: {warning:?}");
        }
        assert_eq!(simd_policy_from(None), (SimdPolicy::Auto, None));
    }

    #[test]
    fn invalid_values_warn_and_fall_back_to_auto() {
        for raw in ["offf", "", "yes please", "2", "-1", "avx512"] {
            let (policy, warning) = simd_policy_from(Some(raw));
            assert_eq!(policy, SimdPolicy::Auto, "raw={raw:?}");
            let warning = warning.unwrap_or_else(|| panic!("raw={raw:?} should warn"));
            assert!(warning.contains("MADLIB_SIMD"), "warning: {warning}");
        }
    }

    #[test]
    fn resolve_honors_forced_tiers_and_detection() {
        assert_eq!(resolve(SimdPolicy::ForceScalar), KernelPath::Scalar);
        assert_eq!(resolve(SimdPolicy::ForceUnrolled), KernelPath::Unrolled);
        let auto = resolve(SimdPolicy::Auto);
        if super::super::simd::available() {
            assert_eq!(auto, KernelPath::Simd);
        } else {
            assert_eq!(auto, KernelPath::Unrolled);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelPath::Scalar.label(), "scalar");
        assert_eq!(KernelPath::Unrolled.label(), "unrolled");
        assert_eq!(KernelPath::Simd.label(), "simd");
    }
}
