//! # madlib-linalg
//!
//! Dense and sparse linear-algebra support for the MADlib-rs analytics
//! library.
//!
//! The MADlib paper (Section 3.2–3.3) layers its statistical methods on top of
//! a "micro-programming" layer: an abstraction over an in-core linear-algebra
//! library (Eigen in the C++ implementation) plus a custom run-length-encoded
//! sparse-vector representation.  This crate is the Rust equivalent of that
//! layer.  It is intentionally self-contained — no LAPACK, BLAS, or Eigen —
//! so that the whole reproduction builds from source on any platform.
//!
//! The crate provides:
//!
//! * [`DenseVector`] and [`DenseMatrix`]: owned, row-major dense containers
//!   with the vector/matrix operations the method library needs.
//! * [`kernels`]: the performance-critical inner-loop routines, provided in
//!   three *generations* mirroring MADlib v0.1alpha, v0.2.1beta and v0.3
//!   (see the paper's Figure 4 discussion).  The benchmark harness uses these
//!   to regenerate the version-comparison experiment.
//! * [`decomposition`]: Cholesky, LU, symmetric Jacobi eigendecomposition and
//!   a Moore–Penrose pseudo-inverse built on it (the paper's final step of
//!   linear regression uses exactly such a pseudo-inverse of `XᵀX`).
//! * [`sparse`]: a run-length-encoded sparse vector, matching the MADlib
//!   sparse-vector support module.
//! * [`array_ops`]: the element-wise "array operations" support module from
//!   Table 1 of the paper.

// `deny` rather than `forbid`: the explicit-SIMD kernel tier
// (`kernels::simd`) carries a single scoped `#[allow(unsafe_code)]` for its
// `core::arch::x86_64` intrinsics; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod array_ops;
pub mod decomposition;
pub mod dense;
pub mod error;
pub mod kernels;
pub mod sparse;

pub use dense::{DenseMatrix, DenseVector};
pub use error::{LinalgError, Result};
pub use sparse::SparseVector;

/// Numeric tolerance used throughout the crate for near-zero comparisons.
pub const EPSILON: f64 = 1e-12;
