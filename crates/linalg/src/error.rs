//! Error types for linear-algebra operations.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. multiplying a 3×2 by a 4×4).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Shape of the left/first operand as (rows, cols).
        left: (usize, usize),
        /// Shape of the right/second operand as (rows, cols).
        right: (usize, usize),
    },
    /// The matrix must be square for this operation.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized/inverted.
    Singular {
        /// Pivot or eigenvalue magnitude that triggered the failure.
        pivot: f64,
    },
    /// The matrix is not positive definite (Cholesky requirement).
    NotPositiveDefinite {
        /// Index of the leading minor that failed.
        minor: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// Input contained NaN or infinity where finite values are required.
    NonFiniteInput {
        /// Description of where the non-finite value was found.
        context: &'static str,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length/size of the container.
        len: usize,
    },
    /// Empty input where at least one element is required.
    EmptyInput {
        /// Description of the operation requiring non-empty input.
        operation: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {operation}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot magnitude {pivot:e})")
            }
            LinalgError::NotPositiveDefinite { minor } => {
                write!(f, "matrix is not positive definite (leading minor {minor})")
            }
            LinalgError::DidNotConverge { iterations } => {
                write!(
                    f,
                    "iterative routine did not converge after {iterations} iterations"
                )
            }
            LinalgError::NonFiniteInput { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            LinalgError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            LinalgError::EmptyInput { operation } => {
                write!(f, "empty input to {operation}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            operation: "matmul",
            left: (3, 2),
            right: (4, 4),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("3x2"));

        let e = LinalgError::NotSquare { rows: 2, cols: 5 };
        assert!(e.to_string().contains("2x5"));

        let e = LinalgError::Singular { pivot: 1e-20 };
        assert!(e.to_string().contains("singular"));

        let e = LinalgError::DidNotConverge { iterations: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(LinalgError::EmptyInput { operation: "mean" });
    }
}
