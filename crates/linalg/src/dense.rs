//! Dense vector and matrix types.
//!
//! These are the Rust analogue of the paper's "type bridging" layer: the
//! database engine stores rows as `Vec<f64>` arrays (like PostgreSQL's
//! `double precision[]`), and the method library views them through
//! [`DenseVector`] / [`DenseMatrix`] without copying more than necessary.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, owned vector of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseVector {
    data: Vec<f64>,
}

impl DenseVector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Creates a zero vector of the given length.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector filled with the given value.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the underlying slice mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the vector and return its data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn dot(&self, other: &DenseVector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "dot",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Squared Euclidean distance to another vector of the same length.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn squared_distance(&self, other: &DenseVector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "squared_distance",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Element-wise in-place addition: `self += other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn add_assign(&mut self, other: &DenseVector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "add_assign",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place AXPY: `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &DenseVector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "axpy",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scale every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a new vector equal to `self - other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn sub(&self, other: &DenseVector) -> Result<DenseVector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "sub",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(DenseVector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        ))
    }

    /// Returns true if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Arithmetic mean of the elements; `None` for an empty vector.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.data.iter().sum::<f64>() / self.data.len() as f64)
        }
    }
}

impl Index<usize> for DenseVector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for DenseVector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for DenseVector {
    fn from(data: Vec<f64>) -> Self {
        Self::from_vec(data)
    }
}

impl fmt::Display for DenseVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

/// A dense, row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "from_row_major",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix whose rows are the provided vectors.
    ///
    /// # Errors
    /// Returns [`LinalgError::EmptyInput`] for no rows, and
    /// [`LinalgError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::EmptyInput {
                operation: "from_rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    operation: "from_rows",
                    left: (1, cols),
                    right: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the underlying row-major storage mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to the element at (row, col).
    #[inline]
    pub fn add_to(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] += value;
    }

    /// Returns a copy of row `row` as a [`DenseVector`].
    pub fn row(&self, row: usize) -> DenseVector {
        let start = row * self.cols;
        DenseVector::from_vec(self.data[start..start + self.cols].to_vec())
    }

    /// Borrow row `row` as a slice.
    pub fn row_slice(&self, row: usize) -> &[f64] {
        let start = row * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow row `row` mutably as a slice.
    pub fn row_slice_mut(&mut self, row: usize) -> &mut [f64] {
        let start = row * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Returns a copy of column `col` as a [`DenseVector`].
    pub fn column(&self, col: usize) -> DenseVector {
        DenseVector::from_vec((0..self.rows).map(|r| self.get(r, col)).collect())
    }

    /// Overwrites the contents of row `row`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if the slice length differs
    /// from the number of columns.
    pub fn set_row(&mut self, row: usize, values: &[f64]) -> Result<()> {
        if values.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "set_row",
                left: (1, self.cols),
                right: (1, values.len()),
            });
        }
        self.row_slice_mut(row).copy_from_slice(values);
        Ok(())
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &DenseVector) -> Result<DenseVector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let row = self.row_slice(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.as_slice()) {
                acc += a * b;
            }
            *slot = acc;
        }
        Ok(DenseVector::from_vec(out))
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matmul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        crate::kernels::gemm_acc(&mut out, self, other);
        Ok(out)
    }

    /// Element-wise in-place addition `self += other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] for differing shapes.
    pub fn add_assign(&mut self, other: &DenseMatrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matrix add_assign",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Scale every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Maximum absolute difference between corresponding elements.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] for differing shapes.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "max_abs_diff",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Copies the strictly-lower triangle into the strictly-upper triangle,
    /// producing a symmetric matrix.  Used by the "compute only the lower
    /// triangle of `XᵀX`" optimization (paper Listing 1).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn symmetrize_from_lower(&mut self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = self.get(j, i);
                self.set(i, j, v);
            }
        }
        Ok(())
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_basic_ops() {
        let a = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = DenseVector::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!((a.norm() - 14.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.norm_l1(), 6.0);
        assert_eq!(a.squared_distance(&b).unwrap(), 27.0);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    fn vector_dimension_mismatch() {
        let a = DenseVector::zeros(3);
        let b = DenseVector::zeros(4);
        assert!(a.dot(&b).is_err());
        assert!(a.squared_distance(&b).is_err());
        let mut a = a;
        assert!(a.add_assign(&b).is_err());
        assert!(a.axpy(2.0, &b).is_err());
        assert!(a.sub(&b).is_err());
    }

    #[test]
    fn vector_axpy_and_scale() {
        let mut a = DenseVector::from_vec(vec![1.0, 1.0]);
        let b = DenseVector::from_vec(vec![2.0, 3.0]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[5.0, 7.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[2.5, 3.5]);
    }

    #[test]
    fn vector_display_and_index() {
        let mut a = DenseVector::from_vec(vec![1.0, 2.0]);
        a[1] = 9.0;
        assert_eq!(a[1], 9.0);
        assert!(a.to_string().starts_with('['));
        assert!(a.is_finite());
        a[0] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn matrix_construction_and_access() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0).as_slice(), &[1.0, 2.0]);
        assert_eq!(m.column(1).as_slice(), &[2.0, 4.0]);
        let id = DenseMatrix::identity(3);
        assert_eq!(id.get(2, 2), 1.0);
        assert_eq!(id.get(0, 2), 0.0);
    }

    #[test]
    fn matrix_ragged_rows_rejected() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(DenseMatrix::from_rows(&[]).is_err());
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn matrix_multiplication() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);

        let x = DenseVector::from_vec(vec![1.0, 1.0]);
        let y = a.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn matrix_mismatch_errors() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.matvec(&DenseVector::zeros(2)).is_err());
        let mut a2 = DenseMatrix::zeros(2, 2);
        assert!(a2.add_assign(&b).is_err());
        assert!(a.max_abs_diff(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matrix_transpose_roundtrip() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetrize_from_lower_works() {
        let mut m = DenseMatrix::zeros(3, 3);
        m.set(1, 0, 2.0);
        m.set(2, 0, 3.0);
        m.set(2, 1, 4.0);
        m.symmetrize_from_lower().unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 2), 4.0);

        let mut rect = DenseMatrix::zeros(2, 3);
        assert!(rect.symmetrize_from_lower().is_err());
    }

    #[test]
    fn frobenius_and_scale() {
        let mut m = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        m.scale(2.0);
        assert_eq!(m.get(1, 1), 8.0);
    }
}
