//! Array operations support module.
//!
//! Table 1 of the paper lists "Array Operations" among MADlib's support
//! modules: element-wise arithmetic over `double precision[]` columns, used by
//! methods that keep model state in database arrays.  These free functions are
//! the Rust equivalent; they operate on plain slices so both the engine layer
//! (which stores rows as `Vec<f64>`) and the method layer can use them without
//! conversion.

use crate::error::{LinalgError, Result};

fn check_same_len(operation: &'static str, a: &[f64], b: &[f64]) -> Result<()> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation,
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

/// Element-wise sum `a + b`.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
pub fn array_add(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    check_same_len("array_add", a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| x + y).collect())
}

/// Element-wise difference `a - b`.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
pub fn array_sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    check_same_len("array_sub", a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// Element-wise product `a ⊙ b`.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
pub fn array_mult(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    check_same_len("array_mult", a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| x * y).collect())
}

/// Element-wise division `a / b`.  Division by zero yields `f64::INFINITY` or
/// NaN following IEEE semantics, matching PostgreSQL float8 behaviour with
/// `float8div` on array elements.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
pub fn array_div(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    check_same_len("array_div", a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| x / y).collect())
}

/// Multiplies every element by a scalar.
pub fn array_scalar_mult(a: &[f64], scalar: f64) -> Vec<f64> {
    a.iter().map(|x| x * scalar).collect()
}

/// Adds a scalar to every element.
pub fn array_scalar_add(a: &[f64], scalar: f64) -> Vec<f64> {
    a.iter().map(|x| x + scalar).collect()
}

/// Inner product of two arrays.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
pub fn array_dot(a: &[f64], b: &[f64]) -> Result<f64> {
    check_same_len("array_dot", a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Sum of all elements.
pub fn array_sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; `None` for an empty array.
pub fn array_mean(a: &[f64]) -> Option<f64> {
    if a.is_empty() {
        None
    } else {
        Some(array_sum(a) / a.len() as f64)
    }
}

/// Minimum element; `None` for an empty array.
pub fn array_min(a: &[f64]) -> Option<f64> {
    a.iter().copied().reduce(f64::min)
}

/// Maximum element; `None` for an empty array.
pub fn array_max(a: &[f64]) -> Option<f64> {
    a.iter().copied().reduce(f64::max)
}

/// Squared Euclidean distance between two arrays.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
pub fn array_squared_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    check_same_len("array_squared_distance", a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum())
}

/// Euclidean norm of an array.
pub fn array_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Returns the index of the column of `matrix_rows` (interpreted as a matrix
/// whose *columns* are candidate vectors of length `point.len()`) closest to
/// `point` in squared Euclidean distance, along with that distance.
///
/// This mirrors MADlib's `closest_column(a, b)` UDF used by the k-means
/// implementation in Section 4.3 of the paper.  Here the candidate matrix is
/// given as a slice of column vectors.
///
/// # Errors
/// * [`LinalgError::EmptyInput`] when no candidate columns are given.
/// * [`LinalgError::DimensionMismatch`] when a column length differs from the
///   point length.
pub fn closest_column(columns: &[Vec<f64>], point: &[f64]) -> Result<(usize, f64)> {
    if columns.is_empty() {
        return Err(LinalgError::EmptyInput {
            operation: "closest_column",
        });
    }
    let mut best = (0usize, f64::INFINITY);
    for (idx, col) in columns.iter().enumerate() {
        let d = array_squared_distance(col, point)?;
        if d < best.1 {
            best = (idx, d);
        }
    }
    Ok(best)
}

/// Batched [`closest_column`]: assigns every row of a contiguous row-major
/// block of points (`xs`, `out.len()` rows of `width` values) to its nearest
/// candidate column, writing the winning index per row into `out`.
///
/// Semantically identical to calling [`closest_column`] once per row (same
/// comparison order, same strict-`<` tie-breaking), but the points arrive as
/// one dense buffer straight out of a column-major chunk, so the inner loop
/// runs over contiguous memory with no per-row `Value` unpacking.  This is
/// the k-means assignment kernel of the chunk-at-a-time execution path.
///
/// # Errors
/// * [`LinalgError::EmptyInput`] when no candidate columns are given.
/// * [`LinalgError::DimensionMismatch`] when a column length differs from
///   `width` or `xs` is not `out.len() × width`.
pub fn batch_closest_column(
    columns: &[Vec<f64>],
    xs: &[f64],
    width: usize,
    out: &mut [usize],
) -> Result<()> {
    if columns.is_empty() {
        return Err(LinalgError::EmptyInput {
            operation: "batch_closest_column",
        });
    }
    if xs.len() != out.len() * width {
        return Err(LinalgError::DimensionMismatch {
            operation: "batch_closest_column",
            left: (xs.len(), 1),
            right: (out.len() * width, 1),
        });
    }
    for col in columns {
        if col.len() != width {
            return Err(LinalgError::DimensionMismatch {
                operation: "batch_closest_column",
                left: (col.len(), 1),
                right: (width, 1),
            });
        }
    }
    crate::kernels::batch_closest_column(columns, xs, width, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(array_add(&a, &b).unwrap(), vec![5.0, 7.0, 9.0]);
        assert_eq!(array_sub(&b, &a).unwrap(), vec![3.0, 3.0, 3.0]);
        assert_eq!(array_mult(&a, &b).unwrap(), vec![4.0, 10.0, 18.0]);
        assert_eq!(array_div(&b, &a).unwrap(), vec![4.0, 2.5, 2.0]);
        assert_eq!(array_dot(&a, &b).unwrap(), 32.0);
    }

    #[test]
    fn scalar_ops_and_reductions() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(array_scalar_mult(&a, 2.0), vec![2.0, 4.0, 6.0]);
        assert_eq!(array_scalar_add(&a, 1.0), vec![2.0, 3.0, 4.0]);
        assert_eq!(array_sum(&a), 6.0);
        assert_eq!(array_mean(&a), Some(2.0));
        assert_eq!(array_min(&a), Some(1.0));
        assert_eq!(array_max(&a), Some(3.0));
        assert_eq!(array_mean(&[]), None);
        assert_eq!(array_min(&[]), None);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(array_squared_distance(&a, &b).unwrap(), 25.0);
        assert_eq!(array_norm(&b), 5.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(array_add(&[1.0], &[1.0, 2.0]).is_err());
        assert!(array_dot(&[1.0], &[1.0, 2.0]).is_err());
        assert!(array_squared_distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn closest_column_finds_nearest_centroid() {
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![5.0, 5.0]];
        let (idx, dist) = closest_column(&centroids, &[6.0, 5.0]).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(dist, 1.0);
        assert!(closest_column(&[], &[1.0]).is_err());
        assert!(closest_column(&[vec![1.0, 2.0]], &[1.0]).is_err());
    }

    #[test]
    fn batch_closest_column_matches_per_row() {
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![5.0, 5.0]];
        let points: Vec<f64> = (0..40).map(|i| (i % 13) as f64).collect(); // 20 rows × 2
        let mut batch = vec![0usize; 20];
        batch_closest_column(&centroids, &points, 2, &mut batch).unwrap();
        for (i, point) in points.chunks_exact(2).enumerate() {
            let (expected, _) = closest_column(&centroids, point).unwrap();
            assert_eq!(batch[i], expected, "row {i}");
        }
        // Error cases mirror closest_column.
        assert!(batch_closest_column(&[], &points, 2, &mut batch).is_err());
        assert!(batch_closest_column(&centroids, &points, 3, &mut batch).is_err());
        assert!(batch_closest_column(&[vec![1.0]], &points, 2, &mut [0; 20]).is_err());
    }

    #[test]
    fn division_by_zero_follows_ieee() {
        let out = array_div(&[1.0, 0.0], &[0.0, 0.0]).unwrap();
        assert!(out[0].is_infinite());
        assert!(out[1].is_nan());
    }
}
