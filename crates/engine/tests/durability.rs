//! Crash-fault injection for the durability layer.
//!
//! Every test follows the same shape: run a schedule of committed mutations
//! against a durable [`Database`], record a state fingerprint at each commit
//! point, simulate a crash by dropping the database and damaging the on-disk
//! WAL (truncation at arbitrary byte offsets, flipped checksum bytes, torn
//! group-commit tails), then [`Database::recover`] and assert the recovered
//! state is **bit-identical to a committed prefix** of the schedule — never
//! a partially-applied batch, never data past the damage point.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use madlib_engine::{Column, ColumnType, Database, Row, Schema, Value};
use proptest::prelude::*;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory under the target dir (not tmpfs, and cleaned
/// up eagerly so repeated property-test cases don't accumulate).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let id = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "madlib_durability_{tag}_{}_{id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", ColumnType::Int),
        Column::new("v", ColumnType::Double),
    ])
}

fn row(id: i64, v: f64) -> Row {
    Row::new(vec![Value::Int(id), Value::Double(v)])
}

/// Bit-exact fingerprint of every non-temp table: name, schema, chunk
/// layout per segment, and each value (doubles rendered as raw bits).
fn fingerprint(db: &Database) -> String {
    let mut out = String::new();
    for (name, is_temp) in db.list_tables() {
        if is_temp {
            continue;
        }
        let table = db.table(&name).unwrap();
        writeln!(
            out,
            "table {name} segs={} cap={} schema={:?}",
            table.num_segments(),
            table.chunk_capacity(),
            table.schema()
        )
        .unwrap();
        for seg in 0..table.num_segments() {
            let segment = table.segment(seg);
            write!(out, "  seg {seg}:").unwrap();
            for chunk in segment.chunks() {
                if chunk.is_empty() {
                    // An empty open chunk is buffer-reuse bookkeeping (kept
                    // by truncate), not state — recovery need not rebuild it.
                    continue;
                }
                write!(out, " [{}]", chunk.len()).unwrap();
                for r in 0..chunk.len() {
                    for c in 0..chunk.columns().len() {
                        match chunk.value(r, c) {
                            Value::Double(d) => write!(out, " d{:016x}", d.to_bits()),
                            Value::DoubleArray(a) => {
                                write!(out, " D").unwrap();
                                for d in &a {
                                    write!(out, "{:016x},", d.to_bits()).unwrap();
                                }
                                Ok(())
                            }
                            other => write!(out, " {other:?}"),
                        }
                        .unwrap();
                    }
                    write!(out, " |").unwrap();
                }
            }
            writeln!(out).unwrap();
        }
    }
    out
}

fn wal_file(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn wal_size(dir: &Path) -> u64 {
    std::fs::metadata(wal_file(dir)).unwrap().len()
}

fn truncate_wal(dir: &Path, len: u64) {
    let f = OpenOptions::new().write(true).open(wal_file(dir)).unwrap();
    f.set_len(len).unwrap();
    f.sync_all().unwrap();
}

fn flip_wal_byte(dir: &Path, offset: u64) {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(wal_file(dir))
        .unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8];
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0xff;
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&b).unwrap();
    f.sync_all().unwrap();
}

/// The schedule driver: applies `ops` one at a time, recording the WAL's
/// durable length and the state fingerprint after each commit point.
/// Returns `(durable_len, fingerprint)` pairs, index 0 = the empty database.
#[derive(Clone, Debug)]
enum Op {
    Create(&'static str),
    Append(&'static str, i64, usize),
    Truncate(&'static str),
    Drop(&'static str),
}

fn apply(db: &Database, op: &Op) {
    match op {
        Op::Create(name) => db
            .create_table_with_chunk_capacity(name, schema(), 4)
            .unwrap(),
        Op::Append(name, base, n) => db
            .append_rows(
                name,
                (0..*n).map(|i| row(base + i as i64, (*base as f64) + i as f64 * 0.5)),
            )
            .unwrap(),
        Op::Truncate(name) => db.truncate_table(name).unwrap(),
        Op::Drop(name) => {
            db.drop_table(name).unwrap();
        }
    }
}

fn run_schedule(dir: &Path, ops: &[Op]) -> Vec<(u64, String)> {
    let db = Database::open(dir, 2).unwrap();
    let mut marks = vec![(db.wal_durable_len().unwrap(), fingerprint(&db))];
    for op in ops {
        apply(&db, op);
        marks.push((db.wal_durable_len().unwrap(), fingerprint(&db)));
    }
    marks
}

/// Recovery after truncating the WAL to an arbitrary byte offset lands
/// exactly on the longest committed prefix that fits — checked at *every*
/// byte offset of the log.
#[test]
fn truncation_at_every_offset_recovers_exact_committed_prefix() {
    let ops = [
        Op::Create("t"),
        Op::Append("t", 0, 3),
        Op::Append("t", 100, 6),
        Op::Create("u"),
        Op::Append("u", 0, 2),
        Op::Truncate("t"),
        Op::Append("t", 200, 5),
        Op::Drop("u"),
    ];
    let scratch = ScratchDir::new("trunc");
    let marks = run_schedule(scratch.path(), &ops);
    let full = wal_size(scratch.path());
    assert_eq!(full, marks.last().unwrap().0);

    let pristine = std::fs::read(wal_file(scratch.path())).unwrap();
    for cut in 0..=full {
        std::fs::write(wal_file(scratch.path()), &pristine).unwrap();
        truncate_wal(scratch.path(), cut);
        let recovered = Database::recover(scratch.path()).unwrap();
        // The longest commit point at or below the cut is what must survive:
        // a frame truncated mid-record contributes nothing.  A cut inside
        // the 24-byte WAL header makes the header unparseable, which is the
        // "no WAL" recovery path — the pre-WAL (empty) state.
        let expect = marks
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, fp)| fp.clone())
            .unwrap_or_else(|| marks[0].1.clone());
        assert_eq!(
            fingerprint(&recovered),
            expect,
            "cut at byte {cut} of {full}"
        );
    }
}

/// Flipping any byte of the WAL body must never surface data past the
/// damage: recovery lands on some committed prefix no longer than the
/// prefix preceding the flipped byte.
#[test]
fn flipped_bytes_never_surface_uncommitted_state() {
    let ops = [
        Op::Create("t"),
        Op::Append("t", 0, 4),
        Op::Append("t", 50, 4),
        Op::Append("t", 90, 4),
    ];
    let scratch = ScratchDir::new("flip");
    let marks = run_schedule(scratch.path(), &ops);
    let full = wal_size(scratch.path());
    let pristine = std::fs::read(wal_file(scratch.path())).unwrap();
    // Skip the 24-byte header (a damaged header is the "no WAL" recovery
    // path, exercised separately below); flip every 7th byte for speed.
    for offset in (24..full).step_by(7) {
        std::fs::write(wal_file(scratch.path()), &pristine).unwrap();
        flip_wal_byte(scratch.path(), offset);
        let recovered = Database::recover(scratch.path()).unwrap();
        let fp = fingerprint(&recovered);
        let position = marks.iter().position(|(_, m)| *m == fp);
        let ceiling = marks.iter().take_while(|(len, _)| *len <= offset).count() - 1;
        match position {
            Some(i) => assert!(
                i <= ceiling,
                "flip at {offset}: recovered prefix {i} is past the damage (ceiling {ceiling})"
            ),
            None => panic!("flip at {offset}: recovered state is not any committed prefix"),
        }
    }
}

/// A torn group commit must be all-or-nothing per batch: concurrent
/// appenders each commit multi-row batches, and after truncating the WAL at
/// arbitrary offsets no recovered table ever holds a partial batch.
#[test]
fn torn_group_commit_is_all_or_nothing_per_batch() {
    const THREADS: usize = 8;
    const BATCHES: usize = 6;
    const BATCH_ROWS: usize = 3;
    let scratch = ScratchDir::new("torn");
    {
        let db = Database::open(scratch.path(), 2).unwrap();
        db.set_group_commit(true);
        db.create_table_with_chunk_capacity("t", schema(), 4)
            .unwrap();
        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let db = &db;
                scope.spawn(move || {
                    for b in 0..BATCHES {
                        let base = (tid * 1000 + b * BATCH_ROWS) as i64;
                        db.append_rows(
                            "t",
                            (0..BATCH_ROWS).map(|i| row(base + i as i64, i as f64)),
                        )
                        .unwrap();
                    }
                });
            }
        });
    }
    let full = wal_size(scratch.path());
    let pristine = std::fs::read(wal_file(scratch.path())).unwrap();
    // Sweep a spread of cut points, including mid-record ones.
    for cut in (0..=full).step_by(13).chain([full]) {
        std::fs::write(wal_file(scratch.path()), &pristine).unwrap();
        truncate_wal(scratch.path(), cut);
        let recovered = Database::recover(scratch.path()).unwrap();
        if !recovered.has_table("t") {
            continue; // cut before the CreateTable record committed
        }
        let table = recovered.table("t").unwrap();
        // Collect per-thread ids and check batch atomicity + prefix order.
        let mut per_thread: Vec<Vec<i64>> = vec![Vec::new(); THREADS];
        for seg in 0..table.num_segments() {
            for chunk in table.segment(seg).chunks() {
                for r in 0..chunk.len() {
                    if let Value::Int(id) = chunk.value(r, 0) {
                        per_thread[(id / 1000) as usize].push(id % 1000);
                    } else {
                        panic!("non-int id");
                    }
                }
            }
        }
        for (tid, mut ids) in per_thread.into_iter().enumerate() {
            ids.sort_unstable();
            assert_eq!(
                ids.len() % BATCH_ROWS,
                0,
                "cut {cut}: thread {tid} recovered a partial batch ({} rows)",
                ids.len()
            );
            // Batches commit in submission order per thread, so the
            // surviving ids are exactly 0..n for some whole-batch n.
            let expect: Vec<i64> = (0..ids.len() as i64).collect();
            assert_eq!(ids, expect, "cut {cut}: thread {tid} has a gapped batch");
        }
    }
    // Untruncated recovery sees everything.
    std::fs::write(wal_file(scratch.path()), &pristine).unwrap();
    let recovered = Database::recover(scratch.path()).unwrap();
    assert_eq!(
        recovered.table("t").unwrap().row_count(),
        THREADS * BATCHES * BATCH_ROWS
    );
}

/// Checkpoint + WAL-tail damage: state can never regress below the
/// checkpoint, and the tail replays to an exact committed prefix.
#[test]
fn checkpoint_floor_survives_wal_tail_damage() {
    let scratch = ScratchDir::new("ckpt");
    let floor;
    let marks_after;
    {
        let db = Database::open(scratch.path(), 2).unwrap();
        db.create_table_with_chunk_capacity("t", schema(), 4)
            .unwrap();
        db.append_rows("t", (0..10).map(|i| row(i, i as f64)))
            .unwrap();
        db.checkpoint().unwrap();
        floor = fingerprint(&db);
        let mut marks = vec![(db.wal_durable_len().unwrap(), floor.clone())];
        for b in 0..4 {
            db.append_rows("t", (0..3).map(|i| row(100 + b * 10 + i, 0.25)))
                .unwrap();
            marks.push((db.wal_durable_len().unwrap(), fingerprint(&db)));
        }
        marks_after = marks;
    }
    let full = wal_size(scratch.path());
    let pristine = std::fs::read(wal_file(scratch.path())).unwrap();
    for cut in 0..=full {
        std::fs::write(wal_file(scratch.path()), &pristine).unwrap();
        truncate_wal(scratch.path(), cut);
        let recovered = Database::recover(scratch.path()).unwrap();
        let fp = fingerprint(&recovered);
        let expect = marks_after
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, m)| m.clone())
            .unwrap_or_else(|| floor.clone());
        assert_eq!(fp, expect, "cut at byte {cut}");
    }
    // Deleting the WAL outright falls back to the snapshot alone.
    std::fs::remove_file(wal_file(scratch.path())).unwrap();
    let recovered = Database::recover(scratch.path()).unwrap();
    assert_eq!(fingerprint(&recovered), floor);
}

/// Sealed chunks are written to segment snapshot files exactly once:
/// a checkpoint that seals nothing new appends nothing, and re-checkpointing
/// the same data never rewrites existing bytes.
#[test]
fn chunk_files_are_append_only_and_written_once() {
    let scratch = ScratchDir::new("once");
    let db = Database::open(scratch.path(), 2).unwrap();
    db.create_table_with_chunk_capacity("t", schema(), 4)
        .unwrap();
    db.append_rows("t", (0..20).map(|i| row(i, i as f64)))
        .unwrap();
    let first = db.checkpoint().unwrap();
    assert!(first > 0, "expected sealed chunks to persist");

    let chunk_files = |dir: &Path| -> Vec<(String, u64, Vec<u8>)> {
        let mut v: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let e = e.unwrap();
                let name = e.file_name().into_string().unwrap();
                name.ends_with(".chunks").then(|| {
                    let bytes = std::fs::read(e.path()).unwrap();
                    (name, bytes.len() as u64, bytes)
                })
            })
            .collect();
        v.sort();
        v
    };

    let after_first = chunk_files(scratch.path());
    // Nothing new sealed → no bytes move.
    assert_eq!(db.checkpoint().unwrap(), 0);
    assert_eq!(chunk_files(scratch.path()), after_first);

    // More data → strictly appended; the old prefix is byte-identical.
    db.append_rows("t", (100..120).map(|i| row(i, 0.5)))
        .unwrap();
    assert!(db.checkpoint().unwrap() > 0);
    let after_second = chunk_files(scratch.path());
    assert_eq!(after_first.len(), after_second.len());
    for ((name_a, len_a, bytes_a), (name_b, len_b, bytes_b)) in
        after_first.iter().zip(after_second.iter())
    {
        assert_eq!(name_a, name_b, "checkpoint must not rename chunk files");
        assert!(len_b >= len_a);
        assert_eq!(
            &bytes_b[..*len_a as usize],
            &bytes_a[..],
            "prefix rewritten"
        );
    }
}

/// Reopening without any damage is always bit-identical, across checkpoint
/// placements and every supported column type.
#[test]
fn clean_reopen_roundtrips_all_column_types() {
    let wide = Schema::new(vec![
        Column::new("b", ColumnType::Bool),
        Column::new("i", ColumnType::Int),
        Column::new("d", ColumnType::Double),
        Column::new("s", ColumnType::Text),
        Column::new("da", ColumnType::DoubleArray),
        Column::new("ia", ColumnType::IntArray),
        Column::new("ta", ColumnType::TextArray),
    ]);
    let mk_row = |i: i64| {
        Row::new(vec![
            if i % 3 == 0 {
                Value::Null
            } else {
                Value::Bool(i % 2 == 0)
            },
            Value::Int(i),
            Value::Double(i as f64 * 0.1),
            Value::Text(format!("row-{i}")),
            Value::DoubleArray(vec![i as f64, -1.0, f64::MIN_POSITIVE]),
            Value::IntArray(vec![i, i * 2]),
            Value::TextArray(vec![format!("t{i}"), String::new()]),
        ])
    };
    for checkpoint_at in [None, Some(0), Some(5), Some(11)] {
        let scratch = ScratchDir::new("roundtrip");
        let before;
        {
            let db = Database::open(scratch.path(), 3).unwrap();
            db.create_table_with_chunk_capacity("wide", wide.clone(), 4)
                .unwrap();
            for i in 0..12i64 {
                db.append_rows("wide", [mk_row(i)]).unwrap();
                if checkpoint_at == Some(i) {
                    db.checkpoint().unwrap();
                }
            }
            before = fingerprint(&db);
        }
        let recovered = Database::recover(scratch.path()).unwrap();
        assert_eq!(
            fingerprint(&recovered),
            before,
            "checkpoint_at={checkpoint_at:?}"
        );
        // And a second-generation reopen (recover → append → recover).
        recovered.append_rows("wide", [mk_row(100)]).unwrap();
        let again = fingerprint(&recovered);
        drop(recovered);
        let third = Database::recover(scratch.path()).unwrap();
        assert_eq!(fingerprint(&third), again);
    }
}

/// Randomized schedules × randomized crash offsets: recovery always lands
/// exactly on the longest committed prefix at or below the cut.
///
/// Each raw `(kind, table, rows)` tuple decodes to one operation — `kind`
/// 0–5 is an append (weighted heavily), 6 truncate, 7 drop+recreate, and 8
/// checkpoint — because the vendored proptest stand-in has no `prop_map`.
#[derive(Clone, Debug)]
enum PropOp {
    Append(u8, u8),
    Truncate(u8),
    DropCreate(u8),
    Checkpoint,
}

fn decode_op((kind, table, rows): (u8, u8, u8)) -> PropOp {
    match kind {
        0..=5 => PropOp::Append(table, rows),
        6 => PropOp::Truncate(table),
        7 => PropOp::DropCreate(table),
        _ => PropOp::Checkpoint,
    }
}

proptest! {
    #[test]
    fn random_schedules_recover_committed_prefixes(
        raw_ops in prop::collection::vec((0u8..9, 0u8..3, 1u8..8), 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let ops: Vec<PropOp> = raw_ops.into_iter().map(decode_op).collect();
        let scratch = ScratchDir::new("prop");
        let names = ["a", "b", "c"];
        // Record a mark after every *WAL record*, not just every op, so a
        // cut between a DropCreate's two records still has an exact match.
        let mut marks;
        {
            let db = Database::open(scratch.path(), 2).unwrap();
            let mark = |db: &Database, marks: &mut Vec<(u64, String)>| {
                marks.push((db.wal_durable_len().unwrap(), fingerprint(db)));
            };
            marks = Vec::new();
            mark(&db, &mut marks);
            for name in names {
                db.create_table_with_chunk_capacity(name, schema(), 4).unwrap();
                mark(&db, &mut marks);
            }
            let mut next = 0i64;
            for op in &ops {
                match op {
                    PropOp::Append(t, n) => {
                        let base = next;
                        next += *n as i64;
                        db.append_rows(
                            names[*t as usize],
                            (0..*n as i64).map(|i| row(base + i, (base + i) as f64 * 0.5)),
                        ).unwrap();
                    }
                    PropOp::Truncate(t) => db.truncate_table(names[*t as usize]).unwrap(),
                    PropOp::DropCreate(t) => {
                        db.drop_table(names[*t as usize]).unwrap();
                        mark(&db, &mut marks);
                        db.create_table_with_chunk_capacity(names[*t as usize], schema(), 4)
                            .unwrap();
                    }
                    PropOp::Checkpoint => { db.checkpoint().unwrap(); }
                }
                mark(&db, &mut marks);
            }
        }
        // Checkpoints reset the WAL, so only commit points since the last
        // reset are addressable by truncation; earlier marks have durable
        // lengths that may exceed the post-reset log. Keep the suffix whose
        // durable lengths are monotonically reachable from the end.
        let mut tail: Vec<(u64, String)> = Vec::new();
        let mut bound = u64::MAX;
        for mark in marks.iter().rev() {
            if mark.0 <= bound {
                bound = mark.0;
                tail.push(mark.clone());
            } else {
                break;
            }
        }
        tail.reverse();
        let full = wal_size(scratch.path());
        let cut = (cut_frac * full as f64) as u64;
        truncate_wal(scratch.path(), cut);
        let recovered = Database::recover(scratch.path()).unwrap();
        let expect = tail
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, fp)| fp.clone())
            .unwrap_or_else(|| tail[0].1.clone());
        prop_assert_eq!(fingerprint(&recovered), expect);
    }
}
