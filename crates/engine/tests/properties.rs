//! Property-based tests for the engine substrate.
//!
//! The key invariant of the whole macro-programming layer is that results
//! must not depend on how the data is partitioned across segments — the merge
//! law of Section 3.1.1.  These tests generate random data and random segment
//! counts and check exactly that.

use madlib_engine::aggregate::{ArraySumAggregate, AvgAggregate, CountAggregate, SumAggregate};
use madlib_engine::{row, Column, ColumnType, Executor, Schema, Table};
use proptest::prelude::*;

fn build_table(values: &[(f64, [f64; 3])], segments: usize) -> Table {
    let schema = Schema::new(vec![
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut t = Table::new(schema, segments).unwrap();
    for (y, x) in values {
        t.insert(row![*y, x.to_vec()]).unwrap();
    }
    t
}

proptest! {
    #[test]
    fn aggregates_are_partition_invariant(
        values in prop::collection::vec((-100.0..100.0f64, [-10.0..10.0f64, -10.0..10.0f64, -10.0..10.0f64]), 1..80),
        segments in 1usize..9,
    ) {
        let reference = build_table(&values, 1);
        let partitioned = build_table(&values, segments);
        let exec = Executor::new();

        let count_ref = exec.aggregate(&reference, &CountAggregate).unwrap();
        let count_par = exec.aggregate(&partitioned, &CountAggregate).unwrap();
        prop_assert_eq!(count_ref, count_par);

        let sum_ref = exec.aggregate(&reference, &SumAggregate::new("y")).unwrap();
        let sum_par = exec.aggregate(&partitioned, &SumAggregate::new("y")).unwrap();
        prop_assert!((sum_ref - sum_par).abs() < 1e-6);

        let avg_ref = exec.aggregate(&reference, &AvgAggregate::new("y")).unwrap().unwrap();
        let avg_par = exec.aggregate(&partitioned, &AvgAggregate::new("y")).unwrap().unwrap();
        prop_assert!((avg_ref - avg_par).abs() < 1e-9);

        let arr_ref = exec.aggregate(&reference, &ArraySumAggregate::new("x")).unwrap();
        let arr_par = exec.aggregate(&partitioned, &ArraySumAggregate::new("x")).unwrap();
        for (a, b) in arr_ref.iter().zip(&arr_par) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn serial_and_parallel_executors_agree(
        values in prop::collection::vec((-50.0..50.0f64, [0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64]), 1..50),
        segments in 1usize..6,
    ) {
        let table = build_table(&values, segments);
        let parallel = Executor::new();
        let serial = Executor::serial();
        let a = parallel.aggregate(&table, &SumAggregate::new("y")).unwrap();
        let b = serial.aggregate(&table, &SumAggregate::new("y")).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn repartition_preserves_content(
        values in prop::collection::vec((-10.0..10.0f64, [0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64]), 0..40),
        from in 1usize..5,
        to in 1usize..5,
    ) {
        let table = build_table(&values, from);
        let repartitioned = table.repartition(to).unwrap();
        prop_assert_eq!(repartitioned.row_count(), values.len());
        prop_assert_eq!(repartitioned.num_segments(), to);
        let exec = Executor::new();
        if !values.is_empty() {
            let a = exec.aggregate(&table, &SumAggregate::new("y")).unwrap();
            let b = exec.aggregate(&repartitioned, &SumAggregate::new("y")).unwrap();
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
