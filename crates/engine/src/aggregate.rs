//! User-defined aggregates.
//!
//! The paper (Section 3.1.1) describes the UDA pattern every MADlib method is
//! built on: a *transition* function folds one row into a running state, an
//! optional *merge* function combines two states produced on different
//! segments, and a *final* function turns the state into the output value.
//! An aggregate is data-parallel exactly when the transition is associative
//! and merging two partial states is equivalent to having streamed the second
//! state's rows through the first.
//!
//! The [`Aggregate`] trait captures that contract; [`crate::Executor`] runs
//! implementations in parallel across table segments.

use crate::chunk::{ColumnChunk, RowChunk};
use crate::error::Result;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A user-defined aggregate in the MADlib transition/merge/final style.
///
/// Implementations must satisfy the *merge law*: for any split of a row
/// stream into two halves, transitioning each half into its own state and
/// merging must produce the same final output as transitioning the whole
/// stream into one state.  The engine test-suite contains property tests
/// enforcing this for the built-in aggregates, and methods in the library
/// crates are tested the same way.
///
/// # Vectorized execution
///
/// The executor's default path streams column-major [`RowChunk`]s and calls
/// [`Aggregate::transition_chunk`] once per chunk.  The provided
/// implementation falls back to per-row [`Aggregate::transition`] calls over
/// materialized rows, so every aggregate works unchanged; hot aggregates
/// override it to read whole column slices and must then produce **exactly**
/// the state the per-row path would (same values, same floating-point
/// accumulation order), keeping results independent of the execution mode.
pub trait Aggregate: Sync {
    /// Per-segment running state.
    type State: Send;
    /// Final output type.
    type Output;

    /// Creates an empty transition state.
    fn initial_state(&self) -> Self::State;

    /// Folds one row into the state.
    ///
    /// # Errors
    /// Implementations should surface malformed rows as
    /// [`crate::EngineError`] values rather than panicking.
    fn transition(&self, state: &mut Self::State, row: &Row, schema: &Schema) -> Result<()>;

    /// Folds one column-major chunk of rows into the state.
    ///
    /// The default delegates to [`transition_chunk_by_rows`], i.e. per-row
    /// [`Aggregate::transition`] over materialized rows.  Overrides must be
    /// observationally identical to that fallback.
    ///
    /// # Errors
    /// Same contract as [`Aggregate::transition`].
    fn transition_chunk(
        &self,
        state: &mut Self::State,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> Result<()> {
        transition_chunk_by_rows(self, state, chunk, schema)
    }

    /// Combines two states produced on different segments.
    fn merge(&self, left: Self::State, right: Self::State) -> Self::State;

    /// Transforms the combined state into the aggregate output.
    ///
    /// # Errors
    /// Implementations may fail, e.g. when the input was empty and the
    /// aggregate has no identity output.
    fn finalize(&self, state: Self::State) -> Result<Self::Output>;

    /// Creates a reusable finalize workspace, or [`FinalizeScratch::none`]
    /// (the default) when the aggregate has nothing worth reusing.
    ///
    /// Grouped execution calls this once per finalize worker and threads the
    /// same scratch through every group that worker finalizes, so aggregates
    /// whose finalize allocates heavily (e.g. an eigendecomposition per
    /// linear-regression group) can override this together with
    /// [`Aggregate::finalize_with`] to amortize the allocations.
    fn make_finalize_scratch(&self) -> FinalizeScratch {
        FinalizeScratch::none()
    }

    /// [`Aggregate::finalize`] with a reusable scratch workspace.
    ///
    /// The default ignores the scratch and delegates to
    /// [`Aggregate::finalize`]; overrides must produce **exactly** the output
    /// `finalize` would — the scratch is an allocation-reuse handle, never a
    /// carrier of state between groups — so results stay bit-identical no
    /// matter how groups are distributed over finalize workers.
    ///
    /// # Errors
    /// Same contract as [`Aggregate::finalize`].
    fn finalize_with(
        &self,
        state: Self::State,
        _scratch: &mut FinalizeScratch,
    ) -> Result<Self::Output> {
        self.finalize(state)
    }
}

/// Type-erased per-worker workspace for [`Aggregate::finalize_with`].
///
/// Associated-type defaults are unstable, so the scratch is erased behind
/// [`std::any::Any`]: aggregates that want one call
/// [`FinalizeScratch::get_or_insert_with`] with their concrete workspace
/// type, everyone else keeps the empty default.
#[derive(Default)]
pub struct FinalizeScratch {
    slot: Option<Box<dyn std::any::Any + Send>>,
}

impl FinalizeScratch {
    /// An empty scratch — the default for aggregates without a workspace.
    #[must_use]
    pub fn none() -> Self {
        Self { slot: None }
    }

    /// Returns the workspace of type `W`, creating it with `init` when the
    /// scratch is empty or currently holds a different type.
    pub fn get_or_insert_with<W, F>(&mut self, init: F) -> &mut W
    where
        W: std::any::Any + Send,
        F: FnOnce() -> W,
    {
        let fresh = match &self.slot {
            Some(existing) => !existing.is::<W>(),
            None => true,
        };
        if fresh {
            self.slot = Some(Box::new(init()));
        }
        self.slot
            .as_mut()
            .expect("slot was just filled")
            .downcast_mut::<W>()
            .expect("slot holds a W")
    }
}

/// The row-at-a-time fallback behind [`Aggregate::transition_chunk`]:
/// materializes each row of `chunk` and feeds it to
/// [`Aggregate::transition`] in order.
///
/// Public so that chunk-aware aggregates can reuse it for configurations
/// their vectorized path does not cover (e.g. the legacy kernel generations
/// of linear regression).
///
/// # Errors
/// Propagates transition errors.
pub fn transition_chunk_by_rows<A: Aggregate + ?Sized>(
    aggregate: &A,
    state: &mut A::State,
    chunk: &RowChunk,
    schema: &Schema,
) -> Result<()> {
    let mut values = Vec::with_capacity(chunk.arity());
    for i in 0..chunk.len() {
        chunk.read_row_into(i, &mut values);
        let row = Row::new(std::mem::take(&mut values));
        aggregate.transition(state, &row, schema)?;
        values = row.into_values();
    }
    Ok(())
}

/// Whether a chunk column contains at least one non-NULL value.  The SQL
/// aggregates only raise type errors for values they actually read, so the
/// chunk paths must stay silent on columns that are entirely NULL.
fn has_non_null(chunk: &RowChunk, idx: usize) -> bool {
    chunk.column(idx).nulls().null_count() < chunk.len()
}

fn numeric_type_mismatch(column: &ColumnChunk) -> crate::error::EngineError {
    crate::error::EngineError::TypeMismatch {
        expected: "double precision",
        found: column.type_name().to_owned(),
    }
}

/// `count(*)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountAggregate;

impl Aggregate for CountAggregate {
    type State = u64;
    type Output = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn transition(&self, state: &mut u64, _row: &Row, _schema: &Schema) -> Result<()> {
        *state += 1;
        Ok(())
    }

    fn transition_chunk(&self, state: &mut u64, chunk: &RowChunk, _schema: &Schema) -> Result<()> {
        *state += chunk.len() as u64;
        Ok(())
    }

    fn merge(&self, left: u64, right: u64) -> u64 {
        left + right
    }

    fn finalize(&self, state: u64) -> Result<u64> {
        Ok(state)
    }
}

/// Shared vectorized inner loop of [`SumAggregate`] and [`AvgAggregate`]:
/// adds every non-NULL value of a numeric column into `sum`, in row order
/// (identical floating-point accumulation order to the per-row path), and
/// returns how many values were added.
fn sum_numeric_column(chunk: &RowChunk, idx: usize, sum: &mut f64) -> Result<u64> {
    match chunk.column(idx) {
        ColumnChunk::Double { values, nulls } => {
            if nulls.any_null() {
                let mut added = 0;
                for (i, v) in values.iter().enumerate() {
                    if !nulls.is_null(i) {
                        *sum += v;
                        added += 1;
                    }
                }
                Ok(added)
            } else {
                for v in values {
                    *sum += v;
                }
                Ok(values.len() as u64)
            }
        }
        ColumnChunk::Int { values, nulls } => {
            let mut added = 0;
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) {
                    *sum += *v as f64;
                    added += 1;
                }
            }
            Ok(added)
        }
        ColumnChunk::Bool { values, nulls } => {
            let mut added = 0;
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) {
                    *sum += if *v { 1.0 } else { 0.0 };
                    added += 1;
                }
            }
            Ok(added)
        }
        other => {
            // The per-row path only fails on values it actually reads, so an
            // entirely-NULL column of the wrong type stays silent.
            if has_non_null(chunk, idx) {
                Err(numeric_type_mismatch(other))
            } else {
                Ok(0)
            }
        }
    }
}

/// `sum(column)` over a numeric column; NULLs are skipped as in SQL.
#[derive(Debug, Clone)]
pub struct SumAggregate {
    column: String,
}

impl SumAggregate {
    /// Sums the named numeric column.
    pub fn new(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
        }
    }
}

impl Aggregate for SumAggregate {
    type State = f64;
    type Output = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn transition(&self, state: &mut f64, row: &Row, schema: &Schema) -> Result<()> {
        let value = row.get_named(schema, &self.column)?;
        if !value.is_null() {
            *state += value.as_double()?;
        }
        Ok(())
    }

    fn transition_chunk(&self, state: &mut f64, chunk: &RowChunk, schema: &Schema) -> Result<()> {
        let idx = schema.index_of(&self.column)?;
        sum_numeric_column(chunk, idx, state)?;
        Ok(())
    }

    fn merge(&self, left: f64, right: f64) -> f64 {
        left + right
    }

    fn finalize(&self, state: f64) -> Result<f64> {
        Ok(state)
    }
}

/// `avg(column)`: keeps (sum, count) in the transition state.
#[derive(Debug, Clone)]
pub struct AvgAggregate {
    column: String,
}

impl AvgAggregate {
    /// Averages the named numeric column.
    pub fn new(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
        }
    }
}

impl Aggregate for AvgAggregate {
    type State = (f64, u64);
    type Output = Option<f64>;

    fn initial_state(&self) -> (f64, u64) {
        (0.0, 0)
    }

    fn transition(&self, state: &mut (f64, u64), row: &Row, schema: &Schema) -> Result<()> {
        let value = row.get_named(schema, &self.column)?;
        if !value.is_null() {
            state.0 += value.as_double()?;
            state.1 += 1;
        }
        Ok(())
    }

    fn transition_chunk(
        &self,
        state: &mut (f64, u64),
        chunk: &RowChunk,
        schema: &Schema,
    ) -> Result<()> {
        let idx = schema.index_of(&self.column)?;
        state.1 += sum_numeric_column(chunk, idx, &mut state.0)?;
        Ok(())
    }

    fn merge(&self, left: (f64, u64), right: (f64, u64)) -> (f64, u64) {
        (left.0 + right.0, left.1 + right.1)
    }

    fn finalize(&self, state: (f64, u64)) -> Result<Option<f64>> {
        Ok((state.1 > 0).then(|| state.0 / state.1 as f64))
    }
}

/// Element-wise `sum(double precision[])` over an array column: the building
/// block for model-averaging style methods (e.g. the SGD framework of the
/// paper's Section 5.1).  All non-null arrays must have equal length.
#[derive(Debug, Clone)]
pub struct ArraySumAggregate {
    column: String,
}

impl ArraySumAggregate {
    /// Sums the named `double precision[]` column element-wise.
    pub fn new(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
        }
    }
}

impl Aggregate for ArraySumAggregate {
    type State = Option<Vec<f64>>;
    type Output = Vec<f64>;

    fn initial_state(&self) -> Option<Vec<f64>> {
        None
    }

    fn transition(&self, state: &mut Option<Vec<f64>>, row: &Row, schema: &Schema) -> Result<()> {
        let value = row.get_named(schema, &self.column)?;
        if value.is_null() {
            return Ok(());
        }
        let arr = value.as_double_array()?;
        match state {
            None => *state = Some(arr.to_vec()),
            Some(acc) => {
                if acc.len() != arr.len() {
                    return Err(crate::error::EngineError::aggregate(format!(
                        "array_sum: length mismatch {} vs {}",
                        acc.len(),
                        arr.len()
                    )));
                }
                for (a, b) in acc.iter_mut().zip(arr) {
                    *a += b;
                }
            }
        }
        Ok(())
    }

    fn transition_chunk(
        &self,
        state: &mut Option<Vec<f64>>,
        chunk: &RowChunk,
        schema: &Schema,
    ) -> Result<()> {
        let idx = schema.index_of(&self.column)?;
        let column = match chunk.column(idx) {
            ColumnChunk::DoubleArray { .. } => chunk.double_arrays(idx)?,
            other => {
                if has_non_null(chunk, idx) {
                    return Err(crate::error::EngineError::TypeMismatch {
                        expected: "double precision[]",
                        found: other.type_name().to_owned(),
                    });
                }
                return Ok(());
            }
        };
        let nulls = column.nulls();
        for i in 0..column.len() {
            if nulls.is_null(i) {
                continue;
            }
            let arr = column.row(i);
            match state {
                None => *state = Some(arr.to_vec()),
                Some(acc) => {
                    if acc.len() != arr.len() {
                        return Err(crate::error::EngineError::aggregate(format!(
                            "array_sum: length mismatch {} vs {}",
                            acc.len(),
                            arr.len()
                        )));
                    }
                    for (a, b) in acc.iter_mut().zip(arr) {
                        *a += b;
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&self, left: Option<Vec<f64>>, right: Option<Vec<f64>>) -> Option<Vec<f64>> {
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut l), Some(r)) => {
                for (a, b) in l.iter_mut().zip(&r) {
                    *a += b;
                }
                Some(l)
            }
        }
    }

    fn finalize(&self, state: Option<Vec<f64>>) -> Result<Vec<f64>> {
        state.ok_or_else(|| crate::error::EngineError::aggregate("array_sum over empty input"))
    }
}

/// Extracts a named `double precision` column and the named
/// `double precision[]` column from a row — the `(y, x)` access pattern used
/// by every regression-style transition function in the paper (Listing 1).
///
/// # Errors
/// Propagates column-lookup and type errors.
pub fn extract_labeled_point<'a>(
    row: &'a Row,
    schema: &Schema,
    y_column: &str,
    x_column: &str,
) -> Result<(f64, &'a [f64])> {
    let y = row.get_named(schema, y_column)?.as_double()?;
    let x = row.get_named(schema, x_column)?.as_double_array()?;
    Ok((y, x))
}

/// Convenience wrapper that converts a column's values to `f64`, skipping
/// NULLs — shared by several method implementations.
pub fn numeric_column(rows: &[Row], schema: &Schema, column: &str) -> Result<Vec<f64>> {
    let idx = schema.index_of(column)?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let v = row.get(idx);
        if !v.is_null() {
            out.push(v.as_double()?);
        }
    }
    Ok(out)
}

/// Placeholder output type for aggregates that produce a composite record:
/// named fields with [`Value`] payloads, like the `linregr` record output in
/// the paper's Section 4.1 example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompositeRecord {
    fields: Vec<(String, Value)>,
}

impl CompositeRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field.
    pub fn push(&mut self, name: impl Into<String>, value: Value) {
        self.fields.push((name.into(), value));
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }

    /// All fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            row![1.0, vec![1.0, 2.0]],
            row![2.0, vec![3.0, 4.0]],
            row![3.0, vec![5.0, 6.0]],
        ]
    }

    fn run_serial<A: Aggregate>(agg: &A, rows: &[Row], schema: &Schema) -> A::Output {
        let mut state = agg.initial_state();
        for r in rows {
            agg.transition(&mut state, r, schema).unwrap();
        }
        agg.finalize(state).unwrap()
    }

    #[test]
    fn count_sum_avg() {
        let s = schema();
        let rs = rows();
        assert_eq!(run_serial(&CountAggregate, &rs, &s), 3);
        assert_eq!(run_serial(&SumAggregate::new("y"), &rs, &s), 6.0);
        assert_eq!(run_serial(&AvgAggregate::new("y"), &rs, &s), Some(2.0));
    }

    #[test]
    fn avg_of_empty_is_none() {
        let s = schema();
        assert_eq!(run_serial(&AvgAggregate::new("y"), &[], &s), None);
    }

    #[test]
    fn nulls_are_skipped() {
        let s = schema();
        let rs = vec![
            row![1.0, vec![1.0]],
            Row::new(vec![Value::Null, Value::Null]),
            row![3.0, vec![2.0]],
        ];
        assert_eq!(run_serial(&SumAggregate::new("y"), &rs, &s), 4.0);
        assert_eq!(run_serial(&AvgAggregate::new("y"), &rs, &s), Some(2.0));
        assert_eq!(run_serial(&CountAggregate, &rs, &s), 3);
    }

    #[test]
    fn array_sum_elementwise() {
        let s = schema();
        let rs = rows();
        let agg = ArraySumAggregate::new("x");
        assert_eq!(run_serial(&agg, &rs, &s), vec![9.0, 12.0]);
    }

    #[test]
    fn array_sum_rejects_mismatched_lengths_and_empty() {
        let s = schema();
        let agg = ArraySumAggregate::new("x");
        let mut state = agg.initial_state();
        agg.transition(&mut state, &row![1.0, vec![1.0, 2.0]], &s)
            .unwrap();
        assert!(agg
            .transition(&mut state, &row![1.0, vec![1.0]], &s)
            .is_err());
        assert!(agg.finalize(agg.initial_state()).is_err());
    }

    #[test]
    fn merge_law_holds_for_builtin_aggregates() {
        let s = schema();
        let rs = rows();
        let agg = SumAggregate::new("y");
        let mut left = agg.initial_state();
        let mut right = agg.initial_state();
        agg.transition(&mut left, &rs[0], &s).unwrap();
        for r in &rs[1..] {
            agg.transition(&mut right, r, &s).unwrap();
        }
        let merged = agg.finalize(agg.merge(left, right)).unwrap();
        assert_eq!(merged, run_serial(&agg, &rs, &s));

        let agg = ArraySumAggregate::new("x");
        let mut left = agg.initial_state();
        let mut right = agg.initial_state();
        agg.transition(&mut left, &rs[0], &s).unwrap();
        for r in &rs[1..] {
            agg.transition(&mut right, r, &s).unwrap();
        }
        assert_eq!(
            agg.finalize(agg.merge(left, right)).unwrap(),
            run_serial(&agg, &rs, &s)
        );
        // Merge with an empty side is the identity.
        let merged = agg.merge(None, Some(vec![1.0]));
        assert_eq!(merged, Some(vec![1.0]));
    }

    #[test]
    fn labeled_point_extraction() {
        let s = schema();
        let r = row![5.0, vec![1.0, 2.0]];
        let (y, x) = extract_labeled_point(&r, &s, "y", "x").unwrap();
        assert_eq!(y, 5.0);
        assert_eq!(x, &[1.0, 2.0]);
        assert!(extract_labeled_point(&r, &s, "missing", "x").is_err());
    }

    #[test]
    fn numeric_column_skips_nulls() {
        let s = schema();
        let rs = vec![
            row![1.0, vec![0.0]],
            Row::new(vec![Value::Null, Value::Null]),
        ];
        assert_eq!(numeric_column(&rs, &s, "y").unwrap(), vec![1.0]);
    }

    #[test]
    fn composite_record_lookup() {
        let mut rec = CompositeRecord::new();
        rec.push("coef", Value::DoubleArray(vec![1.0, 2.0]));
        rec.push("r2", Value::Double(0.9));
        assert_eq!(rec.get("r2"), Some(&Value::Double(0.9)));
        assert_eq!(rec.get("missing"), None);
        assert_eq!(rec.fields().len(), 2);
    }
}
