//! On-disk formats and snapshot persistence for the durability layer.
//!
//! Three kinds of files live in a database directory, all built from one
//! checksummed frame codec (`[u32 payload length][u64 checksum][payload]`,
//! FNV-1a over the payload):
//!
//! * **`wal.log`** — the write-ahead log ([`crate::wal`]).  Each frame's
//!   payload is a [`WalRecord`]: the logical operation (create / drop /
//!   append / truncate / put-table) with rows encoded value-by-value.
//! * **`table_<id>_seg_<n>.chunks`** — per-segment snapshot files.  Each
//!   frame's payload is one serialized sealed [`RowChunk`] (column-major
//!   buffers, null-bitmap words, array offset tables; `f64`s stored as raw
//!   bits so recovery is bit-identical).  A sealed chunk is immutable by
//!   construction, so checkpoints *append* each newly sealed chunk exactly
//!   once and never rewrite a file — unless the table's generation changed
//!   (truncate/replace), which starts a fresh file id.
//! * **`MANIFEST`** — the checkpoint root: WAL epoch + replay offset, and
//!   per table the schema, distribution, chunk capacity, round-robin
//!   cursor, per-segment persisted-chunk counts and the (possibly open)
//!   tail chunk inline.  Written to `MANIFEST.tmp`, fsynced, renamed, then
//!   the directory is fsynced — so the manifest is always either the old or
//!   the new checkpoint, never torn.
//!
//! The checkpoint ordering is what makes WAL truncation crash-safe: the
//! manifest recording `(epoch N, offset)` becomes durable *before* the WAL
//! is reset to epoch `N + 1`.  Recovery therefore accepts exactly two WAL
//! epochs — `N` (reset never happened: replay from the recorded offset) and
//! `N + 1` (reset happened: replay from the header) — and treats anything
//! else as corruption.

use crate::chunk::{ColumnChunk, NullBitmap, RowChunk, Segment};
use crate::error::{EngineError, Result};
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Distribution;
use crate::value::Value;
use crate::wal::Wal;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// File magic identifying a manifest and its format version.
const MANIFEST_MAGIC: &[u8; 8] = b"MADMAN01";

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the record checksum.  Not cryptographic; it detects
/// torn writes and random corruption, which is the failure model here.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wraps a payload in a `[u32 len][u64 checksum][payload]` frame.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of parsing one frame at a byte offset.
pub(crate) enum FrameParse<'a> {
    /// A complete, checksum-valid frame; `next` is the following offset.
    Frame {
        /// The frame's payload bytes.
        payload: &'a [u8],
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// No further valid frame: end of buffer, a short (torn) frame, or a
    /// checksum mismatch.  Scanning must stop — frame boundaries after an
    /// invalid frame cannot be trusted.
    End,
}

/// Parses the frame starting at `pos`, if a complete valid one is present.
pub(crate) fn parse_frame(bytes: &[u8], pos: usize) -> FrameParse<'_> {
    if pos + 12 > bytes.len() {
        return FrameParse::End;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
    let start = pos + 12;
    let Some(end) = start.checked_add(len) else {
        return FrameParse::End;
    };
    if end > bytes.len() {
        return FrameParse::End;
    }
    let payload = &bytes[start..end];
    if checksum64(payload) != sum {
        return FrameParse::End;
    }
    FrameParse::Frame { payload, next: end }
}

// ---------------------------------------------------------------------------
// Primitive encoders / decoder
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    // Raw bits, so NaN payloads and signed zeros survive bit-identically.
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn corrupt(what: &str) -> EngineError {
    EngineError::Storage {
        message: format!("corrupt persisted data: {what}"),
    }
}

/// Cursor over a decoded payload; every read is bounds-checked and surfaces
/// [`EngineError::Storage`] instead of panicking on truncated data.
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt("unexpected end of payload"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8 string"))
    }

    /// A collection count, sanity-bounded so a corrupt count cannot drive a
    /// huge allocation: each element occupies at least `min_element_bytes`.
    fn count(&mut self, min_element_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if min_element_bytes > 0 && n > self.remaining() / min_element_bytes {
            return Err(corrupt("collection count exceeds payload size"));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Value / schema / distribution codecs
// ---------------------------------------------------------------------------

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            put_i64(out, *i);
        }
        Value::Double(d) => {
            out.push(3);
            put_f64(out, *d);
        }
        Value::Text(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::DoubleArray(xs) => {
            out.push(5);
            put_u32(out, xs.len() as u32);
            for x in xs {
                put_f64(out, *x);
            }
        }
        Value::IntArray(xs) => {
            out.push(6);
            put_u32(out, xs.len() as u32);
            for x in xs {
                put_i64(out, *x);
            }
        }
        Value::TextArray(xs) => {
            out.push(7);
            put_u32(out, xs.len() as u32);
            for x in xs {
                put_str(out, x);
            }
        }
    }
}

fn read_value(r: &mut ByteReader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Double(r.f64()?),
        4 => Value::Text(r.str()?),
        5 => {
            let n = r.count(8)?;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(r.f64()?);
            }
            Value::DoubleArray(xs)
        }
        6 => {
            let n = r.count(8)?;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(r.i64()?);
            }
            Value::IntArray(xs)
        }
        7 => {
            let n = r.count(4)?;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(r.str()?);
            }
            Value::TextArray(xs)
        }
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

fn type_tag(t: ColumnType) -> u8 {
    match t {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Double => 2,
        ColumnType::Text => 3,
        ColumnType::DoubleArray => 4,
        ColumnType::TextArray => 5,
        ColumnType::IntArray => 6,
    }
}

fn tag_type(t: u8) -> Result<ColumnType> {
    Ok(match t {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Double,
        3 => ColumnType::Text,
        4 => ColumnType::DoubleArray,
        5 => ColumnType::TextArray,
        6 => ColumnType::IntArray,
        t => return Err(corrupt(&format!("unknown column type tag {t}"))),
    })
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.arity() as u32);
    for col in schema.columns() {
        put_str(out, &col.name);
        out.push(type_tag(col.column_type));
    }
}

fn read_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let n = r.count(5)?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let column_type = tag_type(r.u8()?)?;
        columns.push(Column::new(name, column_type));
    }
    Ok(Schema::new(columns))
}

fn put_distribution(out: &mut Vec<u8>, d: &Distribution) {
    match d {
        Distribution::RoundRobin => out.push(0),
        Distribution::HashColumn(name) => {
            out.push(1);
            put_str(out, name);
        }
    }
}

fn read_distribution(r: &mut ByteReader<'_>) -> Result<Distribution> {
    Ok(match r.u8()? {
        0 => Distribution::RoundRobin,
        1 => Distribution::HashColumn(r.str()?),
        t => return Err(corrupt(&format!("unknown distribution tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Chunk codec
// ---------------------------------------------------------------------------

fn put_bitmap(out: &mut Vec<u8>, nulls: &NullBitmap) {
    let words = nulls.words();
    put_u32(out, words.len() as u32);
    for w in words {
        put_u64(out, *w);
    }
}

fn read_bitmap(r: &mut ByteReader<'_>, rows: usize) -> Result<NullBitmap> {
    let n = r.count(8)?;
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(r.u64()?);
    }
    NullBitmap::from_raw(words, rows)
}

fn put_offsets(out: &mut Vec<u8>, offsets: &[usize]) {
    put_u32(out, offsets.len() as u32);
    for o in offsets {
        put_u64(out, *o as u64);
    }
}

fn read_offsets(r: &mut ByteReader<'_>, rows: usize, total_values: usize) -> Result<Vec<usize>> {
    let n = r.count(8)?;
    if n != rows + 1 {
        return Err(corrupt("offset table length mismatch"));
    }
    let mut offsets = Vec::with_capacity(n);
    for _ in 0..n {
        offsets.push(r.u64()? as usize);
    }
    if offsets.first() != Some(&0)
        || offsets.last() != Some(&total_values)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(corrupt("offset table not monotone over the values buffer"));
    }
    Ok(offsets)
}

fn put_column(out: &mut Vec<u8>, column: &ColumnChunk) {
    match column {
        ColumnChunk::Bool { values, nulls } => {
            out.push(type_tag(ColumnType::Bool));
            for v in values {
                out.push(*v as u8);
            }
            put_bitmap(out, nulls);
        }
        ColumnChunk::Int { values, nulls } => {
            out.push(type_tag(ColumnType::Int));
            for v in values {
                put_i64(out, *v);
            }
            put_bitmap(out, nulls);
        }
        ColumnChunk::Double { values, nulls } => {
            out.push(type_tag(ColumnType::Double));
            for v in values {
                put_f64(out, *v);
            }
            put_bitmap(out, nulls);
        }
        ColumnChunk::Text { values, nulls } => {
            out.push(type_tag(ColumnType::Text));
            for v in values {
                put_str(out, v);
            }
            put_bitmap(out, nulls);
        }
        ColumnChunk::DoubleArray {
            values,
            offsets,
            nulls,
        } => {
            out.push(type_tag(ColumnType::DoubleArray));
            put_u32(out, values.len() as u32);
            for v in values {
                put_f64(out, *v);
            }
            put_offsets(out, offsets);
            put_bitmap(out, nulls);
        }
        ColumnChunk::IntArray {
            values,
            offsets,
            nulls,
        } => {
            out.push(type_tag(ColumnType::IntArray));
            put_u32(out, values.len() as u32);
            for v in values {
                put_i64(out, *v);
            }
            put_offsets(out, offsets);
            put_bitmap(out, nulls);
        }
        ColumnChunk::TextArray {
            values,
            offsets,
            nulls,
        } => {
            out.push(type_tag(ColumnType::TextArray));
            put_u32(out, values.len() as u32);
            for v in values {
                put_str(out, v);
            }
            put_offsets(out, offsets);
            put_bitmap(out, nulls);
        }
    }
}

fn read_column(r: &mut ByteReader<'_>, rows: usize) -> Result<ColumnChunk> {
    Ok(match tag_type(r.u8()?)? {
        ColumnType::Bool => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(r.u8()? != 0);
            }
            let nulls = read_bitmap(r, rows)?;
            ColumnChunk::Bool { values, nulls }
        }
        ColumnType::Int => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(r.i64()?);
            }
            let nulls = read_bitmap(r, rows)?;
            ColumnChunk::Int { values, nulls }
        }
        ColumnType::Double => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(r.f64()?);
            }
            let nulls = read_bitmap(r, rows)?;
            ColumnChunk::Double { values, nulls }
        }
        ColumnType::Text => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(r.str()?);
            }
            let nulls = read_bitmap(r, rows)?;
            ColumnChunk::Text { values, nulls }
        }
        ColumnType::DoubleArray => {
            let n = r.count(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.f64()?);
            }
            let offsets = read_offsets(r, rows, n)?;
            let nulls = read_bitmap(r, rows)?;
            ColumnChunk::DoubleArray {
                values,
                offsets,
                nulls,
            }
        }
        ColumnType::IntArray => {
            let n = r.count(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.i64()?);
            }
            let offsets = read_offsets(r, rows, n)?;
            let nulls = read_bitmap(r, rows)?;
            ColumnChunk::IntArray {
                values,
                offsets,
                nulls,
            }
        }
        ColumnType::TextArray => {
            let n = r.count(4)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.str()?);
            }
            let offsets = read_offsets(r, rows, n)?;
            let nulls = read_bitmap(r, rows)?;
            ColumnChunk::TextArray {
                values,
                offsets,
                nulls,
            }
        }
    })
}

/// Serializes a chunk: row count, arity, then each column's buffers.
pub(crate) fn encode_chunk(chunk: &RowChunk) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, chunk.len() as u32);
    put_u32(&mut out, chunk.arity() as u32);
    for column in chunk.columns() {
        put_column(&mut out, column);
    }
    out
}

/// Decodes a chunk serialized by [`encode_chunk`], validating that every
/// column covers exactly the declared row count.
pub(crate) fn decode_chunk(payload: &[u8]) -> Result<RowChunk> {
    let mut r = ByteReader::new(payload);
    let rows = r.u32()? as usize;
    let arity = r.u32()? as usize;
    if arity > payload.len() {
        return Err(corrupt("chunk arity exceeds payload size"));
    }
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let column = read_column(&mut r, rows)?;
        if column.nulls().len() != rows {
            return Err(corrupt("column row count mismatch"));
        }
        columns.push(column);
    }
    r.finish()?;
    Ok(RowChunk::from_parts(rows, columns))
}

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

/// One logical operation in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// `Database::create_table` (and the chunk-capacity variant).
    CreateTable {
        /// Table name.
        name: String,
        /// Table schema.
        schema: Schema,
        /// Distribution policy.
        distribution: Distribution,
        /// Rows per chunk.
        chunk_capacity: u64,
    },
    /// `Database::drop_table`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// One `Database::append_rows` call — the whole batch is one record, so
    /// a torn group commit can never surface part of a batch.
    Append {
        /// Target table.
        table: String,
        /// The appended rows, in insertion order.
        rows: Vec<Vec<Value>>,
    },
    /// `Database::truncate_table`.
    Truncate {
        /// Target table.
        table: String,
    },
    /// Wholesale contents replacement (`replace_table` / `register_table`):
    /// schema, metadata and every row, per segment so that replay
    /// reproduces the exact chunk layout.
    PutTable {
        /// Table name.
        name: String,
        /// Table schema.
        schema: Schema,
        /// Distribution policy.
        distribution: Distribution,
        /// Rows per chunk.
        chunk_capacity: u64,
        /// Round-robin cursor to restore.
        next_round_robin: u64,
        /// Per-segment rows, in insertion order.
        segments: Vec<Vec<Vec<Value>>>,
    },
}

fn put_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_u32(out, row.len() as u32);
        for v in row {
            put_value(out, v);
        }
    }
}

fn read_rows(r: &mut ByteReader<'_>) -> Result<Vec<Vec<Value>>> {
    let n = r.count(4)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let arity = r.count(1)?;
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(read_value(r)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Serializes a WAL record payload.
pub(crate) fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::CreateTable {
            name,
            schema,
            distribution,
            chunk_capacity,
        } => {
            out.push(1);
            put_str(&mut out, name);
            put_schema(&mut out, schema);
            put_distribution(&mut out, distribution);
            put_u64(&mut out, *chunk_capacity);
        }
        WalRecord::DropTable { name } => {
            out.push(2);
            put_str(&mut out, name);
        }
        WalRecord::Append { table, rows } => {
            out.push(3);
            put_str(&mut out, table);
            put_rows(&mut out, rows);
        }
        WalRecord::Truncate { table } => {
            out.push(4);
            put_str(&mut out, table);
        }
        WalRecord::PutTable {
            name,
            schema,
            distribution,
            chunk_capacity,
            next_round_robin,
            segments,
        } => {
            out.push(5);
            put_str(&mut out, name);
            put_schema(&mut out, schema);
            put_distribution(&mut out, distribution);
            put_u64(&mut out, *chunk_capacity);
            put_u64(&mut out, *next_round_robin);
            put_u32(&mut out, segments.len() as u32);
            for segment in segments {
                put_rows(&mut out, segment);
            }
        }
    }
    out
}

/// Decodes a WAL record payload.
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord> {
    let mut r = ByteReader::new(payload);
    let record = match r.u8()? {
        1 => WalRecord::CreateTable {
            name: r.str()?,
            schema: read_schema(&mut r)?,
            distribution: read_distribution(&mut r)?,
            chunk_capacity: r.u64()?,
        },
        2 => WalRecord::DropTable { name: r.str()? },
        3 => WalRecord::Append {
            table: r.str()?,
            rows: read_rows(&mut r)?,
        },
        4 => WalRecord::Truncate { table: r.str()? },
        5 => {
            let name = r.str()?;
            let schema = read_schema(&mut r)?;
            let distribution = read_distribution(&mut r)?;
            let chunk_capacity = r.u64()?;
            let next_round_robin = r.u64()?;
            let n = r.count(4)?;
            let mut segments = Vec::with_capacity(n);
            for _ in 0..n {
                segments.push(read_rows(&mut r)?);
            }
            WalRecord::PutTable {
                name,
                schema,
                distribution,
                chunk_capacity,
                next_round_robin,
                segments,
            }
        }
        t => return Err(corrupt(&format!("unknown wal record tag {t}"))),
    };
    r.finish()?;
    Ok(record)
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One segment's persistence record inside the manifest.
pub(crate) struct ManifestSegment {
    /// Sealed chunks already written to the segment's chunk file.
    pub persisted_chunks: u64,
    /// The segment's last chunk at checkpoint time (open tail or the most
    /// recent sealed chunk), stored inline — it may still grow, so it is
    /// never written to the append-only chunk file.
    pub tail: Option<RowChunk>,
}

/// One table's persistence record inside the manifest.
pub(crate) struct ManifestTable {
    /// Table name.
    pub name: String,
    /// Identifier naming the table's chunk files.
    pub file_id: u64,
    /// Table schema.
    pub schema: Schema,
    /// Distribution policy.
    pub distribution: Distribution,
    /// Rows per chunk.
    pub chunk_capacity: u64,
    /// Round-robin cursor at checkpoint time.
    pub next_round_robin: u64,
    /// Per-segment chunk bookkeeping.
    pub segments: Vec<ManifestSegment>,
}

/// The checkpoint root: everything recovery needs besides the WAL tail.
pub(crate) struct Manifest {
    /// WAL epoch the `wal_offset` refers to.
    pub epoch: u64,
    /// Byte offset in the epoch's WAL from which replay must resume.
    pub wal_offset: u64,
    /// The database's default segment count.
    pub num_segments: u64,
    /// Next unused chunk-file id.
    pub next_file_id: u64,
    /// Every non-temporary table at checkpoint time.
    pub tables: Vec<ManifestTable>,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, m.epoch);
    put_u64(&mut out, m.wal_offset);
    put_u64(&mut out, m.num_segments);
    put_u64(&mut out, m.next_file_id);
    put_u32(&mut out, m.tables.len() as u32);
    for t in &m.tables {
        put_str(&mut out, &t.name);
        put_u64(&mut out, t.file_id);
        put_schema(&mut out, &t.schema);
        put_distribution(&mut out, &t.distribution);
        put_u64(&mut out, t.chunk_capacity);
        put_u64(&mut out, t.next_round_robin);
        put_u32(&mut out, t.segments.len() as u32);
        for s in &t.segments {
            put_u64(&mut out, s.persisted_chunks);
            match &s.tail {
                None => out.push(0),
                Some(chunk) => {
                    out.push(1);
                    let bytes = encode_chunk(chunk);
                    put_u32(&mut out, bytes.len() as u32);
                    out.extend_from_slice(&bytes);
                }
            }
        }
    }
    out
}

fn decode_manifest(payload: &[u8]) -> Result<Manifest> {
    let mut r = ByteReader::new(payload);
    let epoch = r.u64()?;
    let wal_offset = r.u64()?;
    let num_segments = r.u64()?;
    let next_file_id = r.u64()?;
    let table_count = r.count(8)?;
    let mut tables = Vec::with_capacity(table_count);
    for _ in 0..table_count {
        let name = r.str()?;
        let file_id = r.u64()?;
        let schema = read_schema(&mut r)?;
        let distribution = read_distribution(&mut r)?;
        let chunk_capacity = r.u64()?;
        let next_round_robin = r.u64()?;
        let seg_count = r.count(9)?;
        let mut segments = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            let persisted_chunks = r.u64()?;
            let tail = match r.u8()? {
                0 => None,
                1 => {
                    let len = r.u32()? as usize;
                    Some(decode_chunk(r.take(len)?)?)
                }
                t => return Err(corrupt(&format!("unknown tail tag {t}"))),
            };
            segments.push(ManifestSegment {
                persisted_chunks,
                tail,
            });
        }
        tables.push(ManifestTable {
            name,
            file_id,
            schema,
            distribution,
            chunk_capacity,
            next_round_robin,
            segments,
        });
    }
    r.finish()?;
    Ok(Manifest {
        epoch,
        wal_offset,
        num_segments,
        next_file_id,
        tables,
    })
}

// ---------------------------------------------------------------------------
// File layout and I/O
// ---------------------------------------------------------------------------

/// Path of the write-ahead log inside a database directory.
pub(crate) fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Path of one table segment's chunk file.
pub(crate) fn chunk_path(dir: &Path, file_id: u64, segment: usize) -> PathBuf {
    dir.join(format!("table_{file_id}_seg_{segment}.chunks"))
}

fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| EngineError::storage("sync directory", e))
}

/// Atomically installs a new manifest: write to `MANIFEST.tmp`, fsync,
/// rename over `MANIFEST`, fsync the directory.
pub(crate) fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<()> {
    let payload = encode_manifest(manifest);
    let mut bytes = Vec::with_capacity(8 + 12 + payload.len());
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&frame(&payload));
    let tmp = dir.join("MANIFEST.tmp");
    let mut file = File::create(&tmp).map_err(|e| EngineError::storage("create manifest", e))?;
    file.write_all(&bytes)
        .and_then(|_| file.sync_all())
        .map_err(|e| EngineError::storage("write manifest", e))?;
    drop(file);
    std::fs::rename(&tmp, manifest_path(dir))
        .map_err(|e| EngineError::storage("install manifest", e))?;
    sync_dir(dir)
}

/// Loads the manifest; `None` when the database has never checkpointed.
///
/// # Errors
/// A present-but-invalid manifest is a hard [`EngineError::Storage`] error:
/// manifest installation is atomic, so corruption here means real data loss
/// that must not be silently ignored.
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<Manifest>> {
    let bytes = match std::fs::read(manifest_path(dir)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(EngineError::storage("read manifest", e)),
    };
    if bytes.len() < 8 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(corrupt("manifest magic"));
    }
    match parse_frame(&bytes, 8) {
        FrameParse::Frame { payload, next } if next == bytes.len() => {
            decode_manifest(payload).map(Some)
        }
        _ => Err(corrupt("manifest frame")),
    }
}

/// Appends serialized sealed chunks to a segment chunk file and fsyncs it.
pub(crate) fn append_chunks(path: &Path, chunks: &[Arc<RowChunk>]) -> Result<()> {
    if chunks.is_empty() {
        return Ok(());
    }
    let file = OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .map_err(|e| EngineError::storage("open chunk file", e))?;
    let mut buf = Vec::new();
    for chunk in chunks {
        buf.extend_from_slice(&frame(&encode_chunk(chunk)));
    }
    (&file)
        .write_all(&buf)
        .and_then(|_| file.sync_all())
        .map_err(|e| EngineError::storage("append chunk file", e))
}

/// Reads the first `count` chunks back from a segment chunk file.  The file
/// may contain *more* frames than the manifest says (a checkpoint that
/// crashed after appending chunks but before installing its manifest);
/// extras are ignored.  Fewer valid frames than `count` is corruption.
pub(crate) fn read_chunks(path: &Path, count: usize) -> Result<Vec<Arc<RowChunk>>> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let bytes = std::fs::read(path).map_err(|e| EngineError::storage("read chunk file", e))?;
    let mut chunks = Vec::with_capacity(count);
    let mut pos = 0;
    while chunks.len() < count {
        match parse_frame(&bytes, pos) {
            FrameParse::Frame { payload, next } => {
                chunks.push(Arc::new(decode_chunk(payload)?));
                pos = next;
            }
            FrameParse::End => {
                return Err(corrupt(&format!(
                    "chunk file {} holds {} valid chunks, manifest expects {count}",
                    path.display(),
                    chunks.len()
                )))
            }
        }
    }
    Ok(chunks)
}

/// Rebuilds one segment from its chunk file plus the manifest's tail.
pub(crate) fn recover_segment(
    dir: &Path,
    file_id: u64,
    segment: usize,
    m: &ManifestSegment,
) -> Result<Segment> {
    let mut chunks = read_chunks(
        &chunk_path(dir, file_id, segment),
        m.persisted_chunks as usize,
    )?;
    if let Some(tail) = &m.tail {
        if !tail.is_empty() {
            chunks.push(Arc::new(tail.clone()));
        }
    }
    Ok(Segment::from_chunks(chunks))
}

// ---------------------------------------------------------------------------
// Durability state attached to a Database
// ---------------------------------------------------------------------------

/// Per-table snapshot bookkeeping: which chunk file the table writes to and
/// how many sealed chunks of each segment are already on disk.
pub(crate) struct TablePersist {
    /// The table's current chunk-file id.
    pub file_id: u64,
    /// Generation this bookkeeping describes; a mismatch at checkpoint time
    /// (truncate/replace since the last one) invalidates the persisted
    /// prefix and forces a fresh file id.
    pub generation: u64,
    /// Per-segment count of sealed chunks already appended to disk.
    pub persisted: Vec<u64>,
}

/// Snapshot bookkeeping across checkpoints.
pub(crate) struct PersistState {
    /// Next unused chunk-file id.
    pub next_file_id: u64,
    /// Bookkeeping per cataloged (non-temporary) table.
    pub tables: HashMap<String, TablePersist>,
}

/// The durable half of a [`crate::Database`]: directory, WAL, the commit
/// gate serializing logged mutations against checkpoints, and snapshot
/// bookkeeping.
pub(crate) struct Durability {
    /// The database directory.
    pub dir: PathBuf,
    /// The write-ahead log.
    pub wal: Wal,
    /// Logged mutations hold this for read across (table lock + WAL
    /// enqueue); checkpoint holds it for write while cutting its snapshot,
    /// so the manifest's `(epoch, offset)` and the snapshot agree exactly.
    pub gate: RwLock<()>,
    /// Chunk-file bookkeeping, touched only by checkpoints.
    pub persist: Mutex<PersistState>,
}

/// Deletes a table incarnation's chunk files (best-effort; missing files are
/// fine — the table may never have sealed a chunk in some segment).
pub(crate) fn delete_chunk_files(dir: &Path, file_id: u64, num_segments: usize) {
    for seg in 0..num_segments {
        std::fs::remove_file(chunk_path(dir, file_id, seg)).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;

    fn sample_chunk() -> RowChunk {
        let schema = Schema::new(vec![
            Column::new("b", ColumnType::Bool),
            Column::new("i", ColumnType::Int),
            Column::new("d", ColumnType::Double),
            Column::new("t", ColumnType::Text),
            Column::new("da", ColumnType::DoubleArray),
            Column::new("ia", ColumnType::IntArray),
            Column::new("ta", ColumnType::TextArray),
        ]);
        let mut chunk = RowChunk::new(&schema);
        chunk
            .push_values(&[
                Value::Bool(true),
                Value::Int(7),
                Value::Double(1.5),
                Value::Text("alpha".into()),
                Value::DoubleArray(vec![1.0, -0.0, f64::NAN]),
                Value::IntArray(vec![1, 2]),
                Value::TextArray(vec!["x".into(), "y".into()]),
            ])
            .unwrap();
        chunk
            .push_values(&[
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ])
            .unwrap();
        chunk
            .push_values(&[
                Value::Bool(false),
                Value::Int(-3),
                Value::Double(f64::NEG_INFINITY),
                Value::Text(String::new()),
                Value::DoubleArray(Vec::new()),
                Value::IntArray(vec![0]),
                Value::TextArray(Vec::new()),
            ])
            .unwrap();
        chunk
    }

    #[test]
    fn chunk_codec_is_bit_identical() {
        let chunk = sample_chunk();
        let decoded = decode_chunk(&encode_chunk(&chunk)).unwrap();
        assert_eq!(decoded.len(), chunk.len());
        assert_eq!(decoded.arity(), chunk.arity());
        for i in 0..chunk.len() {
            for c in 0..chunk.arity() {
                let (a, b) = (chunk.value(i, c), decoded.value(i, c));
                match (&a, &b) {
                    (Value::DoubleArray(xs), Value::DoubleArray(ys)) => {
                        let xs: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
                        let ys: Vec<u64> = ys.iter().map(|y| y.to_bits()).collect();
                        assert_eq!(xs, ys);
                    }
                    (Value::Double(x), Value::Double(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    _ => assert_eq!(a, b),
                }
            }
        }
        // -0.0 survives as -0.0, not 0.0.
        let Value::DoubleArray(xs) = decoded.value(0, 4) else {
            panic!("expected array")
        };
        assert_eq!(xs[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn chunk_decoder_rejects_corruption() {
        let bytes = encode_chunk(&sample_chunk());
        // Truncations anywhere must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_chunk(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_chunk(&extended).is_err());
    }

    #[test]
    fn wal_records_round_trip() {
        let schema = Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let records = vec![
            WalRecord::CreateTable {
                name: "points".into(),
                schema: schema.clone(),
                distribution: Distribution::HashColumn("id".into()),
                chunk_capacity: 64,
            },
            WalRecord::Append {
                table: "points".into(),
                rows: vec![
                    vec![Value::Int(1), Value::DoubleArray(vec![1.0, 2.0])],
                    vec![Value::Null, Value::Null],
                ],
            },
            WalRecord::Truncate {
                table: "points".into(),
            },
            WalRecord::PutTable {
                name: "points".into(),
                schema,
                distribution: Distribution::RoundRobin,
                chunk_capacity: 1024,
                next_round_robin: 3,
                segments: vec![vec![vec![Value::Int(9), Value::Null]], vec![]],
            },
            WalRecord::DropTable {
                name: "points".into(),
            },
        ];
        for record in &records {
            let bytes = encode_record(record);
            assert_eq!(&decode_record(&bytes).unwrap(), record);
            for cut in 0..bytes.len() {
                assert!(decode_record(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn manifest_round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("madlib_manifest_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_manifest(&dir).unwrap().is_none());
        let manifest = Manifest {
            epoch: 5,
            wal_offset: 1234,
            num_segments: 4,
            next_file_id: 7,
            tables: vec![ManifestTable {
                name: "t".into(),
                file_id: 2,
                schema: Schema::new(vec![Column::new("v", ColumnType::Double)]),
                distribution: Distribution::RoundRobin,
                chunk_capacity: 8,
                next_round_robin: 1,
                segments: vec![
                    ManifestSegment {
                        persisted_chunks: 3,
                        tail: Some(sample_tail()),
                    },
                    ManifestSegment {
                        persisted_chunks: 0,
                        tail: None,
                    },
                ],
            }],
        };
        write_manifest(&dir, &manifest).unwrap();
        let loaded = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.wal_offset, 1234);
        assert_eq!(loaded.tables.len(), 1);
        assert_eq!(loaded.tables[0].segments[0].persisted_chunks, 3);
        assert_eq!(loaded.tables[0].segments[0].tail.as_ref().unwrap().len(), 1);
        // A flipped byte inside the manifest is a hard error.
        let path = dir.join("MANIFEST");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_manifest(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_tail() -> RowChunk {
        let schema = Schema::new(vec![Column::new("v", ColumnType::Double)]);
        let mut chunk = RowChunk::new(&schema);
        chunk
            .push_values(Row::new(vec![Value::Double(2.5)]).values())
            .unwrap();
        chunk
    }

    #[test]
    fn chunk_files_append_and_recover() {
        let dir =
            std::env::temp_dir().join(format!("madlib_chunkfile_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = chunk_path(&dir, 1, 0);
        std::fs::remove_file(&path).ok();
        let a = Arc::new(sample_chunk());
        let b = Arc::new(sample_tail());
        append_chunks(&path, &[Arc::clone(&a)]).unwrap();
        append_chunks(&path, &[Arc::clone(&b)]).unwrap();
        let chunks = read_chunks(&path, 2).unwrap();
        assert_eq!(chunks[0].len(), a.len());
        assert_eq!(chunks[1].len(), b.len());
        // Extra frames beyond the requested count are ignored (a checkpoint
        // that crashed before installing its manifest leaves them behind).
        assert_eq!(read_chunks(&path, 1).unwrap().len(), 1);
        // Fewer valid frames than requested is corruption.
        assert!(read_chunks(&path, 3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
