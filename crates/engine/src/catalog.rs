//! The model catalog: named, typed model storage inside the database.
//!
//! The paper's macro-thesis is that analytics state belongs *in* the
//! database, next to the data.  Training already deposits its inputs and
//! iteration state in [`crate::Database`] tables; the model catalog gives
//! the *outputs* the same home, so a model trained once can be looked up by
//! name and served by [`crate::Dataset::score`] without ever leaving the
//! engine:
//!
//! - [`ModelCatalog::register`] stores one model under a name (re-registering
//!   replaces it — the model-refresh idiom, mirroring `CREATE OR REPLACE`).
//! - [`ModelCatalog::register_grouped`] stores a `train_grouped` output: one
//!   model per composite [`GroupKey`], servable as a per-group registry.
//! - Lookups are typed: [`ModelCatalog::get`] downcasts to the requested
//!   model type and reports a wrong-type lookup as a
//!   [`EngineError::TypeMismatch`] naming both types, a missing name or
//!   group as a typed [`EngineError::ModelNotFound`].
//!
//! Models are stored as `Arc<dyn Any + Send + Sync>`, so the catalog holds
//! any `'static` model type without the engine depending on the method
//! library; the typed surface lives entirely in the lookup functions.

use crate::error::{EngineError, Result};
use crate::group::GroupKey;
use std::any::{type_name, Any};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A type-erased stored model.
type StoredModel = Arc<dyn Any + Send + Sync>;

/// One catalog entry: either a single model or a per-group registry.
enum ModelKind {
    Single(StoredModel),
    /// Sorted by key (the [`GroupKey`] total order); lookups binary-search.
    Grouped(Vec<(GroupKey, StoredModel)>),
}

struct ModelEntry {
    /// The concrete Rust type stored, captured at registration time for
    /// typed-mismatch error messages.
    type_name: &'static str,
    kind: ModelKind,
}

/// A named, typed model store shared by all clones of a [`crate::Database`]
/// (lookups through any handle see models registered through any other,
/// exactly like tables).
#[derive(Clone, Default)]
pub struct ModelCatalog {
    inner: Arc<RwLock<HashMap<String, ModelEntry>>>,
}

impl fmt::Debug for ModelCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (name, grouped) in self.list() {
            map.entry(&name, &if grouped { "grouped" } else { "single" });
        }
        map.finish()
    }
}

impl ModelCatalog {
    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, ModelEntry>> {
        // Registrations cannot leave the map half-written, so recover from
        // poisoning instead of propagating the panic (same policy as the
        // table catalog).
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, ModelEntry>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `model` under `name`, replacing any existing entry — the
    /// model-refresh idiom: retraining registers the new model under the
    /// same name and subsequent lookups serve it.
    pub fn register<M: Any + Send + Sync>(&self, name: &str, model: M) {
        self.write().insert(
            name.to_owned(),
            ModelEntry {
                type_name: type_name::<M>(),
                kind: ModelKind::Single(Arc::new(model)),
            },
        );
    }

    /// Registers a per-group model registry (a `train_grouped` output) under
    /// `name`, replacing any existing entry.  Models are stored sorted by
    /// composite key.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidArgument`] when two pairs share a key —
    /// group routing would be ambiguous.
    pub fn register_grouped<M: Any + Send + Sync>(
        &self,
        name: &str,
        models: Vec<(GroupKey, M)>,
    ) -> Result<()> {
        let mut stored: Vec<(GroupKey, StoredModel)> = models
            .into_iter()
            .map(|(key, model)| (key, Arc::new(model) as StoredModel))
            .collect();
        stored.sort_by(|a, b| a.0.cmp(&b.0));
        if let Some(pair) = stored.windows(2).find(|pair| pair[0].0 == pair[1].0) {
            return Err(EngineError::invalid(format!(
                "duplicate group key {:?} in grouped model registration {name:?}",
                pair[0].0
            )));
        }
        self.write().insert(
            name.to_owned(),
            ModelEntry {
                type_name: type_name::<M>(),
                kind: ModelKind::Grouped(stored),
            },
        );
        Ok(())
    }

    /// Looks up the single model registered under `name` as type `M`.
    ///
    /// # Errors
    /// [`EngineError::ModelNotFound`] for an unknown name,
    /// [`EngineError::TypeMismatch`] when the stored model is not an `M`,
    /// [`EngineError::InvalidArgument`] when the entry is a grouped registry
    /// (use [`ModelCatalog::get_group`] / [`ModelCatalog::get_grouped`]).
    pub fn get<M: Any + Send + Sync>(&self, name: &str) -> Result<Arc<M>> {
        let catalog = self.read();
        let entry = lookup(&catalog, name)?;
        match &entry.kind {
            ModelKind::Single(model) => downcast(model, entry.type_name),
            ModelKind::Grouped(_) => Err(grouped_entry_error(name)),
        }
    }

    /// Looks up the model for group `key` in the grouped registry under
    /// `name`, as type `M`.
    ///
    /// # Errors
    /// [`EngineError::ModelNotFound`] for an unknown name *or* a known
    /// registry with no model for `key` (the error carries the rendered
    /// key); [`EngineError::TypeMismatch`] on a type mismatch;
    /// [`EngineError::InvalidArgument`] when the entry is a single model.
    pub fn get_group<M: Any + Send + Sync>(&self, name: &str, key: &GroupKey) -> Result<Arc<M>> {
        let catalog = self.read();
        let entry = lookup(&catalog, name)?;
        match &entry.kind {
            ModelKind::Single(_) => Err(single_entry_error(name)),
            ModelKind::Grouped(models) => {
                let idx = models.binary_search_by(|(k, _)| k.cmp(key)).map_err(|_| {
                    EngineError::ModelNotFound {
                        name: name.to_owned(),
                        group: Some(format!("{key:?}")),
                    }
                })?;
                downcast(&models[idx].1, entry.type_name)
            }
        }
    }

    /// Looks up the entire grouped registry under `name` as type `M`,
    /// returning `(key, model)` pairs sorted by key.
    ///
    /// # Errors
    /// [`EngineError::ModelNotFound`] for an unknown name,
    /// [`EngineError::TypeMismatch`] on a type mismatch,
    /// [`EngineError::InvalidArgument`] when the entry is a single model.
    pub fn get_grouped<M: Any + Send + Sync>(&self, name: &str) -> Result<Vec<(GroupKey, Arc<M>)>> {
        let catalog = self.read();
        let entry = lookup(&catalog, name)?;
        match &entry.kind {
            ModelKind::Single(_) => Err(single_entry_error(name)),
            ModelKind::Grouped(models) => models
                .iter()
                .map(|(key, model)| Ok((key.clone(), downcast(model, entry.type_name)?)))
                .collect(),
        }
    }

    /// Whether a model (single or grouped) is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Lists model names (sorted) with whether each entry is grouped.
    pub fn list(&self) -> Vec<(String, bool)> {
        let mut names: Vec<(String, bool)> = self
            .read()
            .iter()
            .map(|(name, entry)| (name.clone(), matches!(entry.kind, ModelKind::Grouped(_))))
            .collect();
        names.sort();
        names
    }

    /// Removes the entry under `name`.
    ///
    /// # Errors
    /// Returns [`EngineError::ModelNotFound`] for an unknown name.
    pub fn remove(&self, name: &str) -> Result<()> {
        self.write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::ModelNotFound {
                name: name.to_owned(),
                group: None,
            })
    }
}

fn lookup<'a>(catalog: &'a HashMap<String, ModelEntry>, name: &str) -> Result<&'a ModelEntry> {
    catalog.get(name).ok_or_else(|| EngineError::ModelNotFound {
        name: name.to_owned(),
        group: None,
    })
}

fn downcast<M: Any + Send + Sync>(model: &StoredModel, stored: &'static str) -> Result<Arc<M>> {
    Arc::downcast::<M>(Arc::clone(model)).map_err(|_| EngineError::TypeMismatch {
        expected: type_name::<M>(),
        found: stored.to_owned(),
    })
}

fn grouped_entry_error(name: &str) -> EngineError {
    EngineError::invalid(format!(
        "model {name:?} is a grouped registry; use get_group or get_grouped"
    ))
}

fn single_entry_error(name: &str) -> EngineError {
    EngineError::invalid(format!(
        "model {name:?} is a single model, not a grouped registry; use get"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[derive(Debug, PartialEq)]
    struct Stub(u32);
    #[derive(Debug, PartialEq)]
    struct Other(&'static str);

    #[test]
    fn register_get_and_refresh() {
        let catalog = ModelCatalog::new();
        assert!(!catalog.contains("m"));
        catalog.register("m", Stub(1));
        assert!(catalog.contains("m"));
        assert_eq!(*catalog.get::<Stub>("m").unwrap(), Stub(1));
        // Re-registering replaces (model refresh).
        catalog.register("m", Stub(2));
        assert_eq!(*catalog.get::<Stub>("m").unwrap(), Stub(2));
        // Even across types.
        catalog.register("m", Other("x"));
        assert_eq!(*catalog.get::<Other>("m").unwrap(), Other("x"));
    }

    #[test]
    fn typed_errors() {
        let catalog = ModelCatalog::new();
        assert!(matches!(
            catalog.get::<Stub>("missing"),
            Err(EngineError::ModelNotFound { name, group: None }) if name == "missing"
        ));
        catalog.register("m", Stub(1));
        let err = catalog.get::<Other>("m").unwrap_err();
        match err {
            EngineError::TypeMismatch { expected, found } => {
                assert!(expected.contains("Other"));
                assert!(found.contains("Stub"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Single entries reject grouped lookups and vice versa.
        assert!(catalog
            .get_group::<Stub>("m", &GroupKey::from_value(&Value::Int(1)))
            .is_err());
        assert!(catalog.get_grouped::<Stub>("m").is_err());
        assert!(catalog.remove("missing").is_err());
        catalog.remove("m").unwrap();
        assert!(!catalog.contains("m"));
    }

    #[test]
    fn grouped_registry_routes_by_key() {
        let catalog = ModelCatalog::new();
        let key = |v: i64| GroupKey::from_value(&Value::Int(v));
        catalog
            .register_grouped("per_region", vec![(key(2), Stub(20)), (key(1), Stub(10))])
            .unwrap();
        assert_eq!(
            *catalog.get_group::<Stub>("per_region", &key(1)).unwrap(),
            Stub(10)
        );
        let all = catalog.get_grouped::<Stub>("per_region").unwrap();
        assert_eq!(all.len(), 2);
        // Sorted by key regardless of registration order.
        assert_eq!(all[0].0, key(1));
        assert_eq!(*all[0].1, Stub(10));
        // Missing group carries the rendered key.
        let err = catalog
            .get_group::<Stub>("per_region", &key(9))
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::ModelNotFound { group: Some(_), .. }
        ));
        // Grouped entries reject the single-model lookup.
        assert!(catalog.get::<Stub>("per_region").is_err());
        // Duplicate keys are rejected.
        assert!(catalog
            .register_grouped("dup", vec![(key(1), Stub(1)), (key(1), Stub(2))])
            .is_err());
        // The listing marks grouped entries.
        catalog.register("single", Stub(0));
        assert_eq!(
            catalog.list(),
            vec![
                ("per_region".to_owned(), true),
                ("single".to_owned(), false)
            ]
        );
    }

    #[test]
    fn clones_share_storage() {
        let catalog = ModelCatalog::new();
        let clone = catalog.clone();
        catalog.register("m", Stub(7));
        assert_eq!(*clone.get::<Stub>("m").unwrap(), Stub(7));
    }
}
