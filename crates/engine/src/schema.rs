//! Table schemas.

use crate::error::{EngineError, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Column data types understood by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// `boolean`
    Bool,
    /// `bigint`
    Int,
    /// `double precision`
    Double,
    /// `text`
    Text,
    /// `double precision[]`
    DoubleArray,
    /// `text[]`
    TextArray,
    /// `bigint[]`
    IntArray,
}

impl ColumnType {
    /// Whether `value` is acceptable for a column of this type (NULL is
    /// always acceptable).
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Double, Value::Double(_))
                | (ColumnType::Double, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
                | (ColumnType::DoubleArray, Value::DoubleArray(_))
                | (ColumnType::TextArray, Value::TextArray(_))
                | (ColumnType::IntArray, Value::IntArray(_))
        )
    }

    /// SQL-ish name of the type.
    pub fn sql_name(&self) -> &'static str {
        match self {
            ColumnType::Bool => "boolean",
            ColumnType::Int => "bigint",
            ColumnType::Double => "double precision",
            ColumnType::Text => "text",
            ColumnType::DoubleArray => "double precision[]",
            ColumnType::TextArray => "text[]",
            ColumnType::IntArray => "bigint[]",
        }
    }

    /// Whether the type is numeric (usable by the profile module's numeric
    /// summary path).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            ColumnType::Int | ColumnType::Double | ColumnType::Bool
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub column_type: ColumnType,
}

impl Column {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, column_type: ColumnType) -> Self {
        Self {
            name: name.into(),
            column_type,
        }
    }
}

/// An ordered collection of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from column definitions.
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column definitions, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of the column with the given name.
    ///
    /// # Errors
    /// Returns [`EngineError::ColumnNotFound`] if no column matches.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| EngineError::ColumnNotFound {
                name: name.to_owned(),
            })
    }

    /// The column with the given name.
    ///
    /// # Errors
    /// Returns [`EngineError::ColumnNotFound`] if no column matches.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Validates that a row of values matches this schema (arity and types).
    ///
    /// # Errors
    /// Returns [`EngineError::ArityMismatch`] or [`EngineError::TypeMismatch`].
    pub fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.columns.len(),
                found: values.len(),
            });
        }
        for (col, value) in self.columns.iter().zip(values) {
            if !col.column_type.accepts(value) {
                return Err(EngineError::TypeMismatch {
                    expected: col.column_type.sql_name(),
                    found: format!("{} (column {})", value.type_name(), col.name),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("x", ColumnType::DoubleArray),
            Column::new("y", ColumnType::Double),
            Column::new("label", ColumnType::Text),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("y").unwrap(), 2);
        assert_eq!(s.column("x").unwrap().column_type, ColumnType::DoubleArray);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    fn validation_catches_bad_rows() {
        let s = schema();
        let good = vec![
            Value::Int(1),
            Value::DoubleArray(vec![1.0]),
            Value::Double(0.5),
            Value::Text("a".into()),
        ];
        assert!(s.validate(&good).is_ok());

        let short = vec![Value::Int(1)];
        assert!(matches!(
            s.validate(&short),
            Err(EngineError::ArityMismatch { .. })
        ));

        let bad_type = vec![
            Value::Text("oops".into()),
            Value::DoubleArray(vec![]),
            Value::Double(0.0),
            Value::Text("a".into()),
        ];
        assert!(matches!(
            s.validate(&bad_type),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nulls_and_int_to_double_accepted() {
        let s = schema();
        let row = vec![
            Value::Null,
            Value::Null,
            Value::Int(3), // int accepted in a double column
            Value::Null,
        ];
        assert!(s.validate(&row).is_ok());
    }

    #[test]
    fn column_type_helpers() {
        assert!(ColumnType::Double.is_numeric());
        assert!(ColumnType::Int.is_numeric());
        assert!(!ColumnType::Text.is_numeric());
        assert_eq!(ColumnType::DoubleArray.sql_name(), "double precision[]");
        assert!(ColumnType::TextArray.accepts(&Value::TextArray(vec![])));
        assert!(!ColumnType::Int.accepts(&Value::Double(1.0)));
    }
}
