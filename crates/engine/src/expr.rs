//! Simple row predicates.
//!
//! The engine does not ship a SQL parser — MADlib's macro-programming layer
//! only needs scans, filters, aggregates and temp tables, all of which have
//! programmatic equivalents here.  [`Predicate`] covers the `WHERE` clauses
//! the method drivers actually issue (equality / comparison on a column,
//! conjunction, negation).

use crate::chunk::{ColumnChunk, RowChunk, SelectionMask};
use crate::error::{EngineError, Result};
use crate::group::{GroupKey, KeyPart};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A boolean-valued expression over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    /// Named column equals the given value (SQL `=`; NULL never matches).
    ColumnEquals {
        /// Column name.
        column: String,
        /// Comparison value.
        value: Value,
    },
    /// Named numeric column is strictly greater than the threshold.
    ColumnGreaterThan {
        /// Column name.
        column: String,
        /// Threshold.
        threshold: f64,
    },
    /// Named numeric column is strictly less than the threshold.
    ColumnLessThan {
        /// Column name.
        column: String,
        /// Threshold.
        threshold: f64,
    },
    /// Named column is NULL.
    ColumnIsNull {
        /// Column name.
        column: String,
    },
    /// The named columns' *group key* equals the given (possibly composite)
    /// key — a per-column conjunction of SQL's `IS NOT DISTINCT FROM` with
    /// the grouping semantics of [`crate::group::GroupKey`]: NULL matches
    /// NULL, NaN matches NaN, and `-0.0` / `0.0` are distinct, column by
    /// column.  This is the predicate that selects exactly the rows of one
    /// group produced by a grouped scan (one column per key part), which
    /// plain [`Predicate::ColumnEquals`] cannot do for NULL or NaN keys.
    ColumnIs {
        /// Column names, one per key part.
        columns: Vec<String>,
        /// The group key to match (arity must equal the column count).
        key: GroupKey,
    },
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for [`Predicate::ColumnEquals`].
    pub fn column_eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::ColumnEquals {
            column: column.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`Predicate::ColumnGreaterThan`].
    pub fn column_gt(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::ColumnGreaterThan {
            column: column.into(),
            threshold,
        }
    }

    /// Convenience constructor for [`Predicate::ColumnLessThan`].
    pub fn column_lt(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::ColumnLessThan {
            column: column.into(),
            threshold,
        }
    }

    /// Convenience constructor for [`Predicate::ColumnIs`]: matches rows
    /// whose group key equals the key of `value` (NULL matches NULL, NaN
    /// matches NaN, `-0.0` and `0.0` are distinct).
    pub fn column_is(column: impl Into<String>, value: &Value) -> Self {
        Predicate::ColumnIs {
            columns: vec![column.into()],
            key: GroupKey::from_value(value),
        }
    }

    /// Convenience constructor for [`Predicate::ColumnIs`] from an already-
    /// derived single-column [`GroupKey`] (e.g. one returned by a grouped
    /// scan over one grouping column).  For composite keys use
    /// [`Predicate::columns_are_key`].
    pub fn column_is_key(column: impl Into<String>, key: GroupKey) -> Self {
        Predicate::ColumnIs {
            columns: vec![column.into()],
            key,
        }
    }

    /// Convenience constructor for [`Predicate::ColumnIs`] matching a
    /// (possibly composite) group key against one column per key part — the
    /// predicate that filters a source dataset down to exactly one group of
    /// `group_by(columns)`.
    pub fn columns_are_key<I, S>(columns: I, key: GroupKey) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Predicate::ColumnIs {
            columns: columns.into_iter().map(Into::into).collect(),
            key,
        }
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate against a row.
    ///
    /// # Errors
    /// Propagates column-lookup and numeric-coercion errors.
    pub fn evaluate(&self, row: &Row, schema: &Schema) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::ColumnEquals { column, value } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() || value.is_null() {
                    return Ok(false);
                }
                Ok(v == value)
            }
            Predicate::ColumnGreaterThan { column, threshold } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() {
                    return Ok(false);
                }
                Ok(v.as_double()? > *threshold)
            }
            Predicate::ColumnLessThan { column, threshold } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() {
                    return Ok(false);
                }
                Ok(v.as_double()? < *threshold)
            }
            Predicate::ColumnIsNull { column } => Ok(row.get_named(schema, column)?.is_null()),
            Predicate::ColumnIs { columns, key } => {
                let parts = check_key_arity(columns, key)?;
                for (column, part) in columns.iter().zip(parts) {
                    if KeyPart::from_value(row.get_named(schema, column)?) != *part {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::And(a, b) => Ok(a.evaluate(row, schema)? && b.evaluate(row, schema)?),
            Predicate::Or(a, b) => Ok(a.evaluate(row, schema)? || b.evaluate(row, schema)?),
            Predicate::Not(p) => Ok(!p.evaluate(row, schema)?),
        }
    }

    /// Evaluates the predicate over a whole column-major chunk at once,
    /// returning one selection bit per row.
    ///
    /// This is the filter hoisted out of the per-row transition loop: scalar
    /// comparisons run over contiguous column slices and boolean combinators
    /// become bitmask operations.  Results match [`Predicate::evaluate`] row
    /// for row, with one deliberate difference: `And`/`Or` evaluate both
    /// sides over the full chunk (no per-row short-circuiting), so a
    /// type-error in the right-hand side surfaces even for rows where the
    /// left-hand side already decided the outcome.
    ///
    /// # Errors
    /// Propagates column-lookup and numeric-coercion errors.
    pub fn evaluate_chunk(&self, chunk: &RowChunk, schema: &Schema) -> Result<SelectionMask> {
        let rows = chunk.len();
        match self {
            Predicate::True => Ok(SelectionMask::all(rows)),
            Predicate::ColumnEquals { column, value } => {
                let idx = schema.index_of(column)?;
                if value.is_null() {
                    return Ok(SelectionMask::none(rows));
                }
                let mut mask = SelectionMask::none(rows);
                match (chunk.column(idx), value) {
                    (ColumnChunk::Double { values, nulls }, Value::Double(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (ColumnChunk::Int { values, nulls }, Value::Int(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (ColumnChunk::Bool { values, nulls }, Value::Bool(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (ColumnChunk::Text { values, nulls }, Value::Text(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (other, _) => {
                        // Cross-type comparison or array column: materialize
                        // per row (rare in practice).
                        let nulls = other.nulls();
                        for i in 0..rows {
                            if !nulls.is_null(i) && &other.value(i) == value {
                                mask.set(i, true);
                            }
                        }
                    }
                }
                Ok(mask)
            }
            Predicate::ColumnGreaterThan { column, threshold } => {
                numeric_comparison_mask(chunk, schema, column, |v| v > *threshold)
            }
            Predicate::ColumnLessThan { column, threshold } => {
                numeric_comparison_mask(chunk, schema, column, |v| v < *threshold)
            }
            Predicate::ColumnIsNull { column } => {
                let idx = schema.index_of(column)?;
                let nulls = chunk.column(idx).nulls();
                let mut mask = SelectionMask::none(rows);
                for i in 0..rows {
                    if nulls.is_null(i) {
                        mask.set(i, true);
                    }
                }
                Ok(mask)
            }
            Predicate::ColumnIs { columns, key } => {
                let parts = check_key_arity(columns, key)?;
                // Per-column conjunction: start from all rows and knock out
                // rows whose part does not match, one key column at a time.
                let mut mask = SelectionMask::all(rows);
                for (column, part) in columns.iter().zip(parts) {
                    let idx = schema.index_of(column)?;
                    let column = chunk.column(idx);
                    for i in 0..rows {
                        if mask.is_selected(i) && !part.matches_column(column, i) {
                            mask.set(i, false);
                        }
                    }
                }
                Ok(mask)
            }
            Predicate::And(a, b) => {
                let mut mask = a.evaluate_chunk(chunk, schema)?;
                mask.and_with(&b.evaluate_chunk(chunk, schema)?);
                Ok(mask)
            }
            Predicate::Or(a, b) => {
                let mut mask = a.evaluate_chunk(chunk, schema)?;
                mask.or_with(&b.evaluate_chunk(chunk, schema)?);
                Ok(mask)
            }
            Predicate::Not(p) => {
                let mut mask = p.evaluate_chunk(chunk, schema)?;
                mask.negate();
                Ok(mask)
            }
        }
    }
}

/// Validates that a [`Predicate::ColumnIs`] key names at least one column
/// and has exactly one part per named column, returning the parts on
/// success.  The empty predicate is rejected rather than vacuously matching
/// every row — mirroring `Dataset::group_by([])`, which is an error too.
fn check_key_arity<'k>(columns: &[String], key: &'k GroupKey) -> Result<&'k [KeyPart]> {
    if columns.is_empty() {
        return Err(EngineError::invalid(
            "ColumnIs needs at least one column; an empty column list would match every row",
        ));
    }
    let parts = key.parts();
    if parts.len() != columns.len() {
        return Err(EngineError::invalid(format!(
            "ColumnIs key arity mismatch: {} column(s) but a {}-part key",
            columns.len(),
            parts.len()
        )));
    }
    Ok(parts)
}

/// Vectorized `column <op> threshold` over a numeric column.  NULL rows never
/// match; non-numeric columns raise the same type error the per-row path
/// raises when it reads a non-null value (and stay silent when the column is
/// entirely NULL, again matching the per-row path).
fn numeric_comparison_mask(
    chunk: &RowChunk,
    schema: &Schema,
    column: &str,
    accept: impl Fn(f64) -> bool,
) -> Result<SelectionMask> {
    let idx = schema.index_of(column)?;
    let rows = chunk.len();
    let mut mask = SelectionMask::none(rows);
    match chunk.column(idx) {
        ColumnChunk::Double { values, nulls } => {
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) && accept(*v) {
                    mask.set(i, true);
                }
            }
        }
        ColumnChunk::Int { values, nulls } => {
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) && accept(*v as f64) {
                    mask.set(i, true);
                }
            }
        }
        ColumnChunk::Bool { values, nulls } => {
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) && accept(if *v { 1.0 } else { 0.0 }) {
                    mask.set(i, true);
                }
            }
        }
        other => {
            if other.nulls().null_count() < rows {
                return Err(EngineError::TypeMismatch {
                    expected: "double precision",
                    found: other.type_name().to_owned(),
                });
            }
        }
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("label", ColumnType::Text),
            Column::new("score", ColumnType::Double),
        ])
    }

    #[test]
    fn comparison_predicates() {
        let s = schema();
        let r = row!["spam", 0.8];
        assert!(Predicate::column_eq("label", "spam")
            .evaluate(&r, &s)
            .unwrap());
        assert!(!Predicate::column_eq("label", "ham")
            .evaluate(&r, &s)
            .unwrap());
        assert!(Predicate::column_gt("score", 0.5).evaluate(&r, &s).unwrap());
        assert!(Predicate::column_lt("score", 0.9).evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_lt("score", 0.8).evaluate(&r, &s).unwrap());
        assert!(Predicate::True.evaluate(&r, &s).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row!["spam", 0.8];
        let p = Predicate::column_eq("label", "spam").and(Predicate::column_gt("score", 0.5));
        assert!(p.evaluate(&r, &s).unwrap());
        let q = Predicate::column_eq("label", "ham").or(Predicate::column_gt("score", 0.5));
        assert!(q.evaluate(&r, &s).unwrap());
        assert!(!q.not().evaluate(&r, &s).unwrap());
    }

    #[test]
    fn null_handling() {
        let s = schema();
        let r = Row::new(vec![Value::Null, Value::Null]);
        assert!(!Predicate::column_eq("label", "spam")
            .evaluate(&r, &s)
            .unwrap());
        assert!(!Predicate::column_gt("score", 0.0).evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_lt("score", 0.0).evaluate(&r, &s).unwrap());
        assert!(Predicate::ColumnIsNull {
            column: "score".into()
        }
        .evaluate(&r, &s)
        .unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let r = row!["x", 1.0];
        assert!(Predicate::column_eq("nope", 1.0).evaluate(&r, &s).is_err());
    }

    #[test]
    fn composite_column_is_conjoins_per_column() {
        use crate::chunk::RowChunk;
        use crate::group::GroupKey;

        let s = schema();
        let mut chunk = RowChunk::new(&s);
        chunk.push_values(row!["spam", 0.0].values()).unwrap();
        chunk.push_values(row!["spam", -0.0].values()).unwrap();
        chunk.push_values(row!["ham", 0.0].values()).unwrap();
        chunk
            .push_values(&[Value::Null, Value::Double(f64::NAN)])
            .unwrap();

        let key = |label: &Value, score: &Value| GroupKey::from_values([label, score]);
        let spam_zero = Predicate::columns_are_key(
            ["label", "score"],
            key(&Value::Text("spam".into()), &Value::Double(0.0)),
        );
        let null_nan = Predicate::columns_are_key(
            ["label", "score"],
            key(&Value::Null, &Value::Double(f64::NAN)),
        );
        // Row and chunk evaluation agree: only the exact tuple matches,
        // with -0.0 distinct from 0.0 and NULL/NaN matching themselves.
        for (pred, expected) in [
            (&spam_zero, [true, false, false, false]),
            (&null_nan, [false, false, false, true]),
        ] {
            let mask = pred.evaluate_chunk(&chunk, &s).unwrap();
            for (i, want) in expected.iter().enumerate() {
                assert_eq!(mask.is_selected(i), *want, "chunk eval, row {i}");
                assert_eq!(pred.evaluate(&chunk.row(i), &s).unwrap(), *want, "row {i}");
            }
        }

        // Arity mismatches are typed errors on both paths, and the empty
        // predicate is rejected instead of matching every row.
        let wrong = Predicate::columns_are_key(["label"], key(&Value::Null, &Value::Null));
        assert!(wrong.evaluate(&chunk.row(0), &s).is_err());
        assert!(wrong.evaluate_chunk(&chunk, &s).is_err());
        let empty = Predicate::columns_are_key(
            Vec::<String>::new(),
            GroupKey::from_values(std::iter::empty()),
        );
        assert!(empty.evaluate(&chunk.row(0), &s).is_err());
        assert!(empty.evaluate_chunk(&chunk, &s).is_err());
    }
}
