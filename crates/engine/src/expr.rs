//! Simple row predicates.
//!
//! The engine does not ship a SQL parser — MADlib's macro-programming layer
//! only needs scans, filters, aggregates and temp tables, all of which have
//! programmatic equivalents here.  [`Predicate`] covers the `WHERE` clauses
//! the method drivers actually issue (equality / comparison on a column,
//! conjunction, negation).

use crate::error::Result;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A boolean-valued expression over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    /// Named column equals the given value (SQL `=`; NULL never matches).
    ColumnEquals {
        /// Column name.
        column: String,
        /// Comparison value.
        value: Value,
    },
    /// Named numeric column is strictly greater than the threshold.
    ColumnGreaterThan {
        /// Column name.
        column: String,
        /// Threshold.
        threshold: f64,
    },
    /// Named numeric column is strictly less than the threshold.
    ColumnLessThan {
        /// Column name.
        column: String,
        /// Threshold.
        threshold: f64,
    },
    /// Named column is NULL.
    ColumnIsNull {
        /// Column name.
        column: String,
    },
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for [`Predicate::ColumnEquals`].
    pub fn column_eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::ColumnEquals {
            column: column.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`Predicate::ColumnGreaterThan`].
    pub fn column_gt(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::ColumnGreaterThan {
            column: column.into(),
            threshold,
        }
    }

    /// Convenience constructor for [`Predicate::ColumnLessThan`].
    pub fn column_lt(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::ColumnLessThan {
            column: column.into(),
            threshold,
        }
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate against a row.
    ///
    /// # Errors
    /// Propagates column-lookup and numeric-coercion errors.
    pub fn evaluate(&self, row: &Row, schema: &Schema) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::ColumnEquals { column, value } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() || value.is_null() {
                    return Ok(false);
                }
                Ok(v == value)
            }
            Predicate::ColumnGreaterThan { column, threshold } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() {
                    return Ok(false);
                }
                Ok(v.as_double()? > *threshold)
            }
            Predicate::ColumnLessThan { column, threshold } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() {
                    return Ok(false);
                }
                Ok(v.as_double()? < *threshold)
            }
            Predicate::ColumnIsNull { column } => {
                Ok(row.get_named(schema, column)?.is_null())
            }
            Predicate::And(a, b) => Ok(a.evaluate(row, schema)? && b.evaluate(row, schema)?),
            Predicate::Or(a, b) => Ok(a.evaluate(row, schema)? || b.evaluate(row, schema)?),
            Predicate::Not(p) => Ok(!p.evaluate(row, schema)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("label", ColumnType::Text),
            Column::new("score", ColumnType::Double),
        ])
    }

    #[test]
    fn comparison_predicates() {
        let s = schema();
        let r = row!["spam", 0.8];
        assert!(Predicate::column_eq("label", "spam").evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_eq("label", "ham").evaluate(&r, &s).unwrap());
        assert!(Predicate::column_gt("score", 0.5).evaluate(&r, &s).unwrap());
        assert!(Predicate::column_lt("score", 0.9).evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_lt("score", 0.8).evaluate(&r, &s).unwrap());
        assert!(Predicate::True.evaluate(&r, &s).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row!["spam", 0.8];
        let p = Predicate::column_eq("label", "spam").and(Predicate::column_gt("score", 0.5));
        assert!(p.evaluate(&r, &s).unwrap());
        let q = Predicate::column_eq("label", "ham").or(Predicate::column_gt("score", 0.5));
        assert!(q.evaluate(&r, &s).unwrap());
        assert!(!q.not().evaluate(&r, &s).unwrap());
    }

    #[test]
    fn null_handling() {
        let s = schema();
        let r = Row::new(vec![Value::Null, Value::Null]);
        assert!(!Predicate::column_eq("label", "spam").evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_gt("score", 0.0).evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_lt("score", 0.0).evaluate(&r, &s).unwrap());
        assert!(Predicate::ColumnIsNull {
            column: "score".into()
        }
        .evaluate(&r, &s)
        .unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let r = row!["x", 1.0];
        assert!(Predicate::column_eq("nope", 1.0).evaluate(&r, &s).is_err());
    }
}
